//! Cross-crate integration tests through the public `mdcc` facade.

use std::sync::Arc;

use mdcc::cluster::{
    run_mdcc, run_megastore, run_qw, run_tpc, ClientPlacement, ClusterSpec, MdccMode, NetKind,
};
use mdcc::common::{DcId, ProtocolConfig, SimDuration};
use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
use mdcc::workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc::workloads::tpcw::{self, TpcwConfig, TpcwWorkload};
use mdcc::workloads::Workload;

fn micro_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn tpcw_catalog() -> Arc<Catalog> {
    use tpcw::tables as t;
    Arc::new(
        Catalog::new()
            .with(
                TableSchema::new(t::ITEM, "item")
                    .with_constraint(AttrConstraint::at_least(tpcw::STOCK, 0)),
            )
            .with(TableSchema::new(t::CUSTOMER, "customer"))
            .with(TableSchema::new(t::ORDERS, "orders"))
            .with(TableSchema::new(t::ORDER_LINE, "order_line"))
            .with(TableSchema::new(t::CC_XACTS, "cc_xacts"))
            .with(TableSchema::new(t::CART, "shopping_cart"))
            .with(TableSchema::new(t::CART_LINE, "shopping_cart_line"))
            .with(TableSchema::new(t::AUTHOR, "author")),
    )
}

fn small_spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: SimDuration::from_secs(3),
        duration: SimDuration::from_secs(15),
        ..ClusterSpec::default()
    }
}

fn micro_factory(
    items: u64,
) -> impl FnMut(usize, DcId, &Arc<mdcc::common::StaticPlacement>) -> Box<dyn Workload> {
    move |_c, _dc, _p| {
        Box::new(MicroWorkload::new(MicroConfig {
            items,
            ..MicroConfig::default()
        }))
    }
}

#[test]
fn facade_quickstart_runs_and_reports_consistently() {
    let spec = small_spec(1);
    let data = initial_items(1_000, 7);
    let mut factory = micro_factory(1_000);
    let (report, stats) = run_mdcc(&spec, micro_catalog(), &data, &mut factory, MdccMode::Full);
    // Report internals must be self-consistent.
    let commits = report.write_commits();
    let aborts = report.write_aborts();
    assert!(commits > 50, "got {commits}");
    assert_eq!(
        commits,
        report.write_latencies_ms().len(),
        "latency samples = committed writes"
    );
    assert!(
        stats.committed as usize >= commits,
        "stats cover the window and more"
    );
    let cdf = report.write_cdf(50);
    assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    assert_eq!(cdf.last().map(|(_, f)| *f), Some(1.0));
    let _ = aborts;
}

#[test]
fn tpcw_runs_on_every_protocol_with_sane_orderings() {
    let spec = small_spec(2);
    let items = 1_000u64;
    let data = tpcw::initial_data(&TpcwConfig::with_scale(items, 0), 7);
    let factory = |commutative: bool| {
        move |client: usize,
              _dc: DcId,
              _p: &Arc<mdcc::common::StaticPlacement>|
              -> Box<dyn Workload> {
            let mut cfg = TpcwConfig::with_scale(items, client as u64);
            cfg.commutative = commutative;
            Box::new(TpcwWorkload::new(cfg))
        }
    };

    let mut f = factory(true);
    let (mdcc_report, _) = run_mdcc(&spec, tpcw_catalog(), &data, &mut f, MdccMode::Full);
    let mut f = factory(true);
    let qw3 = run_qw(&spec, tpcw_catalog(), &data, &mut f, 3);
    let mut f = factory(true);
    let tpc = run_tpc(&spec, tpcw_catalog(), &data, &mut f);
    let mut mega_spec = spec.clone();
    mega_spec.client_placement = ClientPlacement::AllIn(DcId(0));
    let mut f = factory(true);
    let (mega, mega_stats) = run_megastore(&mega_spec, tpcw_catalog(), &data, &mut f);

    let m_mdcc = mdcc_report.median_write_ms().expect("mdcc commits");
    let m_qw3 = qw3.median_write_ms().expect("qw commits");
    let m_tpc = tpc.median_write_ms().expect("2pc commits");
    let m_mega = mega.median_write_ms().expect("mega commits");
    // Figure 3 ordering.
    assert!(m_qw3 < m_mdcc, "QW-3 {m_qw3} < MDCC {m_mdcc}");
    assert!(m_mdcc < m_tpc, "MDCC {m_mdcc} < 2PC {m_tpc}");
    assert!(m_tpc < m_mega, "2PC {m_tpc} < Megastore* {m_mega}");
    assert!(mega_stats.committed > 0);
    // Throughput ordering (Figure 4).
    assert!(qw3.throughput_tps() > mdcc_report.throughput_tps());
    assert!(mdcc_report.throughput_tps() > mega.throughput_tps());
}

#[test]
fn replication_factors_other_than_five_work() {
    // The quorum math generalizes: run a 3-DC and a 7-DC deployment.
    for dcs in [3u8, 7u8] {
        let protocol = ProtocolConfig::for_replication(dcs as usize);
        protocol.validate().expect("valid quorums");
        let spec = ClusterSpec {
            seed: 3,
            dcs,
            clients: 6,
            shards_per_dc: 1,
            net: NetKind::Uniform { rtt_ms: 100.0 },
            warmup: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(10),
            protocol,
            ..ClusterSpec::default()
        };
        let data = initial_items(500, 7);
        let mut factory = micro_factory(500);
        let (report, stats) = run_mdcc(&spec, micro_catalog(), &data, &mut factory, MdccMode::Full);
        assert!(
            report.write_commits() > 20,
            "dcs={dcs}: {} commits",
            report.write_commits()
        );
        assert!(stats.fast_commits > 0, "dcs={dcs}: fast path must work");
    }
}

#[test]
fn megastore_on_micro_queues_behind_one_log() {
    let mut spec = small_spec(4);
    spec.client_placement = ClientPlacement::AllIn(DcId(0));
    let data = initial_items(1_000, 7);
    let mut factory = micro_factory(1_000);
    let (report, stats) = run_megastore(&spec, micro_catalog(), &data, &mut factory);
    assert!(stats.committed > 0);
    assert!(stats.max_queue >= 3, "one-at-a-time log must queue");
    assert!(report.median_write_ms().unwrap() > 200.0);
}

#[test]
fn seeds_change_results_but_structure_holds() {
    let data = initial_items(1_000, 7);
    let mut medians = Vec::new();
    for seed in [10u64, 11, 12] {
        let spec = small_spec(seed);
        let mut factory = micro_factory(1_000);
        let (report, _) = run_mdcc(&spec, micro_catalog(), &data, &mut factory, MdccMode::Full);
        medians.push(report.median_write_ms().expect("commits"));
    }
    // All seeds land in the one-round-trip envelope.
    for m in &medians {
        assert!((100.0..350.0).contains(m), "median {m}");
    }
}

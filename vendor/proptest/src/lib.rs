//! A minimal, self-contained stand-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim. It samples strategies at random for a configured
//! number of cases; unlike real proptest it does **no shrinking** — a
//! failing case panics with the sampled values in the assertion message
//! (all generated inputs are `Debug`-printable by construction in this
//! workspace's tests).
//!
//! Supported surface: `proptest! { #![proptest_config(..)] #[test] fn
//! name(x in strategy, ..) { .. } }`, `Strategy` with `prop_map`,
//! `any::<T>()`, integer/float ranges as strategies, tuples of strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` macros.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic test-case generator (SplitMix64). Seeded from the test
/// name so every test gets its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bounded(&mut self, width: u64) -> u64 {
        ((self.next_u64() as u128 * width as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "whole domain" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * width) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values, `len.start..len.end` long.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples its strategies and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn prop_map_applies(n in (0u64..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u32..5, any::<bool>(), 1i64..3)) {
            prop_assert!(t.0 < 5);
            prop_assert!(t.2 == 1 || t.2 == 2);
            prop_assert_ne!(t.2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

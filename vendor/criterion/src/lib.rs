//! A minimal, self-contained stand-in for the subset of the `criterion`
//! API this workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`bench_with_input`, `Bencher::iter`
//! and `iter_batched`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim. It measures median wall-clock time over a handful of
//! samples and prints one line per benchmark — good enough to compare hot
//! paths locally, with none of real criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh input per iteration.
    PerIteration,
}

/// A parameterized benchmark name, rendered as `name/param`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates the id `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            iters_per_sample: 0,
            median_ns: 0.0,
        }
    }

    fn calibrate<F: FnMut() -> std::time::Duration>(&mut self, mut run_once: F) {
        // Target roughly 20 ms per sample, capped for slow routines.
        let once = run_once().as_nanos().max(1) as u64;
        self.iters_per_sample = (20_000_000 / once).clamp(1, 100_000);
    }

    /// Times `routine` and records the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.calibrate(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.samples);
        // One input per timed call keeps setup out of the measurement.
        for _ in 0..self.samples.max(1) * 4 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, median_ns: f64) {
    if median_ns >= 1_000_000.0 {
        println!("{name:<50} {:>12.3} ms/iter", median_ns / 1_000_000.0);
    } else if median_ns >= 1_000.0 {
        println!("{name:<50} {:>12.3} µs/iter", median_ns / 1_000.0);
    } else {
        println!("{name:<50} {:>12.1} ns/iter", median_ns);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 11 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        report(name, bencher.median_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A named group of benchmarks (`cstruct/glb/16`-style ids).
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        report(&format!("{}/{name}", self.name), bencher.median_ns);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.full), bencher.median_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion { samples: 3 };
        c.bench_function("smoke/iter", |b| b.iter(|| 21u64 * 2));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion { samples: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, n| {
            b.iter(|| n * n);
        });
        group.finish();
    }
}

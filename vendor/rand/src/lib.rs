//! A minimal, self-contained stand-in for the subset of the `rand` 0.8
//! API this workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` and `Rng::gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead of the real crate. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than the
//! real `SmallRng`, which is fine: the simulator only requires that equal
//! seeds yield equal streams, not any particular stream.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset: the workspace only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly once per word of state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random-value interface (subset).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps a raw draw onto `[0, width)` with the multiply-shift technique
/// (bias below 2^-64, irrelevant for simulation purposes).
fn bounded(raw: u64, width: u64) -> u64 {
    ((raw as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * width) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        let unit: f64 = f64::sample_standard(rng);
        start + unit * (end - start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: u64 = rng.gen_range(10u64..=30);
            assert!((10..=30).contains(&w));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}

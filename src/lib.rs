//! # MDCC: Multi-Data Center Consistency
//!
//! A Rust reproduction of *MDCC: Multi-Data Center Consistency* (Kraska,
//! Pang, Franklin, Madden, Fekete — EuroSys 2013): an optimistic commit
//! protocol for geo-replicated transactions that needs **one wide-area
//! round trip** in the common case, has **no static master**, detects
//! every write-write conflict (read committed without lost updates), and
//! exploits **commutative updates with value constraints** through
//! Generalized Paxos plus a new quorum demarcation technique.
//!
//! The workspace contains the full system, built from scratch:
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | ids, simulated time, rows, updates, placement, config |
//! | [`sim`] | deterministic multi-data-center discrete-event simulator + durable disks |
//! | [`paxos`] | ballots, options, cstructs, acceptor/leader/learner, demarcation |
//! | [`storage`] | schema catalog, versioned record store, option log |
//! | [`recovery`] | WAL format, checkpoints, crash-recovery replay |
//! | [`core`] | the MDCC protocol: storage-node process + transaction manager |
//! | [`baselines`] | quorum writes, two-phase commit, Megastore* |
//! | [`workloads`] | TPC-W and the paper's micro-benchmark |
//! | [`cluster`] | five-DC harness, closed-loop clients, fault schedules, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mdcc::cluster::{run_mdcc, ClusterSpec, MdccMode};
//! use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
//! use mdcc::workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
//! use mdcc::common::{DcId, SimDuration};
//!
//! // A small five-data-center deployment with the paper's item table.
//! let spec = ClusterSpec {
//!     clients: 5,
//!     warmup: SimDuration::from_secs(2),
//!     duration: SimDuration::from_secs(10),
//!     ..ClusterSpec::default()
//! };
//! let catalog = Arc::new(Catalog::new().with(
//!     TableSchema::new(MICRO_ITEMS, "item")
//!         .with_constraint(AttrConstraint::at_least("stock", 0)),
//! ));
//! let data = initial_items(500, 7);
//! let mut workloads = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc::workloads::Workload> {
//!     Box::new(MicroWorkload::new(MicroConfig { items: 500, ..MicroConfig::default() }))
//! };
//! let (report, stats) = run_mdcc(&spec, catalog, &data, &mut workloads, MdccMode::Full);
//! assert!(report.write_commits() > 0);
//! assert!(stats.fast_commits > 0, "common case: one round trip, no master");
//! ```
//!
//! ## Reproduction
//!
//! Every figure of the paper's evaluation has a driver under
//! `crates/bench/src/bin` (`fig3` … `fig8`, `tables`); see EXPERIMENTS.md
//! for measured-versus-paper results.

/// Baseline protocols: quorum writes, 2PC, Megastore*.
pub use mdcc_baselines as baselines;
/// The five-data-center experiment harness, fault schedules and metrics.
pub use mdcc_cluster as cluster;
/// Shared vocabulary types (ids, time, rows, updates, placement).
pub use mdcc_common as common;
/// The MDCC protocol: storage nodes and the transaction manager.
pub use mdcc_core as core;
/// Paxos machinery: ballots, cstructs, acceptors, leaders, learners.
pub use mdcc_paxos as paxos;
/// Durability: WAL format, checkpoints, crash-recovery replay.
pub use mdcc_recovery as recovery;
/// The deterministic discrete-event simulator (with durable disks).
pub use mdcc_sim as sim;
/// Schema catalog and versioned record store.
pub use mdcc_storage as storage;
/// TPC-W and micro-benchmark workload generators.
pub use mdcc_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mdcc_cluster::{
        run_mdcc, run_megastore, run_qw, run_tpc, ClientPlacement, ClusterSpec, FaultEvent,
        FaultPlan, MdccMode, NetKind, Report,
    };
    pub use mdcc_common::{
        DcId, Key, NodeId, ProtocolConfig, RecordUpdate, Row, SimDuration, SimTime, TxnId,
        UpdateOp, Value, Version,
    };
    pub use mdcc_paxos::{AttrConstraint, TxnOutcome};
    pub use mdcc_storage::{Catalog, TableSchema};
    pub use mdcc_workloads::{Transaction, TxnAction, Workload};
}

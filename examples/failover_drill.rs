//! Failover drill: lose a data center mid-run (the paper's §5.3.4).
//!
//! One hundred simulated seconds of buy traffic from US-West; halfway
//! through, US-East — the closest region — stops receiving messages.
//! MDCC keeps committing without interruption: quorums simply reach one
//! region farther, and the latency time series shows the step the
//! paper's Figure 8 shows (173.5 ms → 211.7 ms on EC2).
//!
//! ```text
//! cargo run --release --example failover_drill
//! ```

use std::sync::Arc;

use mdcc::cluster::{run_mdcc, ClientPlacement, ClusterSpec, MdccMode};
use mdcc::common::{DcId, SimDuration};
use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
use mdcc::workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc::workloads::Workload;

fn main() {
    let spec = ClusterSpec {
        seed: 8,
        clients: 20,
        shards_per_dc: 2,
        client_placement: ClientPlacement::AllIn(DcId(0)), // all in US-West
        warmup: SimDuration::from_secs(5),
        duration: SimDuration::from_secs(100),
        // Kill US-East 55 s in (5 s warm-up + 50 s).
        fail_dcs: vec![(SimDuration::from_secs(55), DcId(1))],
        ..ClusterSpec::default()
    };
    let catalog = Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ));
    let data = initial_items(2_000, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: 2_000,
            ..MicroConfig::default()
        }))
    };
    let (report, _) = run_mdcc(&spec, catalog, &data, &mut factory, MdccMode::Full);

    println!("Failover drill: US-East outage at t = 55 s\n");
    println!("{:>6} {:>12} {:>8}", "t (s)", "avg ms", "commits");
    let series = report.write_time_series(SimDuration::from_secs(5));
    let mut before = Vec::new();
    let mut after = Vec::new();
    for (t, avg, count) in &series {
        let marker = if (*t - 55.0).abs() < 2.5 {
            "  <- outage"
        } else {
            ""
        };
        println!("{t:>6.0} {avg:>12.1} {count:>8}{marker}");
        if *count > 0 {
            if *t < 55.0 {
                before.push(*avg);
            } else {
                after.push(*avg);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\navg before {:.1} ms, after {:.1} ms — commits never stop (paper: 173.5 → 211.7 ms)",
        mean(&before),
        mean(&after)
    );
    assert!(
        series.iter().all(|(_, _, count)| *count > 0),
        "availability preserved"
    );
}

//! Inventory constraints under contention: the paper's Figure 2 scenario.
//!
//! Five buyers in five data centers race to decrement the same item with
//! `stock = 4` and the constraint `stock ≥ 0`. Plain quorum writes
//! oversell (stock goes negative); MDCC's escrow + quorum demarcation
//! (§3.4.2) admits at most four decrements no matter how messages
//! interleave, and every replica converges to the same non-negative
//! stock.
//!
//! ```text
//! cargo run --release --example inventory_constraints
//! ```

use std::sync::Arc;

use mdcc::cluster::{run_mdcc, run_qw, ClusterSpec, MdccMode};
use mdcc::common::{DcId, Key, RecordUpdate, Row, SimDuration, UpdateOp};
use mdcc::prelude::*;
use mdcc::storage::{Catalog, TableSchema};
use mdcc::workloads::micro::{item_key, MICRO_ITEMS, STOCK};
use mdcc::workloads::{Transaction, TxnAction, Workload};
use mdcc_common::CommutativeUpdate;

/// A workload that issues exactly one decrement of the hot item and then
/// goes quiet.
struct OneBuy {
    done: bool,
}

struct BuyOnce {
    key: Key,
    fired: bool,
}

impl Transaction for BuyOnce {
    fn read_set(&self) -> Vec<Key> {
        vec![self.key.clone()]
    }
    fn decide(&mut self, reads: &[(Key, Version, Option<Row>)]) -> TxnAction {
        if self.fired || reads.iter().all(|(_, _, v)| v.is_none()) {
            return TxnAction::Commit(Vec::new());
        }
        self.fired = true;
        TxnAction::Commit(vec![RecordUpdate::new(
            self.key.clone(),
            UpdateOp::Commutative(CommutativeUpdate::delta(STOCK, -1)),
        )])
    }
    fn is_write(&self) -> bool {
        true
    }
    fn label(&self) -> &'static str {
        "buy-once"
    }
}

/// After the single buy, the client idles on harmless read-only txns.
struct Idle;

impl Transaction for Idle {
    fn read_set(&self) -> Vec<Key> {
        vec![item_key(0)]
    }
    fn decide(&mut self, _reads: &[(Key, Version, Option<Row>)]) -> TxnAction {
        TxnAction::Commit(Vec::new())
    }
    fn is_write(&self) -> bool {
        false
    }
    fn label(&self) -> &'static str {
        "idle"
    }
}

impl Workload for OneBuy {
    fn next_txn(&mut self, _rng: &mut rand::rngs::SmallRng) -> Box<dyn Transaction> {
        if self.done {
            Box::new(Idle)
        } else {
            self.done = true;
            Box::new(BuyOnce {
                key: item_key(0),
                fired: false,
            })
        }
    }
}

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least(STOCK, 0)),
    ))
}

fn spec() -> ClusterSpec {
    ClusterSpec {
        seed: 42,
        clients: 5,
        shards_per_dc: 1,
        warmup: SimDuration::ZERO,
        duration: SimDuration::from_secs(30),
        ..ClusterSpec::default()
    }
}

fn main() {
    let data = vec![(item_key(0), Row::new().with(STOCK, 4))];

    println!("Figure 2 scenario: stock = 4, five concurrent −1 buyers, stock ≥ 0\n");

    // MDCC: the demarcation limit L = (N−Qf)/N · X makes storage nodes
    // reject options that could oversell, whatever the message order.
    let mut factory =
        |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> { Box::new(OneBuy { done: false }) };
    let (report, _) = run_mdcc(&spec(), catalog(), &data, &mut factory, MdccMode::Full);
    let commits = report.write_commits();
    let aborts = report.write_aborts();
    println!("MDCC : {commits} committed, {aborts} aborted");
    println!("       remaining stock = {}", 4 - commits as i64);
    assert!(commits <= 4, "overselling must be impossible");
    assert!(4 - (commits as i64) >= 0);

    // Quorum writes: no constraint machinery at all — every buyer
    // "succeeds" and the inventory goes negative.
    let mut factory =
        |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> { Box::new(OneBuy { done: false }) };
    let qw = run_qw(&spec(), catalog(), &data, &mut factory, 3);
    let qw_commits = qw.write_commits();
    println!(
        "\nQW-3 : {qw_commits} \"committed\" — stock is now {}",
        4 - qw_commits as i64
    );
    if qw_commits as i64 > 4 {
        println!("       the eventually consistent baseline oversold the item");
    }
}

//! Quickstart: commit geo-replicated transactions with MDCC.
//!
//! Builds a five-data-center deployment (the paper's EC2 topology), loads
//! an inventory table, runs a handful of closed-loop clients for thirty
//! simulated seconds and prints what the paper's §5.3.1 would call the
//! headline numbers: median latency, the fast-path rate and the
//! commit/abort counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mdcc::cluster::{run_mdcc, ClusterSpec, MdccMode};
use mdcc::common::{DcId, SimDuration};
use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
use mdcc::workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc::workloads::Workload;

fn main() {
    // 1. Describe the deployment: five DCs, two storage nodes each,
    //    ten app servers spread around the world.
    let spec = ClusterSpec {
        seed: 1,
        clients: 10,
        shards_per_dc: 2,
        warmup: SimDuration::from_secs(5),
        duration: SimDuration::from_secs(30),
        ..ClusterSpec::default()
    };

    // 2. Declare the schema: one item table whose `stock` attribute must
    //    never drop below zero — the constraint MDCC's quorum demarcation
    //    enforces without a master round trip.
    let catalog = Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ));
    let data = initial_items(2_000, 7);

    // 3. Each client runs the paper's buy transaction: read 3 items,
    //    decrement each stock commutatively.
    let mut workloads = |_client: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: 2_000,
            ..MicroConfig::default()
        }))
    };

    // 4. Run and report.
    let (report, stats) = run_mdcc(&spec, catalog, &data, &mut workloads, MdccMode::Full);
    println!("MDCC quickstart — 5 data centers, 10 geo-distributed clients");
    println!("  committed write txns : {}", report.write_commits());
    println!("  aborted write txns   : {}", report.write_aborts());
    println!(
        "  median latency       : {:.0} ms (one wide-area round trip)",
        report.median_write_ms().unwrap_or(f64::NAN)
    );
    println!(
        "  p99 latency          : {:.0} ms",
        report.write_percentile_ms(99.0).unwrap_or(f64::NAN)
    );
    println!(
        "  fast-path commits    : {} of {} ({}%)",
        stats.fast_commits,
        stats.committed,
        100 * stats.fast_commits / stats.committed.max(1)
    );
    println!("  collisions recovered : {}", stats.collisions);
    assert!(report.write_commits() > 0);
}

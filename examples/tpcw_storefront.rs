//! A TPC-W storefront on MDCC: the paper's §5.2 evaluation in miniature.
//!
//! Runs the full TPC-W ordering mix (fourteen web interactions, ~37 %
//! writes) against a five-data-center MDCC deployment and prints
//! per-interaction latency statistics, then contrasts the write-latency
//! medians with two-phase commit on the identical workload.
//!
//! ```text
//! cargo run --release --example tpcw_storefront
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use mdcc::cluster::{run_mdcc, run_tpc, ClusterSpec, MdccMode};
use mdcc::common::{DcId, SimDuration};
use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
use mdcc::workloads::tpcw::{initial_data, tables, TpcwConfig, TpcwWorkload, STOCK};
use mdcc::workloads::Workload;

fn tpcw_catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with(
                TableSchema::new(tables::ITEM, "item")
                    .with_constraint(AttrConstraint::at_least(STOCK, 0)),
            )
            .with(TableSchema::new(tables::CUSTOMER, "customer"))
            .with(TableSchema::new(tables::ORDERS, "orders"))
            .with(TableSchema::new(tables::ORDER_LINE, "order_line"))
            .with(TableSchema::new(tables::CC_XACTS, "cc_xacts"))
            .with(TableSchema::new(tables::CART, "shopping_cart"))
            .with(TableSchema::new(tables::CART_LINE, "shopping_cart_line"))
            .with(TableSchema::new(tables::AUTHOR, "author")),
    )
}

fn main() {
    const ITEMS: u64 = 2_000;
    let spec = ClusterSpec {
        seed: 9,
        clients: 20,
        shards_per_dc: 2,
        warmup: SimDuration::from_secs(10),
        duration: SimDuration::from_secs(45),
        ..ClusterSpec::default()
    };
    let catalog = tpcw_catalog();
    let data = initial_data(&TpcwConfig::with_scale(ITEMS, 0), 7);

    let mut factory = |client: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(TpcwWorkload::new(TpcwConfig::with_scale(
            ITEMS,
            client as u64,
        )))
    };
    let (report, stats) = run_mdcc(&spec, catalog.clone(), &data, &mut factory, MdccMode::Full);

    println!("TPC-W ordering mix on MDCC — 20 emulated browsers, 5 data centers\n");
    println!("{:<24}{:>8}{:>10}", "interaction", "count", "median ms");
    let mut by_label: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for r in &report.records {
        if r.committed {
            by_label
                .entry(r.label)
                .or_default()
                .push(r.latency().as_millis_f64());
        }
    }
    for (label, mut lat) in by_label {
        lat.sort_by(f64::total_cmp);
        let median = lat[lat.len() / 2];
        println!("{label:<24}{:>8}{median:>10.0}", lat.len());
    }
    println!(
        "\nwrite txns: {} committed / {} aborted, {}% on the fast path",
        report.write_commits(),
        report.write_aborts(),
        100 * stats.fast_commits / stats.committed.max(1),
    );

    // The same storefront on 2PC: two wide-area round trips to all five
    // data centers per write.
    let mut factory = |client: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(TpcwWorkload::new(TpcwConfig::with_scale(
            ITEMS,
            client as u64,
        )))
    };
    let tpc = run_tpc(&spec, catalog, &data, &mut factory);
    println!(
        "\nwrite-latency medians: MDCC {:.0} ms vs 2PC {:.0} ms (paper: 278 vs 668)",
        report.median_write_ms().unwrap_or(f64::NAN),
        tpc.median_write_ms().unwrap_or(f64::NAN)
    );
}

//! Crash–recovery drill: kill a storage node mid-load and watch it come
//! back (§3.2.3's durability story, end to end).
//!
//! A five-data-center cluster serves buy traffic with write-ahead
//! logging on. Mid-run the Ireland storage node is killed — volatile
//! state gone, disk intact — and restarted six seconds later: it rebuilds
//! its record store from checkpoint + WAL replay, re-learns in-flight
//! options, resolves dangling transactions and anti-entropy-syncs the
//! updates it slept through. A client dies too, orphaning its
//! transaction manager's in-flight commit for the peers to resolve.
//!
//! ```text
//! cargo run --release --example crash_recovery_drill
//! ```

use std::sync::Arc;

use mdcc::cluster::{run_mdcc, ClusterSpec, FaultEvent, FaultPlan, MdccMode};
use mdcc::common::{DcId, SimDuration, SimTime};
use mdcc::storage::{AttrConstraint, Catalog, TableSchema};
use mdcc::workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc::workloads::Workload;

fn main() {
    const ITEMS: u64 = 2_000;
    let s = SimDuration::from_secs;
    let spec = ClusterSpec {
        seed: 77,
        clients: 20,
        shards_per_dc: 1,
        warmup: s(5),
        duration: s(30),
        drain: s(12),
        durability: true,
        // Kill the Ireland replica (DC 3) 15 s in, restart it at 21 s;
        // kill client 7 for good at 18 s.
        faults: FaultPlan::new()
            .crash_restart(DcId(3), 0, s(15), s(6))
            .with(FaultEvent::CrashClient {
                at: s(18),
                client: 7,
            }),
        ..ClusterSpec::default()
    };
    let catalog = Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ));
    let data = initial_items(ITEMS, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    let (report, stats) = run_mdcc(&spec, catalog, &data, &mut factory, MdccMode::Full);

    println!("Crash-recovery drill: DC3 storage node down 15 s → 21 s\n");
    println!("{:>6} {:>12} {:>8}", "t (s)", "avg ms", "commits");
    for (t, avg, count) in report.write_time_series(SimDuration::from_secs(5)) {
        let marker = if (12.5..=20.0).contains(&t) {
            "  <- node down"
        } else {
            ""
        };
        println!("{t:>6.0} {avg:>12.1} {count:>8}{marker}");
    }

    println!("\nRecovery:");
    for r in &report.recoveries {
        println!(
            "  node {} (dc{} shard {}): down {:.1} s; replayed {} checkpoint records \
             + {} WAL records ({} WAL bytes), {} pending txns restored",
            r.node,
            r.dc.0,
            r.shard,
            r.downtime().as_secs_f64(),
            r.info.snapshot_records,
            r.info.wal_records_replayed,
            r.info.wal_bytes,
            r.info.pending_restored,
        );
    }
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");
    println!(
        "\nAudit after drain: {} checkpoints, {} records repaired by peer sync, \
     {} dangling txns resolved by storage nodes, {} options pending, min stock {}",
        audit.checkpoints,
        audit.sync_adoptions,
        audit.dangling_resolved,
        audit.pending_options,
        audit.min_of("stock").unwrap_or(0),
    );
    println!(
        "commits: {} total ({} fast), {} while the node was down",
        stats.committed,
        stats.fast_commits,
        report.commits_between(SimTime::from_secs(15), SimTime::from_secs(21)),
    );

    // The drill doubles as an executable spec.
    assert_eq!(report.recoveries.len(), 1);
    assert!(report.commits_between(SimTime::from_secs(15), SimTime::from_secs(21)) > 0);
    assert_eq!(
        audit.pending_options, 0,
        "every dangling transaction resolved"
    );
    assert!(audit.min_of("stock").unwrap_or(0) >= 0, "stock ≥ 0 held");
    let reference = audit.committed_digests[0];
    assert_eq!(
        audit.committed_digests[3], reference,
        "restarted replica reconverged byte-for-byte"
    );
    println!("\nAll recovery invariants held.");
}

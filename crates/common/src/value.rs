//! Record values.
//!
//! A stored record is a [`Row`]: a small ordered map from attribute name to
//! [`Value`]. Commutative updates (§3.4 of the paper) apply integer deltas
//! to individual attributes; physical updates replace the whole row.

use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent / SQL NULL.
    Null,
    /// 64-bit signed integer (the only type commutative deltas apply to).
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the integer payload, or `None` for non-integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A record body: attribute name → value.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Row {
    attrs: BTreeMap<String, Value>,
}

impl Row {
    /// Creates an empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style attribute insertion.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdcc_common::value::Row;
    /// let row = Row::new().with("stock", 10).with("title", "widget");
    /// assert_eq!(row.get_int("stock"), Some(10));
    /// ```
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(attr.into(), value.into());
        self
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set(&mut self, attr: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(attr.into(), value.into())
    }

    /// Reads an attribute.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.attrs.get(attr)
    }

    /// Reads an integer attribute, `None` if absent or non-integer.
    pub fn get_int(&self, attr: &str) -> Option<i64> {
        self.attrs.get(attr).and_then(Value::as_int)
    }

    /// Reads a string attribute, `None` if absent or non-string.
    pub fn get_str(&self, attr: &str) -> Option<&str> {
        self.attrs.get(attr).and_then(Value::as_str)
    }

    /// Adds `delta` to an integer attribute, treating a missing attribute
    /// as zero. Returns the new value.
    ///
    /// This is the execution step of a commutative option: by the time it
    /// runs, the acceptors have already validated the constraint, so the
    /// addition itself is unconditional.
    pub fn apply_delta(&mut self, attr: &str, delta: i64) -> i64 {
        let cur = self.get_int(attr).unwrap_or(0);
        let new = cur + delta;
        self.attrs.insert(attr.to_owned(), Value::Int(new));
        new
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the row has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates attributes in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Row {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Row {
            attrs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_getters() {
        let row = Row::new().with("stock", 4).with("name", "bolt");
        assert_eq!(row.get_int("stock"), Some(4));
        assert_eq!(row.get_str("name"), Some("bolt"));
        assert_eq!(row.get_int("name"), None, "type mismatch yields None");
        assert_eq!(row.get("missing"), None);
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn apply_delta_creates_missing_attributes() {
        let mut row = Row::new();
        assert_eq!(row.apply_delta("stock", -3), -3);
        assert_eq!(row.apply_delta("stock", 5), 2);
        assert_eq!(row.get_int("stock"), Some(2));
    }

    #[test]
    fn set_returns_previous() {
        let mut row = Row::new().with("a", 1);
        assert_eq!(row.set("a", 2), Some(Value::Int(1)));
        assert_eq!(row.set("b", 3), None);
    }

    #[test]
    fn display_is_deterministic() {
        let row = Row::new().with("b", 2).with("a", 1);
        assert_eq!(row.to_string(), "{a: 1, b: 2}");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
    }
}

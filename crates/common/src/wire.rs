//! The shared wire format: a small, dependency-free binary codec.
//!
//! Every byte that moves in this workspace — network messages, WAL
//! frames, checkpoints — is encoded through this module, so a message's
//! cost on the simulated wire and its cost on the simulated disk are the
//! same deterministic function of its value. The workspace has no serde
//! (the build environment is offline), so the encoding is a hand-rolled
//! length-prefixed little-endian format.
//!
//! Two properties matter:
//!
//! * **Determinism** — equal values produce equal bytes. The recovery
//!   audit compares replica states byte-for-byte, and merkle-style sync
//!   digests only work if every replica digests identical bytes for
//!   identical state.
//! * **Coherence** — the [`Wire`] trait lives here; each crate implements
//!   it for the types it owns (`mdcc-paxos` for ballots and cstructs,
//!   `mdcc-storage` for store state, `mdcc-core` for protocol messages).
//!
//! The framing helpers ([`frame`], [`FRAME_OVERHEAD`]) are shared by the
//! WAL (`mdcc-recovery`) and by network-size accounting: a framed payload
//! is `[len: u32][fnv1a checksum: u32][payload]`.

use crate::error::AbortReason;
use crate::ids::{DcId, Key, NodeId, TableId, TxnId};
use crate::time::{SimDuration, SimTime};
use crate::update::{CommutativeUpdate, PhysicalUpdate, RecordUpdate, UpdateOp, Version};
use crate::value::{Row, Value};

/// A decode failure: the bytes do not parse as the expected structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was being decoded when the failure occurred.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed at {}", self.context)
    }
}

impl std::error::Error for WireError {}

/// Decode result alias.
pub type WireResult<T> = Result<T, WireError>;

/// Shorthand for building a decode error.
pub fn err<T>(context: &'static str) -> WireResult<T> {
    Err(WireError { context })
}

/// Byte-buffer encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed raw byte string.
    pub fn raw(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Discards the contents but keeps the allocation — the reuse hook
    /// behind the thread-local scratch encoders.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, without consuming the encoder.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Byte-buffer decoder.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return err(context);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => err("bool"),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n, "str bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            context: "str utf8",
        })
    }

    /// Reads a length-prefixed raw byte string.
    pub fn raw(&mut self) -> WireResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n, "raw bytes")?.to_vec())
    }
}

/// Types with a deterministic binary wire encoding.
pub trait Wire: Sized {
    /// Appends this value to `out`.
    fn encode(&self, out: &mut Enc);
    /// Parses one value from `inp`.
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self>;
}

/// Encodes one value to a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut enc = Enc::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Decodes one value from `bytes`, requiring full consumption.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> WireResult<T> {
    let mut dec = Dec::new(bytes);
    let v = T::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return err("trailing bytes");
    }
    Ok(v)
}

/// The encoded size of one value in bytes (without framing).
///
/// Encodes into a thread-local scratch buffer, so steady-state calls
/// allocate nothing — this sits on the simulator's hottest path (every
/// `Ctx::send` sizes its message through here).
pub fn wire_len<T: Wire>(value: &T) -> usize {
    with_scratch_encoding(value, |bytes| bytes.len())
}

/// Encodes `value` into a thread-local scratch buffer and hands the
/// bytes to `f`. The buffer's allocation is reused across calls, so
/// hot-path size and digest computations stop churning fresh `Vec`s.
///
/// Re-entrancy (encoding *inside* `f`) falls back to a fresh encoder
/// rather than aliasing the scratch buffer.
pub fn with_scratch_encoding<T: Wire, R>(value: &T, f: impl FnOnce(&[u8]) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Enc> = std::cell::RefCell::new(Enc::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut enc) => {
            enc.clear();
            value.encode(&mut enc);
            f(enc.as_slice())
        }
        Err(_) => {
            let mut enc = Enc::new();
            value.encode(&mut enc);
            f(enc.as_slice())
        }
    })
}

/// FNV-1a/64 digest of `value`'s wire encoding, computed through the
/// thread-local scratch buffer (no allocation in steady state). Equal
/// values digest equal — the property cstruct delta-vote verification
/// rests on.
pub fn digest64<T: Wire>(value: &T) -> u64 {
    with_scratch_encoding(value, fnv1a64)
}

// ---------------------------------------------------------------------
// Framing and digests (shared by the WAL and network accounting).
// ---------------------------------------------------------------------

/// Bytes a frame header adds on top of its payload: `[len: u32]` plus
/// `[checksum: u32]`.
pub const FRAME_OVERHEAD: usize = 8;

/// FNV-1a over `bytes`, 32-bit (frame checksums).
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a over `bytes`, 64-bit (state digests, merkle sync ranges).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Frames a payload as `[len][checksum][payload]`.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes and frames one value.
pub fn frame<T: Wire>(value: &T) -> Vec<u8> {
    frame_payload(&to_bytes(value))
}

// ---------------------------------------------------------------------
// Destination-coalesced envelopes.
// ---------------------------------------------------------------------

/// Fixed wire overhead of one envelope: the outer frame header
/// ([`FRAME_OVERHEAD`]) plus a one-byte traffic-class tag and a `u32`
/// message count.
pub const ENVELOPE_BASE_OVERHEAD: usize = FRAME_OVERHEAD + 1 + 4;

/// Per-message overhead inside an envelope: each payload rides behind a
/// `u32` length prefix instead of its own full frame header — coalescing
/// trades one [`FRAME_OVERHEAD`] per message for one length prefix.
pub const ENVELOPE_PER_MSG_OVERHEAD: usize = 4;

/// Several same-class message payloads coalesced into one wire frame.
///
/// The transport's outbox batches messages bound for the same
/// destination and traffic class and ships them as one envelope: one
/// frame header and one per-message service-time floor for the whole
/// batch. Same-class-only coalescing keeps per-class byte attribution
/// exact — every byte of an envelope (including its overhead) belongs
/// to the one class all its payloads share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Traffic-class tag shared by every payload (the dense
    /// `TrafficClass::index`, kept as a raw byte so this crate stays
    /// free of simulator types).
    pub class: u8,
    /// The coalesced message payloads, in send order (per-(src, dst)
    /// FIFO: receivers unpack and dispatch front to back).
    pub payloads: Vec<Vec<u8>>,
}

impl Wire for Envelope {
    fn encode(&self, out: &mut Enc) {
        out.u8(self.class);
        out.u32(self.payloads.len() as u32);
        for p in &self.payloads {
            out.raw(p);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let class = inp.u8()?;
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("envelope count");
        }
        let mut payloads = Vec::with_capacity(n);
        for _ in 0..n {
            payloads.push(inp.raw()?);
        }
        Ok(Envelope { class, payloads })
    }
}

/// Framed wire size of an envelope over payloads of the given *framed*
/// single-message sizes (what [`ENVELOPE_BASE_OVERHEAD`]'s frame-header
/// amortization buys): each message sheds its own frame header and
/// gains a length prefix, and the envelope adds one fixed header.
///
/// Sizes below [`FRAME_OVERHEAD`] (possible only for unframed test
/// payloads, whose whole size saturates away) still pay the
/// [`ENVELOPE_PER_MSG_OVERHEAD`] length prefix each — so coalescing
/// sub-frame-sized toy payloads can bill *more* bytes than bare
/// frames; real protocol messages always report framed sizes.
pub fn envelope_wire_bytes(framed_sizes: impl IntoIterator<Item = usize>) -> usize {
    framed_sizes
        .into_iter()
        .fold(ENVELOPE_BASE_OVERHEAD, |acc, framed| {
            acc + framed.saturating_sub(FRAME_OVERHEAD) + ENVELOPE_PER_MSG_OVERHEAD
        })
}

/// Parses every framed value in `buf`, oldest first, verifying checksums.
pub fn read_frames<T: Wire>(buf: &[u8]) -> WireResult<Vec<T>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < FRAME_OVERHEAD {
            return err("frame header");
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let checksum = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        pos += FRAME_OVERHEAD;
        if buf.len() - pos < len {
            return err("frame body");
        }
        let payload = &buf[pos..pos + len];
        if fnv1a32(payload) != checksum {
            return err("frame checksum");
        }
        out.push(from_bytes::<T>(payload)?);
        pos += len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------------

impl Wire for u64 {
    fn encode(&self, out: &mut Enc) {
        out.u64(*self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.u64()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Enc) {
        out.u32(*self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.u32()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Enc) {
        out.bool(*self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.bool()
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Enc) {
        out.str(self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Enc) {
        match self {
            None => out.u8(0),
            Some(v) => {
                out.u8(1);
                v.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(inp)?)),
            _ => err("option tag"),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        // Guard against absurd lengths from corrupt frames.
        if n > inp.remaining() {
            return err("vec length");
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(inp)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Enc) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok((A::decode(inp)?, B::decode(inp)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Enc) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok((A::decode(inp)?, B::decode(inp)?, C::decode(inp)?))
    }
}

// ---------------------------------------------------------------------
// mdcc-common types.
// ---------------------------------------------------------------------

impl Wire for NodeId {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(NodeId(inp.u32()?))
    }
}

impl Wire for DcId {
    fn encode(&self, out: &mut Enc) {
        out.u8(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(DcId(inp.u8()?))
    }
}

impl Wire for TableId {
    fn encode(&self, out: &mut Enc) {
        out.u16(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(TableId(inp.u16()?))
    }
}

impl Wire for Key {
    fn encode(&self, out: &mut Enc) {
        self.table.encode(out);
        out.str(&self.pk);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let table = TableId::decode(inp)?;
        let pk = inp.str()?;
        Ok(Key { table, pk })
    }
}

impl Wire for TxnId {
    fn encode(&self, out: &mut Enc) {
        self.coordinator.encode(out);
        out.u64(self.seq);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(TxnId {
            coordinator: NodeId::decode(inp)?,
            seq: inp.u64()?,
        })
    }
}

impl Wire for Version {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Version(inp.u64()?))
    }
}

impl Wire for SimTime {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(SimTime(inp.u64()?))
    }
}

impl Wire for SimDuration {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(SimDuration(inp.u64()?))
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Enc) {
        match self {
            Value::Null => out.u8(0),
            Value::Int(i) => {
                out.u8(1);
                out.i64(*i);
            }
            Value::Str(s) => {
                out.u8(2);
                out.str(s);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(inp.i64()?)),
            2 => Ok(Value::Str(inp.str()?)),
            _ => err("value tag"),
        }
    }
}

impl Wire for Row {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        // Row iterates in attribute-name order: deterministic.
        for (attr, value) in self.iter() {
            out.str(attr);
            value.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("row length");
        }
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            pairs.push((inp.str()?, Value::decode(inp)?));
        }
        Ok(pairs.into_iter().collect())
    }
}

impl Wire for PhysicalUpdate {
    fn encode(&self, out: &mut Enc) {
        self.vread.encode(out);
        self.value.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(PhysicalUpdate {
            vread: Option::decode(inp)?,
            value: Option::decode(inp)?,
        })
    }
}

impl Wire for CommutativeUpdate {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.deltas.len() as u32);
        for (attr, delta) in &self.deltas {
            out.str(attr);
            out.i64(*delta);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("deltas length");
        }
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push((inp.str()?, inp.i64()?));
        }
        Ok(CommutativeUpdate { deltas })
    }
}

impl Wire for UpdateOp {
    fn encode(&self, out: &mut Enc) {
        match self {
            UpdateOp::Physical(p) => {
                out.u8(0);
                p.encode(out);
            }
            UpdateOp::Commutative(c) => {
                out.u8(1);
                c.encode(out);
            }
            UpdateOp::ReadGuard(v) => {
                out.u8(2);
                v.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(UpdateOp::Physical(PhysicalUpdate::decode(inp)?)),
            1 => Ok(UpdateOp::Commutative(CommutativeUpdate::decode(inp)?)),
            2 => Ok(UpdateOp::ReadGuard(Version::decode(inp)?)),
            _ => err("update-op tag"),
        }
    }
}

impl Wire for RecordUpdate {
    fn encode(&self, out: &mut Enc) {
        self.key.encode(out);
        self.op.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(RecordUpdate {
            key: Key::decode(inp)?,
            op: UpdateOp::decode(inp)?,
        })
    }
}

impl Wire for AbortReason {
    fn encode(&self, out: &mut Enc) {
        let tag = match self {
            AbortReason::StaleRead => 0,
            AbortReason::PendingOption => 1,
            AbortReason::AlreadyExists => 2,
            AbortReason::DemarcationLimit => 3,
            AbortReason::ConstraintViolation => 4,
            AbortReason::Resolved => 5,
        };
        out.u8(tag);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(AbortReason::StaleRead),
            1 => Ok(AbortReason::PendingOption),
            2 => Ok(AbortReason::AlreadyExists),
            3 => Ok(AbortReason::DemarcationLimit),
            4 => Ok(AbortReason::ConstraintViolation),
            5 => Ok(AbortReason::Resolved),
            _ => err("abort-reason tag"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + std::fmt::Debug>(v: &T) -> T {
        let bytes = to_bytes(v);
        from_bytes(&bytes).expect("round trip")
    }

    #[test]
    fn primitives_and_rows_round_trip() {
        let row = Row::new().with("stock", 42).with("title", "widget");
        assert_eq!(round_trip(&row), row);
        let key = Key::new(TableId(3), "i99");
        assert_eq!(round_trip(&key), key);
        let txn = TxnId::new(NodeId(7), 123);
        assert_eq!(round_trip(&txn), txn);
        assert_eq!(round_trip(&Value::Null), Value::Null);
        assert_eq!(round_trip(&Some(Version(9))), Some(Version(9)));
        assert_eq!(round_trip(&Option::<Version>::None), None);
        assert_eq!(round_trip(&DcId(4)), DcId(4));
        assert_eq!(round_trip(&7u32), 7u32);
        assert_eq!(
            round_trip(&SimDuration::from_millis(3)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn wire_len_matches_encoding() {
        let row = Row::new().with("stock", 42);
        assert_eq!(wire_len(&row), to_bytes(&row).len());
        assert_eq!(wire_len(&Version(1)), 8);
    }

    #[test]
    fn scratch_helpers_match_fresh_encodings() {
        let row = Row::new().with("stock", 42).with("title", "widget");
        assert_eq!(wire_len(&row), to_bytes(&row).len());
        assert_eq!(digest64(&row), fnv1a64(&to_bytes(&row)));
        // Back-to-back calls reuse the buffer without cross-talk.
        let key = Key::new(TableId(3), "i99");
        assert_eq!(wire_len(&key), to_bytes(&key).len());
        assert_eq!(digest64(&row), fnv1a64(&to_bytes(&row)));
        // Re-entrant encoding inside the closure must not alias the
        // scratch buffer.
        let nested = with_scratch_encoding(&row, |outer| {
            let inner = wire_len(&key);
            (outer.len(), inner)
        });
        assert_eq!(nested, (to_bytes(&row).len(), to_bytes(&key).len()));
    }

    #[test]
    fn corrupt_bytes_fail_cleanly() {
        let bytes = to_bytes(&Key::new(TableId(1), "abc"));
        assert!(from_bytes::<Key>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<AbortReason>(&[9]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(
            from_bytes::<Key>(&extended).is_err(),
            "trailing bytes rejected"
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let row_a = Row::new().with("b", 2).with("a", 1);
        let row_b = Row::new().with("a", 1).with("b", 2);
        assert_eq!(
            to_bytes(&row_a),
            to_bytes(&row_b),
            "insertion order irrelevant"
        );
    }

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let values = vec![Version(1), Version(2), Version(3)];
        let mut buf = Vec::new();
        for v in &values {
            buf.extend_from_slice(&frame(v));
        }
        assert_eq!(read_frames::<Version>(&buf).unwrap(), values);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(read_frames::<Version>(&buf).is_err(), "checksum catches");
        buf.truncate(buf.len() - 2);
        assert!(read_frames::<Version>(&buf).is_err(), "torn tail detected");
    }

    #[test]
    fn digests_are_stable() {
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn envelopes_round_trip() {
        let env = Envelope {
            class: 2,
            payloads: vec![vec![1, 2, 3], vec![], vec![0xFF; 300]],
        };
        assert_eq!(round_trip(&env), env);
        let empty = Envelope {
            class: 0,
            payloads: vec![],
        };
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn envelope_wire_bytes_matches_framed_encoding() {
        // Three payloads whose framed single-message sizes would be
        // payload + FRAME_OVERHEAD each; the helper must agree with the
        // actual framed envelope encoding byte for byte.
        let payloads = vec![vec![7u8; 40], vec![9u8; 1], vec![3u8; 250]];
        let framed_sizes: Vec<usize> = payloads.iter().map(|p| p.len() + FRAME_OVERHEAD).collect();
        let env = Envelope { class: 0, payloads };
        let on_wire = frame_payload(&to_bytes(&env)).len();
        assert_eq!(envelope_wire_bytes(framed_sizes), on_wire);
        // Amortization: each coalesced message trades its frame header
        // for a length prefix (saving FRAME_OVERHEAD −
        // ENVELOPE_PER_MSG_OVERHEAD bytes), so the fixed envelope
        // header pays for itself from four messages up.
        let four = envelope_wire_bytes([100; 4]);
        assert!(four < 400, "coalescing four 100-byte frames saves bytes");
    }

    #[test]
    fn corrupt_envelope_fails_cleanly() {
        let env = Envelope {
            class: 1,
            payloads: vec![vec![5u8; 10]],
        };
        let bytes = to_bytes(&env);
        assert!(from_bytes::<Envelope>(&bytes[..bytes.len() - 1]).is_err());
    }
}

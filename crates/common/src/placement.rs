//! Record placement: which nodes replicate a record and who masters it.
//!
//! The paper's deployment (§5.1): every data center holds a full replica;
//! within a data center each table is range-partitioned across storage
//! nodes. A record therefore has one replica node per data center, and a
//! per-record default master chosen among them (MDCC supports "an
//! individual master per record", §2).

use std::sync::Arc;

use crate::ids::{DcId, Key, NodeId};

/// Maps records to replica groups and masters.
pub trait Placement: Send + Sync {
    /// The record's replica nodes, one per data center, indexed by
    /// [`DcId`] order. Position in this vector is the acceptor index used
    /// by learners.
    fn replicas(&self, key: &Key) -> Vec<NodeId>;

    /// The record's default master (one of its replicas).
    fn master(&self, key: &Key) -> NodeId;

    /// Data center of the record's default master (workload locality
    /// experiments select keys by this).
    fn master_dc(&self, key: &Key) -> DcId;

    /// The replica of this record inside `dc` (local reads).
    fn replica_in(&self, key: &Key, dc: DcId) -> NodeId {
        self.replicas(key)[dc.0 as usize]
    }

    /// The acceptor index of `node` within the record's replica group.
    fn acceptor_index(&self, key: &Key, node: NodeId) -> Option<usize> {
        self.replicas(key).iter().position(|n| *n == node)
    }

    /// Number of shards (replica groups) the key space maps onto —
    /// the granularity of dynamic master leases.
    fn shard_count(&self) -> u32;

    /// The shard a record hashes to (stable cluster-wide).
    fn shard_id(&self, key: &Key) -> u32;

    /// The replica group of one shard, one node per data center in
    /// [`DcId`] order (same order as [`Placement::replicas`]).
    fn shard_replicas(&self, shard: u32) -> Vec<NodeId>;
}

/// How default masters are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterPolicy {
    /// Master data center chosen by key hash — uniformly spread, the
    /// paper's default for the micro-benchmark.
    HashedPerRecord,
    /// All records mastered in one data center (the Megastore*-style
    /// configuration, and Figure 3's "play in favor" setup).
    FixedDc(DcId),
}

/// Range/hash-partitioned placement over a symmetric multi-DC cluster.
///
/// `storage_matrix[dc][shard]` is the storage node serving shard `shard`
/// in data center `dc`; all data centers use the same shard count, so a
/// record's replica group is column `shard` of the matrix.
#[derive(Debug, Clone)]
pub struct StaticPlacement {
    storage_matrix: Vec<Vec<NodeId>>,
    shards: usize,
    master_policy: MasterPolicy,
}

impl StaticPlacement {
    /// Builds a placement from the per-DC node lists (all the same
    /// length = shard count).
    ///
    /// # Panics
    ///
    /// Panics if the per-DC lists differ in length or are empty.
    pub fn new(storage_matrix: Vec<Vec<NodeId>>, master_policy: MasterPolicy) -> Arc<Self> {
        let shards = storage_matrix.first().map(|v| v.len()).unwrap_or(0);
        assert!(shards > 0, "placement needs at least one shard");
        assert!(
            storage_matrix.iter().all(|v| v.len() == shards),
            "every data center must serve every shard"
        );
        Arc::new(Self {
            storage_matrix,
            shards,
            master_policy,
        })
    }

    /// Number of shards per data center.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of data centers.
    pub fn dcs(&self) -> usize {
        self.storage_matrix.len()
    }

    /// The shard a key hashes to.
    pub fn shard_of(&self, key: &Key) -> usize {
        (fnv1a(key) % self.shards as u64) as usize
    }
}

impl Placement for StaticPlacement {
    fn replicas(&self, key: &Key) -> Vec<NodeId> {
        let shard = self.shard_of(key);
        self.storage_matrix.iter().map(|dc| dc[shard]).collect()
    }

    fn master(&self, key: &Key) -> NodeId {
        let dc = self.master_dc(key);
        self.replica_in(key, dc)
    }

    fn master_dc(&self, key: &Key) -> DcId {
        match self.master_policy {
            MasterPolicy::FixedDc(dc) => dc,
            MasterPolicy::HashedPerRecord => {
                // Decorrelate from the shard hash so shards do not pin
                // masters.
                DcId(((fnv1a(key) >> 32) % self.dcs() as u64) as u8)
            }
        }
    }

    fn shard_count(&self) -> u32 {
        self.shards as u32
    }

    fn shard_id(&self, key: &Key) -> u32 {
        self.shard_of(key) as u32
    }

    fn shard_replicas(&self, shard: u32) -> Vec<NodeId> {
        self.storage_matrix
            .iter()
            .map(|dc| dc[shard as usize])
            .collect()
    }
}

/// FNV-1a over the key's table id and primary key.
fn fnv1a(key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in key.table.0.to_le_bytes() {
        eat(b);
    }
    for b in key.pk.as_bytes() {
        eat(*b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;

    fn matrix() -> Vec<Vec<NodeId>> {
        // 3 DCs × 2 shards; node ids arbitrary but distinct.
        vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(10), NodeId(11)],
            vec![NodeId(20), NodeId(21)],
        ]
    }

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    #[test]
    fn replica_group_is_one_node_per_dc() {
        let p = StaticPlacement::new(matrix(), MasterPolicy::HashedPerRecord);
        let reps = p.replicas(&key("a"));
        assert_eq!(reps.len(), 3);
        let shard = p.shard_of(&key("a"));
        assert_eq!(reps[0], NodeId(shard as u32));
        assert_eq!(reps[1], NodeId(10 + shard as u32));
        assert_eq!(reps[2], NodeId(20 + shard as u32));
    }

    #[test]
    fn master_is_one_of_the_replicas() {
        let p = StaticPlacement::new(matrix(), MasterPolicy::HashedPerRecord);
        for pk in ["a", "b", "c", "zeta", "item42"] {
            let k = key(pk);
            let m = p.master(&k);
            assert!(p.replicas(&k).contains(&m), "{pk}");
            assert_eq!(p.acceptor_index(&k, m).unwrap(), p.master_dc(&k).0 as usize);
        }
    }

    #[test]
    fn fixed_master_policy_pins_the_dc() {
        let p = StaticPlacement::new(matrix(), MasterPolicy::FixedDc(DcId(2)));
        for pk in ["a", "b", "c"] {
            assert_eq!(p.master_dc(&key(pk)), DcId(2));
            assert_eq!(p.master(&key(pk)), p.replica_in(&key(pk), DcId(2)));
        }
    }

    #[test]
    fn hashed_masters_spread_across_dcs() {
        let p = StaticPlacement::new(matrix(), MasterPolicy::HashedPerRecord);
        let mut seen = [0usize; 3];
        for i in 0..300 {
            let dc = p.master_dc(&key(&format!("k{i}")));
            seen[dc.0 as usize] += 1;
        }
        for (dc, count) in seen.iter().enumerate() {
            assert!(*count > 50, "dc{dc} got only {count} masters of 300");
        }
    }

    #[test]
    fn local_replica_lookup() {
        let p = StaticPlacement::new(matrix(), MasterPolicy::HashedPerRecord);
        let k = key("a");
        let local = p.replica_in(&k, DcId(1));
        assert_eq!(local, p.replicas(&k)[1]);
        assert_eq!(p.acceptor_index(&k, NodeId(99)), None);
    }
}

//! Shared vocabulary types for the MDCC reproduction.
//!
//! This crate is dependency-free and holds the types every other crate
//! speaks: identifiers ([`NodeId`], [`TxnId`], [`Key`]), simulated time
//! ([`time::SimTime`]), record values ([`value::Value`]), update operations
//! ([`update::UpdateOp`]) and protocol-wide configuration
//! ([`config::ProtocolConfig`]).
//!
//! Design note: all types here are plain data — no behaviour that depends on
//! a runtime — so the protocol crates stay sans-IO and testable in isolation.

pub mod config;
pub mod error;
pub mod ids;
pub mod placement;
pub mod time;
pub mod update;
pub mod value;
pub mod wire;

pub use config::{MastershipConfig, ProtocolConfig, StorageKind};
pub use error::{MdccError, Result};
pub use ids::{DcId, Key, NodeId, TableId, TxnId};
pub use placement::{MasterPolicy, Placement, StaticPlacement};
pub use time::{SimDuration, SimTime};
pub use update::{CommutativeUpdate, PhysicalUpdate, RecordUpdate, UpdateOp, Version, WriteSet};
pub use value::{Row, Value};

//! Error types shared across the workspace.

use std::fmt;

use crate::ids::{Key, TxnId};

/// Convenience alias used by all fallible MDCC APIs.
pub type Result<T> = std::result::Result<T, MdccError>;

/// Why a transaction or protocol operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdccError {
    /// The transaction aborted because at least one option was learned as
    /// rejected (write-write conflict or constraint violation).
    TxnAborted {
        /// The aborted transaction.
        txn: TxnId,
        /// The first record whose option was rejected.
        conflict_key: Key,
        /// Human-readable rejection reason from the storage nodes.
        reason: AbortReason,
    },
    /// The operation did not complete before its deadline (e.g. a quorum
    /// was unreachable).
    Timeout {
        /// What was being waited for.
        what: &'static str,
    },
    /// A read or write referenced a table unknown to the schema.
    UnknownTable(Key),
    /// The record does not exist (reads and version-checked updates).
    NotFound(Key),
    /// An internal invariant was violated; indicates a bug, not a normal
    /// protocol outcome.
    Internal(String),
}

/// The storage-node-level reason an option was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// `vread` no longer matches the current version (write-write conflict).
    StaleRead,
    /// Another outstanding option already occupies the record's instance.
    PendingOption,
    /// The record already exists (failed insert).
    AlreadyExists,
    /// A commutative delta would violate the quorum demarcation limit.
    DemarcationLimit,
    /// The integrity constraint itself would be violated even without
    /// pending options.
    ConstraintViolation,
    /// The coordinator (or recovery) resolved the transaction as aborted.
    Resolved,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::StaleRead => "stale read (write-write conflict)",
            AbortReason::PendingOption => "outstanding option on record",
            AbortReason::AlreadyExists => "record already exists",
            AbortReason::DemarcationLimit => "quorum demarcation limit reached",
            AbortReason::ConstraintViolation => "integrity constraint violated",
            AbortReason::Resolved => "resolved as aborted by recovery",
        };
        f.write_str(s)
    }
}

impl fmt::Display for MdccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdccError::TxnAborted {
                txn,
                conflict_key,
                reason,
            } => write!(f, "{txn} aborted on {conflict_key}: {reason}"),
            MdccError::Timeout { what } => write!(f, "timeout waiting for {what}"),
            MdccError::UnknownTable(key) => write!(f, "unknown table for {key}"),
            MdccError::NotFound(key) => write!(f, "record not found: {key}"),
            MdccError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MdccError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, TableId};

    #[test]
    fn display_includes_context() {
        let err = MdccError::TxnAborted {
            txn: TxnId::new(NodeId(3), 9),
            conflict_key: Key::new(TableId(1), "item7"),
            reason: AbortReason::StaleRead,
        };
        let text = err.to_string();
        assert!(text.contains("txn(n3,9)"));
        assert!(text.contains("t1/item7"));
        assert!(text.contains("stale read"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(MdccError::Timeout { what: "quorum" });
        assert_eq!(err.to_string(), "timeout waiting for quorum");
    }
}

//! Identifiers for data centers, nodes, tables, records and transactions.

use std::fmt;

/// Identifier of a geographic data center (the paper deploys five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DcId(pub u8);

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// Identifier of a simulated process (storage node, app server or client).
///
/// Node ids are dense, assigned by the cluster builder; the topology layer
/// maps each node to its [`DcId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a logical table (TPC-W has eight, the micro-benchmark one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u16);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Primary key of a record: the table it lives in plus a table-unique id.
///
/// TPC-W composite keys (e.g. order lines) are flattened into the `pk`
/// string by the workload layer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Table this record belongs to.
    pub table: TableId,
    /// Table-unique primary key.
    pub pk: String,
}

impl Key {
    /// Creates a key in `table` with primary key `pk`.
    pub fn new(table: TableId, pk: impl Into<String>) -> Self {
        Self {
            table,
            pk: pk.into(),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.table, self.pk)
    }
}

/// Globally unique transaction identifier.
///
/// The paper uses UUIDs; we use the coordinating app-server's [`NodeId`]
/// plus a per-coordinator sequence number, which is unique under the same
/// assumption (coordinators never reuse sequence numbers) and — unlike a
/// UUID — totally ordered, which tests exploit for deterministic
/// tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Node that coordinates the transaction.
    pub coordinator: NodeId,
    /// Coordinator-local sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Creates the `seq`-th transaction id of `coordinator`.
    pub fn new(coordinator: NodeId, seq: u64) -> Self {
        Self { coordinator, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn({},{})", self.coordinator, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display_and_ordering() {
        let a = Key::new(TableId(1), "item42");
        let b = Key::new(TableId(1), "item43");
        let c = Key::new(TableId(2), "item42");
        assert_eq!(a.to_string(), "t1/item42");
        assert!(a < b);
        assert!(b < c, "table dominates pk in the ordering");
    }

    #[test]
    fn txn_ids_are_totally_ordered_by_coordinator_then_seq() {
        let a = TxnId::new(NodeId(1), 7);
        let b = TxnId::new(NodeId(1), 8);
        let c = TxnId::new(NodeId(2), 0);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a, TxnId::new(NodeId(1), 7));
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(DcId(3).to_string(), "dc3");
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(TxnId::new(NodeId(2), 5).to_string(), "txn(n2,5)");
    }
}

//! Protocol-wide configuration.

use std::fmt;

use crate::time::SimDuration;

/// Which storage engine backs each storage node's record map.
///
/// Both backends are proven byte-identical at the cluster level: what a
/// node says on the wire and persists in its WAL is a pure function of
/// the records' logical state, which every backend round-trips exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// Every record lives fully materialized in an in-memory hash map —
    /// the reference backend (fastest reads, RSS grows with record
    /// count × materialized-record size).
    #[default]
    Mem,
    /// Log-structured: records are encoded into append-only in-memory
    /// segments behind a sparse index, with a bounded cache of
    /// materialized records (see
    /// [`ProtocolConfig::log_cache_records`]) and copy-forward segment
    /// compaction once dead bytes outweigh live ones. RSS stays
    /// O(encoded state + working set) instead of O(materialized
    /// records).
    LogStructured,
}

/// Dynamic-mastership knobs: shard-granular master leases renewed by
/// heartbeat, omnipaxos-style ballot leader election, and access-driven
/// master migration.
///
/// Disabled by default. With `enabled = false` no mastership timer is
/// armed, no mastership message is sent and no RNG is consumed — runs
/// are byte-identical to static placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MastershipConfig {
    /// Master switch. Off reproduces static per-record placement
    /// byte-identically.
    pub enabled: bool,
    /// Base interval between heartbeat/lease ticks at every replica.
    /// Each tick closes the previous heartbeat round, renews any held
    /// lease, and checks the migration hysteresis.
    pub heartbeat_interval: SimDuration,
    /// How long one lease grant is valid. A holder renews every tick,
    /// so this should be at least 3× the heartbeat interval to ride out
    /// a lost renewal round; it also bounds the unavailability window
    /// after a master crash (a successor must wait out the acked
    /// expiry).
    pub lease_duration: SimDuration,
    /// Added to the tick delay after a contested election round
    /// (omnipaxos-style increasing heartbeat delay), decayed back to
    /// the base once a lease settles.
    pub hb_delay_increment: SimDuration,
    /// Access-driven migration fires when a remote data center's
    /// mastered-request count reaches this percentage of the holder's
    /// local count (200 = twice the local traffic).
    pub migrate_threshold_pct: u32,
    /// A remote data center must additionally sustain at least this
    /// many mastered requests *per second* over the observation window.
    /// Rate-normalized, so the knob means the same thing at
    /// `--scale=quick`, `paper` and `10x` (a per-tick count would not:
    /// client pools and tick cadence change with scale).
    pub migrate_min_rate: u64,
    /// Observation window for the migration rate. The holder only
    /// evaluates the hysteresis once a window's worth of traffic has
    /// accumulated; the window then decays exponentially (counts halve,
    /// the window start moves halfway forward).
    pub migrate_window: SimDuration,
    /// The same remote data center must stay dominant for this many
    /// consecutive evaluations before the lease is handed off
    /// (hysteresis).
    pub migrate_rounds: u32,
    /// Lease-carried Phase1 (on by default): a granted lease ballot
    /// doubles as the Phase1-promised classic ballot for every record
    /// in the lease's scope. Granting replicas enforce the lease ballot
    /// as a per-record promise floor, so the holder's first Phase2a for
    /// a cold record is immediately valid — no per-record
    /// Phase1a/Phase1b exchange, cutting a cold key's first mastered
    /// commit from two WAN round trips to one. `false` restores the
    /// per-record classic Phase1 on first touch, byte-identical to the
    /// shard-lease baseline.
    pub lease_phase1: bool,
    /// Bound on the per-shard record-override table (records whose
    /// promise rose above the shard's base lease ballot). Past the cap
    /// the least-recently-touched half is spilled deterministically;
    /// a spilled record merely falls back to the base lease floor.
    pub lease_record_overrides: usize,
}

impl Default for MastershipConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            heartbeat_interval: SimDuration::from_millis(100),
            lease_duration: SimDuration::from_millis(400),
            hb_delay_increment: SimDuration::from_millis(25),
            migrate_threshold_pct: 200,
            migrate_min_rate: 20,
            migrate_window: SimDuration::from_millis(400),
            migrate_rounds: 2,
            lease_phase1: true,
            lease_record_overrides: 64,
        }
    }
}

impl MastershipConfig {
    /// An enabled config with the defaults above.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Tunable parameters of the MDCC commit protocol.
///
/// The defaults mirror the paper's deployment: replication factor `N = 5`
/// (one replica per data center), classic quorum 3, fast quorum 4, and a
/// fast-policy window of `γ = 100` classic instances after a collision
/// (§3.3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Replication factor `N` — number of storage nodes per record.
    pub replication: usize,
    /// Classic quorum size `|Q_C|`.
    pub classic_quorum: usize,
    /// Fast quorum size `|Q_F|`.
    pub fast_quorum: usize,
    /// Number of instances forced classic after a collision before fast
    /// ballots are retried (the paper's γ).
    pub gamma: u64,
    /// How long a coordinator waits to learn an option before starting
    /// collision recovery.
    pub learn_timeout: SimDuration,
    /// How long a storage node waits on an outstanding option before
    /// triggering dangling-transaction recovery (§3.2.3).
    pub dangling_timeout: SimDuration,
    /// Maximum number of options absorbed into one fast-commutative
    /// instance before the master closes it with a classic round and
    /// re-bases demarcation limits.
    pub max_instance_options: usize,
    /// How often a durable storage node checkpoints its store to disk
    /// and compacts its WAL.
    pub checkpoint_interval: SimDuration,
    /// How often a restarted storage node runs an anti-entropy sync
    /// round against a peer replica (catch-up for state it missed while
    /// down).
    pub recovery_sync_interval: SimDuration,
    /// Drive restart anti-entropy with merkle-style range digests and
    /// batched chunks (`true`, the default): only key ranges whose
    /// digests diverge ship, in multi-record messages. `false` restores
    /// the legacy per-key `SyncKey` flood (baseline for byte
    /// comparisons).
    pub sync_batching: bool,
    /// Keys per sync digest range and per shipped sync chunk message.
    pub sync_chunk_keys: usize,
    /// Ship Phase2b votes as per-option deltas plus a cstruct digest
    /// (`true`, the default): an acceptor sends only the options appended
    /// since its last vote, and learners fold them into per-acceptor
    /// shadow views, falling back to an explicit `CstructPull` /
    /// `CstructFull` read-repair round trip when digests disagree
    /// (ballot change, reordering, message loss). `false` restores the
    /// legacy full-cstruct votes (baseline for byte comparisons and
    /// equivalence testing).
    pub delta_votes: bool,
    /// Coalesce same-destination, same-traffic-class sends into batched
    /// envelope frames (`true`, the default): every sender's outbox is
    /// flushed as one envelope per (destination, class) — one frame
    /// header and one per-message service-time floor per envelope
    /// instead of per message. `false` restores per-message frames,
    /// byte-identical to the PR 3 transport (the equivalence baseline).
    pub coalesce: bool,
    /// Nagle-style flush delay for the coalescing outbox. Zero flushes
    /// at the end of every event handling (messages produced by one
    /// handler still batch); a positive window holds the outbox up to
    /// this long so bursts *across* events coalesce too — the knob that
    /// matters on hot nodes, where back-to-back handlings each fan out
    /// to the same destinations.
    pub coalesce_window: SimDuration,
    /// Batch WAL durability per node (`true`, the default): appends
    /// accumulate in the disk's write-back cache and one covering fsync
    /// — triggered by `group_commit_window` or `group_commit_bytes`,
    /// mirroring the coalescing outbox's Nagle design — makes the whole
    /// batch durable for a single `fsync_latency` charge, with every
    /// ack held until its covering fsync fires. `false` restores one
    /// synchronous fsync per append (the equivalence baseline). Inert
    /// while `fsync_latency` is zero, where appends are free and
    /// write-through anyway.
    pub group_commit: bool,
    /// How long an unsynced WAL append may wait for its covering group
    /// fsync. Zero still batches every append made while handling one
    /// event (an envelope delivering N messages pays one fsync); a
    /// positive window lets bursts *across* events share a flush.
    pub group_commit_window: SimDuration,
    /// Unsynced-byte threshold that triggers an immediate group fsync
    /// without waiting out the window (bounds both batch latency and
    /// the data at risk in the write-back cache).
    pub group_commit_bytes: usize,
    /// Storage engine backing each node's record map.
    pub storage: StorageKind,
    /// Cache capacity (materialized records) of the log-structured
    /// backend; ignored by [`StorageKind::Mem`]. When the cache
    /// overflows, the least-recently-touched half is encoded back into
    /// segments and dropped.
    pub log_cache_records: usize,
    /// Incremental-compaction budget of the log-structured backend:
    /// once compaction triggers, at most this many bytes are
    /// copied forward per storage event instead of rewriting the whole
    /// store inside one event. Zero (the default) keeps the
    /// stop-the-world behaviour; the final store state is byte-identical
    /// either way.
    pub compact_budget_bytes: usize,
    /// Dynamic mastership: shard-granular leases, ballot leader
    /// election, access-driven migration. Off by default (static
    /// placement, byte-identical to earlier revisions).
    pub mastership: MastershipConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            replication: 5,
            classic_quorum: 3,
            fast_quorum: 4,
            gamma: 100,
            learn_timeout: SimDuration::from_millis(600),
            dangling_timeout: SimDuration::from_millis(5_000),
            max_instance_options: 32,
            checkpoint_interval: SimDuration::from_millis(10_000),
            recovery_sync_interval: SimDuration::from_millis(2_500),
            sync_batching: true,
            sync_chunk_keys: 32,
            delta_votes: true,
            coalesce: true,
            coalesce_window: SimDuration::from_micros(500),
            group_commit: true,
            group_commit_window: SimDuration::from_micros(500),
            group_commit_bytes: 256 * 1024,
            storage: StorageKind::Mem,
            log_cache_records: 4096,
            compact_budget_bytes: 0,
            mastership: MastershipConfig::default(),
        }
    }
}

/// A violated Fast Paxos quorum-size requirement (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumRuleViolation {
    /// Two classic quorums might not intersect: `2·|Q_C| ≤ N`.
    ClassicClassic,
    /// A classic and a fast quorum might not intersect: `|Q_C| + |Q_F| ≤ N`.
    ClassicFast,
    /// Two fast quorums and one classic quorum might have an empty common
    /// intersection: `2·|Q_F| + |Q_C| ≤ 2·N`.
    FastFastClassic,
    /// A quorum size exceeds the replication factor or is zero.
    Bounds,
}

impl fmt::Display for QuorumRuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuorumRuleViolation::ClassicClassic => "2*Qc must exceed N",
            QuorumRuleViolation::ClassicFast => "Qc + Qf must exceed N",
            QuorumRuleViolation::FastFastClassic => "2*Qf + Qc must exceed 2*N",
            QuorumRuleViolation::Bounds => "quorum sizes must be in 1..=N",
        };
        f.write_str(s)
    }
}

impl ProtocolConfig {
    /// Builds a config for replication factor `n` with the smallest safe
    /// quorums: `|Q_C| = ⌊n/2⌋ + 1` and the minimum `|Q_F|` satisfying the
    /// fast-quorum requirement.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdcc_common::ProtocolConfig;
    /// let c = ProtocolConfig::for_replication(5);
    /// assert_eq!((c.classic_quorum, c.fast_quorum), (3, 4));
    /// let c = ProtocolConfig::for_replication(7);
    /// assert_eq!((c.classic_quorum, c.fast_quorum), (4, 6));
    /// ```
    pub fn for_replication(n: usize) -> Self {
        let classic = n / 2 + 1;
        // Smallest Qf with Qc + Qf > n and 2*Qf + Qc > 2n.
        let mut fast = classic.max(n - classic + 1);
        while 2 * fast + classic <= 2 * n {
            fast += 1;
        }
        Self {
            replication: n,
            classic_quorum: classic,
            fast_quorum: fast.min(n),
            ..Self::default()
        }
    }

    /// Checks the Fast Paxos quorum requirements, returning the first
    /// violated rule if any.
    pub fn validate(&self) -> std::result::Result<(), QuorumRuleViolation> {
        let n = self.replication;
        let qc = self.classic_quorum;
        let qf = self.fast_quorum;
        if qc == 0 || qf == 0 || qc > n || qf > n {
            return Err(QuorumRuleViolation::Bounds);
        }
        if 2 * qc <= n {
            return Err(QuorumRuleViolation::ClassicClassic);
        }
        if qc + qf <= n {
            return Err(QuorumRuleViolation::ClassicFast);
        }
        if 2 * qf + qc <= 2 * n {
            return Err(QuorumRuleViolation::FastFastClassic);
        }
        Ok(())
    }

    /// The paper's formula for how many of the `N·X` replicated resources
    /// may silently remain after constraint exhaustion: `(N − Q_F)·X`
    /// spread over `N` nodes, i.e. the demarcation numerator (§3.4.2).
    pub fn demarcation_slack_num(&self) -> usize {
        self.replication - self.fast_quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let c = ProtocolConfig::default();
        assert_eq!(c.replication, 5);
        assert_eq!(c.classic_quorum, 3);
        assert_eq!(c.fast_quorum, 4);
        assert_eq!(c.gamma, 100);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn for_replication_produces_valid_configs() {
        for n in 1..=11 {
            let c = ProtocolConfig::for_replication(n);
            assert!(
                c.validate().is_ok(),
                "n={n} produced invalid quorums ({}, {})",
                c.classic_quorum,
                c.fast_quorum
            );
        }
    }

    #[test]
    fn three_replicas_need_fast_quorum_of_three() {
        // With N=3, Qc=2: 2*Qf + 2 > 6 requires Qf = 3 (every node).
        let c = ProtocolConfig::for_replication(3);
        assert_eq!(c.fast_quorum, 3);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = ProtocolConfig {
            classic_quorum: 2,
            ..ProtocolConfig::default()
        };
        assert_eq!(c.validate(), Err(QuorumRuleViolation::ClassicClassic));

        let c = ProtocolConfig {
            fast_quorum: 3,
            ..ProtocolConfig::default()
        };
        assert_eq!(c.validate(), Err(QuorumRuleViolation::FastFastClassic));

        let c = ProtocolConfig {
            fast_quorum: 9,
            ..ProtocolConfig::default()
        };
        assert_eq!(c.validate(), Err(QuorumRuleViolation::Bounds));

        let c = ProtocolConfig {
            replication: 9,
            ..ProtocolConfig::default()
        };
        // Qc=3, Qf=4: Qc+Qf=7 ≤ 9.
        assert_eq!(c.validate(), Err(QuorumRuleViolation::ClassicClassic));
    }

    #[test]
    fn demarcation_slack() {
        assert_eq!(ProtocolConfig::default().demarcation_slack_num(), 1);
    }
}

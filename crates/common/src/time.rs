//! Simulated time.
//!
//! The discrete-event simulator advances a virtual clock; nothing in the
//! workspace reads the host clock. Time is kept in microseconds, which is
//! fine-grained enough for intra-data-center latencies (~1 ms) while a
//! `u64` still covers ~584 000 years of simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This instant expressed in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional milliseconds (rounds to µs).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// This duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(250).as_micros(), 250_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(80).as_micros(), 80_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_micros(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!((t - SimTime::from_millis(100)).as_millis(), 50);
        // Subtraction saturates rather than panicking.
        assert_eq!((SimTime::ZERO - t).as_micros(), 0);
        assert_eq!((SimDuration::from_millis(10) * 3).as_millis(), 30);
        assert_eq!((SimDuration::from_millis(10) / 4).as_micros(), 2_500);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.since(a).as_millis(), 4);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(1234).to_string(), "1.234ms");
    }
}

//! Update operations collected in a transaction's write-set.
//!
//! MDCC represents every write as `vread → vwrite` (§3.2.1): a *physical*
//! update replaces the record and is only valid if the record version the
//! transaction read is still current; a *commutative* update (§3.4) carries
//! attribute deltas and commutes with other commutative updates subject to
//! the table's value constraints.

use std::fmt;
use std::sync::Arc;

use crate::ids::{Key, TxnId};
use crate::value::Row;

/// Version number of a record. Each decided Paxos instance produces the
/// next version, whether the deciding option committed or aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version of a freshly created record's first instance.
    pub const ZERO: Version = Version(0);

    /// The next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A whole-record replacement, insert or delete.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhysicalUpdate {
    /// The version this transaction read. `None` marks an insert: the
    /// update is only valid if the record does not exist yet.
    pub vread: Option<Version>,
    /// The new row. `None` marks a delete (tombstone).
    pub value: Option<Row>,
}

impl PhysicalUpdate {
    /// An update of an existing record read at `vread`.
    pub fn write(vread: Version, value: Row) -> Self {
        Self {
            vread: Some(vread),
            value: Some(value),
        }
    }

    /// An insert of a record that must not exist yet.
    pub fn insert(value: Row) -> Self {
        Self {
            vread: None,
            value: Some(value),
        }
    }

    /// A delete of a record read at `vread`.
    pub fn delete(vread: Version) -> Self {
        Self {
            vread: Some(vread),
            value: None,
        }
    }

    /// True if this is an insert (missing `vread`, §3.2.1).
    pub fn is_insert(&self) -> bool {
        self.vread.is_none()
    }

    /// True if this is a delete (tombstone write).
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }
}

/// A set of commutative attribute deltas, e.g. `decrement(stock, 1)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CommutativeUpdate {
    /// `(attribute, delta)` pairs; a negative delta is a decrement.
    pub deltas: Vec<(String, i64)>,
}

impl CommutativeUpdate {
    /// A single-attribute delta.
    pub fn delta(attr: impl Into<String>, delta: i64) -> Self {
        Self {
            deltas: vec![(attr.into(), delta)],
        }
    }

    /// Builder-style extra delta.
    pub fn and(mut self, attr: impl Into<String>, delta: i64) -> Self {
        self.deltas.push((attr.into(), delta));
        self
    }

    /// Net delta applied to `attr` by this update.
    pub fn delta_for(&self, attr: &str) -> i64 {
        self.deltas
            .iter()
            .filter(|(a, _)| a == attr)
            .map(|(_, d)| d)
            .sum()
    }
}

/// Either kind of update, or a read guard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Version-checked whole-record write.
    Physical(PhysicalUpdate),
    /// Constraint-checked attribute deltas.
    Commutative(CommutativeUpdate),
    /// Read-set validation (§4.4, the paper's serializability extension):
    /// asserts the record is still at the version the transaction read.
    /// Accepted guards act as shared locks — they coexist with each other
    /// but conflict with every write — and execute as no-ops.
    ReadGuard(Version),
}

impl UpdateOp {
    /// True for [`UpdateOp::Commutative`].
    pub fn is_commutative(&self) -> bool {
        matches!(self, UpdateOp::Commutative(_))
    }

    /// True for [`UpdateOp::Physical`] — the only kind whose decision
    /// consumes the record's Paxos instance.
    pub fn is_physical(&self) -> bool {
        matches!(self, UpdateOp::Physical(_))
    }

    /// True for [`UpdateOp::ReadGuard`].
    pub fn is_guard(&self) -> bool {
        matches!(self, UpdateOp::ReadGuard(_))
    }
}

/// One update within a transaction's write-set, bound to a record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordUpdate {
    /// The record being updated.
    pub key: Key,
    /// The operation.
    pub op: UpdateOp,
}

impl RecordUpdate {
    /// Convenience constructor.
    pub fn new(key: Key, op: UpdateOp) -> Self {
        Self { key, op }
    }
}

/// A transaction's complete write-set, as collected at commit time
/// (optimistic execution, §3.2.1).
///
/// The keys of all updates ride along with every option so that any node
/// can reconstruct a dangling transaction after a coordinator failure
/// (§3.2.3); [`WriteSet::keys`] is the shared list used for that purpose.
#[derive(Debug, Clone)]
pub struct WriteSet {
    /// The transaction these updates belong to.
    pub txn: TxnId,
    /// One update per record. At most one update per key (the transaction
    /// manager merges repeated writes before commit).
    pub updates: Vec<RecordUpdate>,
    /// Shared copy of all write-set keys, embedded in every option.
    pub keys: Arc<[Key]>,
}

impl WriteSet {
    /// Builds a write-set, capturing the key list for recovery metadata.
    pub fn new(txn: TxnId, updates: Vec<RecordUpdate>) -> Self {
        let keys: Arc<[Key]> = updates.iter().map(|u| u.key.clone()).collect();
        Self { txn, updates, keys }
    }

    /// Number of records written.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the transaction wrote nothing (read-only).
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, TableId};

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    #[test]
    fn physical_update_kinds() {
        let w = PhysicalUpdate::write(Version(3), Row::new().with("a", 1));
        assert!(!w.is_insert());
        assert!(!w.is_delete());

        let i = PhysicalUpdate::insert(Row::new());
        assert!(i.is_insert());
        assert!(!i.is_delete());

        let d = PhysicalUpdate::delete(Version(9));
        assert!(!d.is_insert());
        assert!(d.is_delete());
    }

    #[test]
    fn commutative_net_delta() {
        let up = CommutativeUpdate::delta("stock", -2)
            .and("sold", 2)
            .and("stock", -1);
        assert_eq!(up.delta_for("stock"), -3);
        assert_eq!(up.delta_for("sold"), 2);
        assert_eq!(up.delta_for("missing"), 0);
    }

    #[test]
    fn version_next_is_monotone() {
        assert!(Version::ZERO < Version::ZERO.next());
        assert_eq!(Version(41).next(), Version(42));
    }

    #[test]
    fn write_set_captures_keys() {
        let txn = TxnId::new(NodeId(1), 1);
        let ws = WriteSet::new(
            txn,
            vec![
                RecordUpdate::new(
                    key("a"),
                    UpdateOp::Commutative(CommutativeUpdate::delta("x", 1)),
                ),
                RecordUpdate::new(
                    key("b"),
                    UpdateOp::Physical(PhysicalUpdate::insert(Row::new())),
                ),
            ],
        );
        assert_eq!(ws.len(), 2);
        assert!(!ws.is_empty());
        assert_eq!(ws.keys.len(), 2);
        assert_eq!(ws.keys[0], key("a"));
        assert_eq!(ws.keys[1], key("b"));
    }
}

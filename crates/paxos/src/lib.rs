//! The Paxos machinery behind MDCC: Classic, Multi-, Fast and Generalized
//! Paxos executed *per record*, with transaction options instead of plain
//! values.
//!
//! Everything in this crate is sans-IO: pure state machines and algebra
//! that consume typed inputs and return typed outputs. `mdcc-core` mounts
//! them on the simulator; tests drive them directly.
//!
//! Module tour:
//!
//! * [`ballot`] — ballot numbers; classic ballots outrank fast ballots of
//!   the same round (§3.3.1).
//! * [`options`] — transaction options ω(up, ✓/✗): the paper's central
//!   trick of agreeing on *the right to execute an update* rather than the
//!   update itself (§3.2.1).
//! * [`cstruct`] — command structures from Generalized Paxos with trace
//!   semantics: commutative accepted options commute, rejected options are
//!   neutral, physical accepted options are barriers (§3.4.1).
//! * [`quorum`] — classic/fast quorum arithmetic and subset enumeration.
//! * [`demarcation`] — the paper's new quorum demarcation limit
//!   `L = (N−Q_F)/N · X` plus the escrow-style pending-option check
//!   (§3.4.2, Figure 2).
//! * [`acceptor`] — per-record storage-node state: Phase1b, Phase2b
//!   classic/fast, option validation, visibility application.
//! * [`leader`] — per-record master: Phase1a, ProvedSafe, Phase2a,
//!   the fast⇄classic γ policy (§3.3.2).
//! * [`learner`] — coordinator-side learning of option statuses from
//!   Phase2b quorums, including definite-collision detection.
//! * [`shadow`] — delta votes and per-acceptor shadow views: Phase2b
//!   fan-out ships only newly appended options plus a cstruct digest,
//!   with explicit read-repair on digest mismatch.

pub mod acceptor;
pub mod ballot;
pub mod cstruct;
pub mod demarcation;
pub mod leader;
pub mod learner;
pub mod options;
pub mod quorum;
pub mod shadow;
pub mod wire;

pub use acceptor::{AcceptorRecord, AcceptorState, Phase1b, Phase2b, RecordSnapshot, Resolution};
pub use ballot::{Ballot, BallotKind};
pub use cstruct::CStruct;
pub use demarcation::AttrConstraint;
pub use leader::LeaderRecord;
pub use learner::{LearnOutcome, Learner};
pub use options::{OptionStatus, TxnOption, TxnOutcome};
pub use shadow::{DeltaCursor, DeltaVote, FoldOutcome, ShadowView};

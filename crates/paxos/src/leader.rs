//! Per-record leader (master), Algorithm 2 of the paper.
//!
//! A leader serializes classic ballots for one record. It is engaged in
//! two situations:
//!
//! 1. **Collision recovery** (§3.3.1): a proposer could not assemble a
//!    fast quorum (or a commutative option was rejected and the
//!    demarcation base must move, §3.4.2). The leader runs Phase1a with a
//!    classic ballot, computes the proved-safe cstruct from a classic
//!    quorum of Phase1b responses, and re-proposes it with Phase2a,
//!    closing and re-basing the instance.
//! 2. **Classic (Multi-Paxos) operation** (§3.1.2, §3.2): after a
//!    collision the next γ transactions run through the master; the
//!    ballot is retained across instances so Phase 1 is skipped. When γ
//!    reaches zero the leader reopens fast mode.
//!
//! Crucially, classic instances are **open**: the leader appends each new
//! option with its own Phase2a immediately, without waiting for earlier
//! options to resolve. Waiting would re-introduce exactly the distributed
//! deadlock §3.2.2 eliminates (transaction A's option queued behind B's
//! unresolved option while B waits on A elsewhere); instead the
//! acceptors' validation decides newcomers at once — conflicting physical
//! options are rejected (abort), commutative ones coexist. An instance
//! only closes (resolving, then re-basing the demarcation limits) on
//! recovery, on γ expiry, or when it hits the option cap.
//!
//! The struct is sans-IO: methods return [`LeaderAction`]s that the
//! hosting process turns into messages.

use std::collections::{BTreeMap, VecDeque};

use mdcc_common::NodeId;

use crate::acceptor::{Phase1b, Phase2a, RecordSnapshot};
use crate::ballot::Ballot;
use crate::cstruct::CStruct;
use crate::options::TxnOption;
use crate::quorum::{mask_indices, subsets};

/// What the hosting process must do next.
#[derive(Debug, Clone)]
pub enum LeaderAction {
    /// Broadcast Phase1a with this ballot to all acceptors of the record.
    Phase1a(Ballot),
    /// Broadcast this Phase2a to all acceptors of the record.
    Phase2a(Phase2a),
    /// The record reopened fast ballots while this option waited; bounce
    /// it back to its coordinator for a direct fast proposal.
    RedirectFast(TxnOption),
}

/// Leader configuration.
#[derive(Debug, Clone)]
pub struct LeaderConfig {
    /// Replication factor `N`.
    pub n: usize,
    /// Classic quorum size.
    pub qc: usize,
    /// Fast quorum size.
    pub qf: usize,
    /// Options to keep classic after a collision (the paper's γ).
    pub gamma: u64,
    /// Whether fast ballots may be reopened at all. `false` reproduces
    /// the *Multi* configuration of §5.3.1 (always master-coordinated).
    pub allow_fast: bool,
    /// Close and re-base the instance after this many options.
    pub max_instance_options: usize,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Not currently leading; fast ballots are running (or nothing is).
    Idle,
    /// Phase 1 in flight: collecting promises.
    Establishing {
        ballot: Ballot,
        votes: BTreeMap<usize, Phase1b>,
    },
    /// Ballot established; Phase2a appends flow directly (Multi-Paxos).
    Leading { ballot: Ballot },
    /// The γ-expiring close was sent; once the instance advances the
    /// record is fast again and the leader steps aside.
    Retiring,
}

/// Per-record leader state machine.
#[derive(Debug, Clone)]
pub struct LeaderRecord {
    cfg: LeaderConfig,
    /// The node this leader runs on (ballot tie-breaker).
    self_id: NodeId,
    phase: Phase,
    /// Options waiting for a proposable moment (establishment, instance
    /// close, retirement).
    queue: VecDeque<TxnOption>,
    /// Options appended to the current open instance (replayed on a
    /// stale-snapshot retry).
    window: Vec<TxnOption>,
    /// Best known committed state.
    snapshot: RecordSnapshot,
    /// Highest ballot observed anywhere (for picking winning ballots).
    max_seen: Ballot,
    /// Remaining classic options before fast mode reopens.
    gamma_remaining: u64,
    /// A close was requested for the current instance; new options queue
    /// until it advances.
    closing: bool,
    /// A recovery was requested while we were busy.
    recovery_requested: bool,
}

impl LeaderRecord {
    /// Creates an idle leader for a record whose committed state is
    /// `snapshot`.
    pub fn new(cfg: LeaderConfig, self_id: NodeId, snapshot: RecordSnapshot) -> Self {
        Self {
            cfg,
            self_id,
            phase: Phase::Idle,
            queue: VecDeque::new(),
            window: Vec::new(),
            snapshot,
            max_seen: Ballot::INITIAL_FAST,
            gamma_remaining: 0,
            closing: false,
            recovery_requested: false,
        }
    }

    /// True while the leader holds an established classic ballot.
    pub fn is_leading(&self) -> bool {
        matches!(self.phase, Phase::Leading { .. })
    }

    /// True while Phase 1 is in progress.
    pub fn is_establishing(&self) -> bool {
        matches!(self.phase, Phase::Establishing { .. })
    }

    /// True while a Phase2a close is outstanding for the current
    /// instance.
    pub fn is_inflight(&self) -> bool {
        self.closing
    }

    /// Number of queued options (introspection for tests/metrics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Records a ballot observed in the wild so future ballots beat it.
    pub fn observe_ballot(&mut self, b: Ballot) {
        if b > self.max_seen {
            self.max_seen = b;
        }
    }

    /// Lease-carried Phase1: the mastership lease ballot is already the
    /// promise floor on every acceptor of this record, so the lease
    /// holder may start Leading at that ballot with no Phase1a/Phase1b
    /// exchange — its first Phase2a is immediately valid. Only allowed
    /// from `Idle` with a classic ballot at least as high as anything
    /// observed; a contested record (higher ballot seen) falls back to
    /// classic Phase1. Value-safe: an idle leader has no recovery open,
    /// classic instances grow cstructs only by validated appends, and
    /// an acceptor ahead on committed state answers `Stale`, which the
    /// usual catch-up path handles.
    pub fn assume_leadership(&mut self, ballot: Ballot) -> bool {
        if !matches!(self.phase, Phase::Idle) || ballot.is_fast() || ballot < self.max_seen {
            return false;
        }
        self.max_seen = ballot;
        self.phase = Phase::Leading { ballot };
        self.gamma_remaining = self.cfg.gamma;
        self.closing = false;
        self.recovery_requested = false;
        true
    }

    /// A proposer (or the learner rule of Algorithm 1 line 19/26) asked
    /// for recovery of the current instance — a collision happened or the
    /// demarcation base must move.
    pub fn start_recovery(&mut self) -> Vec<LeaderAction> {
        match &self.phase {
            Phase::Establishing { .. } | Phase::Retiring => Vec::new(),
            Phase::Leading { ballot } => {
                // Already coordinating: a close round re-bases without a
                // new Phase 1.
                if self.closing {
                    return Vec::new();
                }
                self.closing = true;
                let ballot = *ballot;
                vec![LeaderAction::Phase2a(self.build_phase2a(
                    ballot,
                    None,
                    Vec::new(),
                    true,
                    self.reopen_ballot(ballot),
                ))]
            }
            Phase::Idle => {
                self.recovery_requested = true;
                self.establish()
            }
        }
    }

    /// Queues or appends an option (client sent `Propose` to the master,
    /// Algorithm 2 line 29).
    pub fn enqueue(&mut self, opt: TxnOption) -> Vec<LeaderAction> {
        let duplicate = self.queue.iter().any(|o| o.txn == opt.txn)
            || self.window.iter().any(|o| o.txn == opt.txn);
        if duplicate {
            return Vec::new();
        }
        match self.phase {
            Phase::Leading { ballot } if !self.closing => self.append(ballot, opt),
            Phase::Leading { .. } | Phase::Establishing { .. } | Phase::Retiring => {
                self.queue.push_back(opt);
                Vec::new()
            }
            Phase::Idle => {
                self.queue.push_back(opt);
                self.establish()
            }
        }
    }

    /// Handles one Phase1b promise.
    pub fn on_phase1b(&mut self, from: usize, p1b: Phase1b) -> Vec<LeaderAction> {
        self.observe_ballot(p1b.promised);
        let Phase::Establishing { ballot, votes } = &mut self.phase else {
            return Vec::new();
        };
        let ballot = *ballot;
        if p1b.promised > ballot {
            // Someone outran us; retry with a higher ballot.
            self.phase = Phase::Idle;
            return self.establish();
        }
        if p1b.promised != ballot {
            return Vec::new();
        }
        if p1b.snapshot.version > self.snapshot.version {
            self.snapshot = p1b.snapshot.clone();
        }
        votes.insert(from, p1b);
        if votes.len() < self.cfg.qc {
            return Vec::new();
        }
        // Quorum of promises: compute the proved-safe cstruct over votes
        // for the *newest* instance and propose it together with
        // everything queued; the recovery round always closes and
        // re-bases the instance.
        let votes = std::mem::take(votes);
        let newest = self.snapshot.version;
        let relevant: Vec<(usize, &Phase1b)> = votes
            .iter()
            .filter(|(_, v)| v.snapshot.version == newest)
            .map(|(i, v)| (*i, v))
            .collect();
        let safe = proved_safe(&relevant, self.cfg.n, self.cfg.qc, self.cfg.qf);
        self.phase = Phase::Leading { ballot };
        self.recovery_requested = false;
        self.gamma_remaining = self.cfg.gamma;
        let mut new_options = Vec::new();
        while let Some(opt) = self.queue.pop_front() {
            if safe.status_of(opt.txn).is_none() {
                self.gamma_remaining = self.gamma_remaining.saturating_sub(1);
                self.window.push(opt.clone());
                new_options.push(opt);
            }
        }
        let reopen = self.reopen_ballot(ballot);
        self.closing = true;
        if reopen.is_some() {
            self.phase = Phase::Retiring;
        }
        vec![LeaderAction::Phase2a(self.build_phase2a(
            ballot,
            Some(safe),
            new_options,
            true,
            reopen,
        ))]
    }

    /// The local acceptor advanced past the current instance: the close
    /// (if any) completed; drain what queued up meanwhile.
    pub fn on_advance(&mut self, snapshot: RecordSnapshot) -> Vec<LeaderAction> {
        if snapshot.version > self.snapshot.version {
            self.snapshot = snapshot;
        }
        self.window.clear();
        self.closing = false;
        match self.phase {
            Phase::Retiring => {
                // Fast mode reopened: hand queued options back to their
                // coordinators for direct proposals.
                self.phase = Phase::Idle;
                self.queue
                    .drain(..)
                    .map(LeaderAction::RedirectFast)
                    .collect()
            }
            Phase::Leading { ballot } => {
                let mut actions = Vec::new();
                while !self.closing {
                    let Some(opt) = self.queue.pop_front() else {
                        break;
                    };
                    actions.extend(self.append(ballot, opt));
                }
                actions
            }
            _ => Vec::new(),
        }
    }

    /// A Phase2a was nacked: our ballot lost. Re-establish with a higher
    /// one if there is still work to do.
    pub fn on_nack(&mut self, promised: Ballot) -> Vec<LeaderAction> {
        self.observe_ballot(promised);
        // Un-decided window options go back to the queue for re-proposal
        // under the next ballot.
        for opt in self.window.drain(..).rev() {
            if self.queue.iter().all(|o| o.txn != opt.txn) {
                self.queue.push_front(opt);
            }
        }
        self.phase = Phase::Idle;
        self.closing = false;
        if self.recovery_requested || !self.queue.is_empty() {
            self.establish()
        } else {
            Vec::new()
        }
    }

    /// An acceptor reported newer committed state than ours: catch up and
    /// replay the open window against the newer instance.
    pub fn on_stale(&mut self, snapshot: RecordSnapshot) -> Vec<LeaderAction> {
        if snapshot.version > self.snapshot.version {
            self.snapshot = snapshot;
        }
        let Phase::Leading { ballot } = self.phase else {
            return Vec::new();
        };
        if self.window.is_empty() {
            return Vec::new();
        }
        let window = self.window.clone();
        vec![LeaderAction::Phase2a(self.build_phase2a(
            ballot,
            None,
            window,
            self.closing,
            None,
        ))]
    }

    fn establish(&mut self) -> Vec<LeaderAction> {
        let ballot = self.max_seen.next_classic(self.self_id);
        self.max_seen = ballot;
        self.phase = Phase::Establishing {
            ballot,
            votes: BTreeMap::new(),
        };
        self.closing = false;
        vec![LeaderAction::Phase1a(ballot)]
    }

    /// Appends one option to the open instance with its own Phase2a —
    /// never waiting on earlier options (see the module docs on deadlock
    /// avoidance).
    fn append(&mut self, ballot: Ballot, opt: TxnOption) -> Vec<LeaderAction> {
        self.gamma_remaining = self.gamma_remaining.saturating_sub(1);
        self.window.push(opt.clone());
        let reopen = self.reopen_ballot(ballot);
        let cap_hit = self.window.len() >= self.cfg.max_instance_options;
        let close = reopen.is_some() || cap_hit;
        if close {
            self.closing = true;
        }
        if reopen.is_some() {
            self.phase = Phase::Retiring;
        }
        vec![LeaderAction::Phase2a(self.build_phase2a(
            ballot,
            None,
            vec![opt],
            close,
            reopen,
        ))]
    }

    /// The fast ballot to reopen with, when γ is exhausted.
    fn reopen_ballot(&self, ballot: Ballot) -> Option<Ballot> {
        (self.cfg.allow_fast && self.gamma_remaining == 0).then(|| ballot.next_fast(self.self_id))
    }

    fn build_phase2a(
        &self,
        ballot: Ballot,
        safe: Option<CStruct>,
        new_options: Vec<TxnOption>,
        close_instance: bool,
        reopen_fast: Option<Ballot>,
    ) -> Phase2a {
        Phase2a {
            ballot,
            version: self.snapshot.version,
            snapshot: self.snapshot.clone(),
            safe,
            new_options,
            close_instance,
            reopen_fast,
        }
    }
}

/// The ProvedSafe computation (Algorithm 2, lines 49–57): given Phase1b
/// responses from a classic quorum `Q`, find the cstruct that may have
/// been chosen at the highest accepted ballot `k` and must therefore be
/// proposed next.
///
/// For every potential `k`-quorum `R`, the value possibly chosen through
/// `R` is the glb of the cstructs reported by `Q ∩ R`; the safe cstruct is
/// the lub of those glbs. When no potential quorum is populated (`R = ∅`),
/// nothing was chosen and any reported value may be extended.
pub fn proved_safe(responses: &[(usize, &Phase1b)], n: usize, qc: usize, qf: usize) -> CStruct {
    // k ≡ the highest ballot at which anything was accepted.
    let k = responses
        .iter()
        .filter_map(|(_, r)| r.accepted.as_ref().map(|(b, _)| *b))
        .max();
    let Some(k) = k else {
        return CStruct::new();
    };
    let at_k: BTreeMap<usize, &CStruct> = responses
        .iter()
        .filter_map(|(i, r)| match &r.accepted {
            Some((b, v)) if *b == k => Some((*i, v)),
            _ => None,
        })
        .collect();
    // ProvedSafe is relative to *a* classic quorum Q of promisers. Any
    // qc-subset of responders is valid; preferring acceptors that voted
    // at ballot k maximizes what can be proved safe — this choice is what
    // makes the §3.3.1 worked example land on v1→v2 rather than on the
    // (also safe, but less live) empty cstruct.
    let mut q_members: Vec<usize> = responses.iter().map(|(i, _)| *i).collect();
    q_members.sort_by_key(|i| (!at_k.contains_key(i), *i));
    q_members.truncate(qc.max(1));
    let k_size = if k.is_fast() { qf } else { qc };

    let mut gammas: Vec<CStruct> = Vec::new();
    for r_mask in subsets(n, k_size) {
        let overlap: Vec<usize> = mask_indices(r_mask)
            .filter(|i| q_members.contains(i))
            .collect();
        if overlap.is_empty() {
            // Q ∩ R = ∅: this R tells us nothing (and with valid quorum
            // configurations it cannot occur for classic Q).
            continue;
        }
        if !overlap.iter().all(|i| at_k.contains_key(i)) {
            // Some member of Q ∩ R reported no ballot-k value, so no value
            // was chosen through R.
            continue;
        }
        let members: Vec<&CStruct> = overlap.iter().map(|i| at_k[i]).collect();
        gammas.push(CStruct::glb_many(&members));
    }
    if gammas.is_empty() {
        // R = ∅ (line 54): nothing was possibly chosen; any reported value
        // is safe. Merge what we can for liveness.
        let mut acc = CStruct::new();
        for v in at_k.values() {
            if let Some(merged) = acc.lub(v) {
                acc = merged;
            }
        }
        return acc;
    }
    // ⊔Γ (line 57). The theory guarantees compatibility; fall back to the
    // largest γ defensively.
    let refs: Vec<&CStruct> = gammas.iter().collect();
    match CStruct::lub_many(refs) {
        Some(l) => l,
        None => {
            debug_assert!(false, "incompatible gammas in ProvedSafe");
            gammas
                .into_iter()
                .max_by_key(|c| c.len())
                .unwrap_or_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{OptionStatus, TxnOption};
    use mdcc_common::error::AbortReason;
    use mdcc_common::{
        CommutativeUpdate, Key, PhysicalUpdate, Row, TableId, TxnId, UpdateOp, Version,
    };

    fn cfg() -> LeaderConfig {
        LeaderConfig {
            n: 5,
            qc: 3,
            qf: 4,
            gamma: 3,
            allow_fast: true,
            max_instance_options: 32,
        }
    }

    fn key() -> Key {
        Key::new(TableId(0), "r")
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(7), seq)
    }

    fn comm_opt(seq: u64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        )
    }

    fn phys_opt(seq: u64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new())),
        )
    }

    fn snapshot() -> RecordSnapshot {
        RecordSnapshot {
            version: Version(1),
            value: Some(Row::new().with("stock", 4)),
            folded: Vec::new(),
        }
    }

    fn p1b(promised: Ballot, accepted: Option<(Ballot, CStruct)>) -> Phase1b {
        Phase1b {
            promised,
            accepted,
            snapshot: snapshot(),
        }
    }

    /// Drives a leader through establishment, returning its ballot.
    fn establish(l: &mut LeaderRecord) -> Ballot {
        let actions = l.start_recovery();
        let LeaderAction::Phase1a(b) = actions[0] else {
            panic!("expected phase1a");
        };
        l.on_phase1b(0, p1b(b, None));
        l.on_phase1b(1, p1b(b, None));
        let actions = l.on_phase1b(2, p1b(b, None));
        assert!(matches!(actions[0], LeaderAction::Phase2a(_)));
        assert!(l.is_leading() || matches!(l.phase, Phase::Retiring));
        b
    }

    #[test]
    fn recovery_runs_phase1_then_closing_phase2() {
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        let actions = l.start_recovery();
        let LeaderAction::Phase1a(b) = &actions[0] else {
            panic!("expected phase1a");
        };
        assert!(!b.is_fast());
        assert!(l.on_phase1b(0, p1b(*b, None)).is_empty());
        assert!(l.on_phase1b(1, p1b(*b, None)).is_empty());
        let actions = l.on_phase1b(2, p1b(*b, None));
        let LeaderAction::Phase2a(p2a) = &actions[0] else {
            panic!("expected phase2a");
        };
        assert!(p2a.close_instance, "recovery closes and re-bases");
        assert!(
            p2a.safe.is_some(),
            "recovery adopts the proved-safe cstruct"
        );
        assert!(l.is_leading());
        assert!(l.is_inflight(), "close outstanding");
    }

    #[test]
    fn assumed_leadership_appends_without_phase1() {
        // Lease-carried Phase1: a lease holder goes straight to Leading
        // and its first enqueue emits a Phase2a, no Phase1a round.
        let mut l = LeaderRecord::new(cfg(), NodeId(2), snapshot());
        let lease = Ballot::lease(3, NodeId(2));
        assert!(l.assume_leadership(lease));
        assert!(l.is_leading());
        let actions = l.enqueue(comm_opt(1));
        let LeaderAction::Phase2a(p2a) = &actions[0] else {
            panic!("expected immediate phase2a, got {actions:?}");
        };
        assert_eq!(p2a.ballot, lease);
        assert!(p2a.safe.is_none(), "no recovery cstruct needed");
        assert!(!actions
            .iter()
            .any(|a| matches!(a, LeaderAction::Phase1a(_))));
    }

    #[test]
    fn assume_leadership_defers_to_contested_records() {
        let mut l = LeaderRecord::new(cfg(), NodeId(2), snapshot());
        // A higher ballot was seen: the lease ballot is contested and
        // the holder must fall back to classic Phase1.
        l.observe_ballot(Ballot::classic(7, NodeId(4)));
        assert!(!l.assume_leadership(Ballot::lease(3, NodeId(2))));
        assert!(!l.is_leading());
        // Fast ballots never carry leadership.
        assert!(!l.assume_leadership(Ballot::fast(9, NodeId(2))));
        // Established leaders are not re-entered.
        let mut busy = LeaderRecord::new(cfg(), NodeId(2), snapshot());
        establish(&mut busy);
        assert!(!busy.assume_leadership(Ballot::lease(9, NodeId(2))));
    }

    #[test]
    fn appends_flow_without_waiting_for_resolution() {
        // The §3.2.2 deadlock-avoidance shape: the leader must emit a
        // Phase2a per option immediately, not serialize on visibility.
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot()); // recovery close done
        let a1 = l.enqueue(comm_opt(1));
        let a2 = l.enqueue(comm_opt(2));
        let LeaderAction::Phase2a(p1) = &a1[0] else {
            panic!()
        };
        let LeaderAction::Phase2a(p2) = &a2[0] else {
            panic!()
        };
        assert!(p1.safe.is_none(), "appends never overwrite the cstruct");
        assert!(!p1.close_instance);
        assert_eq!(p1.new_options[0].txn, txn(1));
        assert_eq!(p2.new_options[0].txn, txn(2));
    }

    #[test]
    fn gamma_expiry_closes_and_reopens_fast() {
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        // γ = 3: the third appended option carries close + reopen.
        let a1 = l.enqueue(comm_opt(1));
        let a2 = l.enqueue(comm_opt(2));
        let a3 = l.enqueue(comm_opt(3));
        let get = |a: &Vec<LeaderAction>| match &a[0] {
            LeaderAction::Phase2a(p) => p.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(get(&a1).reopen_fast.is_none());
        assert!(get(&a2).reopen_fast.is_none());
        let p3 = get(&a3);
        assert!(p3.reopen_fast.is_some(), "γ exhausted reopens fast");
        assert!(p3.close_instance);
        // Retiring: new proposals queue and bounce back on advance.
        assert!(l.enqueue(comm_opt(4)).is_empty());
        let bounced = l.on_advance(snapshot());
        assert!(matches!(&bounced[0], LeaderAction::RedirectFast(o) if o.txn == txn(4)));
        assert!(!l.is_leading());
    }

    #[test]
    fn multi_configuration_never_reopens_fast() {
        let mut c = cfg();
        c.allow_fast = false;
        let mut l = LeaderRecord::new(c, NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        for seq in 1..10 {
            let actions = l.enqueue(comm_opt(seq));
            let LeaderAction::Phase2a(p) = &actions[0] else {
                panic!()
            };
            assert!(p.reopen_fast.is_none());
        }
        assert!(l.is_leading(), "stays leader forever");
    }

    #[test]
    fn cap_closes_the_instance_and_queues_new_options() {
        let mut c = cfg();
        c.gamma = 1_000;
        c.max_instance_options = 2;
        let mut l = LeaderRecord::new(c, NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        let _ = l.enqueue(comm_opt(1));
        let a2 = l.enqueue(comm_opt(2));
        let LeaderAction::Phase2a(p2) = &a2[0] else {
            panic!()
        };
        assert!(p2.close_instance, "cap hit closes the instance");
        // While closing, new proposals queue.
        assert!(l.enqueue(comm_opt(3)).is_empty());
        assert_eq!(l.queue_len(), 1);
        // The advance drains the queue into the fresh instance.
        let drained = l.on_advance(snapshot());
        assert!(matches!(&drained[0], LeaderAction::Phase2a(p) if p.new_options[0].txn == txn(3)));
    }

    #[test]
    fn recovery_while_leading_closes_without_phase1() {
        let mut c = cfg();
        c.gamma = 1_000;
        let mut l = LeaderRecord::new(c, NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        let _ = l.enqueue(comm_opt(1));
        let actions = l.start_recovery();
        let LeaderAction::Phase2a(p) = &actions[0] else {
            panic!("expected a close round, got {actions:?}")
        };
        assert!(p.close_instance);
        assert!(p.new_options.is_empty());
        // A second request while closing is absorbed.
        assert!(l.start_recovery().is_empty());
    }

    #[test]
    fn nack_requeues_window_and_re_establishes() {
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        let b = establish(&mut l);
        l.on_advance(snapshot());
        let _ = l.enqueue(comm_opt(1));
        let foreign = Ballot::classic(b.round + 5, NodeId(9));
        let actions = l.on_nack(foreign);
        let LeaderAction::Phase1a(b2) = actions[0] else {
            panic!("expected re-establishment")
        };
        assert!(b2 > foreign);
        assert_eq!(l.queue_len(), 1, "window option went back to the queue");
    }

    #[test]
    fn stale_snapshot_replays_the_window() {
        let mut c = cfg();
        c.gamma = 1_000;
        let mut l = LeaderRecord::new(c, NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        let _ = l.enqueue(comm_opt(1));
        let newer = RecordSnapshot {
            version: Version(5),
            value: Some(Row::new().with("stock", 2)),
            folded: Vec::new(),
        };
        let actions = l.on_stale(newer);
        let LeaderAction::Phase2a(p) = &actions[0] else {
            panic!()
        };
        assert_eq!(p.version, Version(5));
        assert_eq!(p.new_options.len(), 1);
    }

    #[test]
    fn higher_promise_restarts_with_higher_ballot() {
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        let actions = l.start_recovery();
        let LeaderAction::Phase1a(b1) = actions[0] else {
            panic!()
        };
        let foreign = Ballot::classic(b1.round + 3, NodeId(9));
        let actions = l.on_phase1b(0, p1b(foreign, None));
        let LeaderAction::Phase1a(b2) = actions[0] else {
            panic!("expected a retry")
        };
        assert!(b2 > foreign);
    }

    #[test]
    fn enqueue_dedupes_by_txn() {
        let mut l = LeaderRecord::new(cfg(), NodeId(1), snapshot());
        establish(&mut l);
        l.on_advance(snapshot());
        let a1 = l.enqueue(comm_opt(1));
        assert_eq!(a1.len(), 1);
        let a2 = l.enqueue(comm_opt(1));
        assert!(a2.is_empty(), "duplicate of an open-window option");
    }

    #[test]
    fn proved_safe_empty_when_nothing_accepted() {
        let r0 = p1b(Ballot::classic(1, NodeId(1)), None);
        let r1 = p1b(Ballot::classic(1, NodeId(1)), None);
        let r2 = p1b(Ballot::classic(1, NodeId(1)), None);
        let safe = proved_safe(&[(0, &r0), (1, &r1), (2, &r2)], 5, 3, 4);
        assert!(safe.is_empty());
    }

    #[test]
    fn proved_safe_paper_example() {
        // §3.3.1: responses from acceptors {1, 2, 3, 5} (indices 0, 1, 2,
        // 4): acceptor 0 at ballot 3 with v0→v1; acceptors 1 and 4 at
        // ballot 4 with v1→v2 accepted; acceptor 2 at ballot 4 with v1→v3
        // accepted. The only populated fast-quorum intersection agrees on
        // v1→v2, which must be proposed next.
        let b3 = Ballot::fast(3, NodeId(0));
        let b4 = Ballot::fast(4, NodeId(0));
        let old = phys_opt(1); // v0 → v1 at ballot 3
        let v2 = phys_opt(12); // v1 → v2
        let v3 = phys_opt(13); // v1 → v3
        let mut c_old = CStruct::new();
        c_old.append(old, OptionStatus::Accepted);
        let mut c_v2 = CStruct::new();
        c_v2.append(v2.clone(), OptionStatus::Accepted);
        c_v2.append(
            v3.clone(),
            OptionStatus::Rejected(AbortReason::PendingOption),
        );
        let mut c_v3 = CStruct::new();
        c_v3.append(v3.clone(), OptionStatus::Accepted);
        c_v3.append(
            v2.clone(),
            OptionStatus::Rejected(AbortReason::PendingOption),
        );

        let r0 = p1b(b4, Some((b3, c_old)));
        let r1 = p1b(b4, Some((b4, c_v2.clone())));
        let r2 = p1b(b4, Some((b4, c_v3)));
        let r4 = p1b(b4, Some((b4, c_v2)));
        let safe = proved_safe(&[(0, &r0), (1, &r1), (2, &r2), (4, &r4)], 5, 3, 4);
        assert_eq!(
            safe.status_of(txn(12)),
            Some(OptionStatus::Accepted),
            "v1→v2 is the proved-safe choice"
        );
        // v1→v3 must not be accepted in the safe cstruct.
        assert!(!safe.status_of(txn(13)).is_some_and(|s| s.is_accepted()));
    }

    #[test]
    fn proved_safe_classic_ballot_uses_classic_quorums() {
        let bc = Ballot::classic(2, NodeId(3));
        let mut c = CStruct::new();
        c.append(comm_opt(5), OptionStatus::Accepted);
        let r0 = p1b(bc, Some((bc, c.clone())));
        let r1 = p1b(bc, Some((bc, c.clone())));
        let r2 = p1b(bc, None);
        let safe = proved_safe(&[(0, &r0), (1, &r1), (2, &r2)], 5, 3, 4);
        // With classic quorums of size 3, {0,1,x} overlaps Q in {0,1}
        // which both report c — c may have been chosen and must survive.
        assert_eq!(safe.status_of(txn(5)), Some(OptionStatus::Accepted));
    }
}

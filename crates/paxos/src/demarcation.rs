//! Quorum demarcation: value constraints under quorum replication (§3.4.2).
//!
//! Plain escrow — accept an option only if the constraint survives every
//! commit/abort permutation of pending options — is not enough in a quorum
//! system: acceptors decide on local knowledge, and Figure 2 of the paper
//! shows how five stock-decrements can all gather fast quorums even though
//! only four fit the `stock ≥ 0` constraint.
//!
//! The fix is a per-node limit derived like the demarcation protocol's:
//! viewing each of the `N` replicated copies of base value `X` as
//! resources, a committed transaction consumes at least `Q_F` of them, so
//! after the constraint is exhausted at most `(N − Q_F)·X` resources can
//! linger. Spreading those evenly over the `N` nodes yields the node-local
//! floor
//!
//! ```text
//! L = min + (N − Q_F)/N · (X − min)
//! ```
//!
//! (the paper states the `min = 0` case `L = (N−Q_F)/N · X`). A node
//! rejects any option whose worst-case pending outcome could push the
//! value below `L`; the symmetric ceiling guards `value ≤ max`. All
//! arithmetic below is exact (cross-multiplied integers), so there is no
//! float rounding to argue about.

use mdcc_common::error::AbortReason;

/// An integrity constraint on one integer attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrConstraint {
    /// Attribute the constraint applies to.
    pub attr: String,
    /// Inclusive lower bound, if any.
    pub min: Option<i64>,
    /// Inclusive upper bound, if any.
    pub max: Option<i64>,
}

impl AttrConstraint {
    /// `attr ≥ min`, the paper's running example (`stock ≥ 0`).
    pub fn at_least(attr: impl Into<String>, min: i64) -> Self {
        Self {
            attr: attr.into(),
            min: Some(min),
            max: None,
        }
    }

    /// `attr ≤ max`.
    pub fn at_most(attr: impl Into<String>, max: i64) -> Self {
        Self {
            attr: attr.into(),
            min: None,
            max: Some(max),
        }
    }

    /// `min ≤ attr ≤ max`.
    pub fn between(attr: impl Into<String>, min: i64, max: i64) -> Self {
        Self {
            attr: attr.into(),
            min: Some(min),
            max: Some(max),
        }
    }
}

/// The attribute state a node consults when judging one candidate delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscrowView {
    /// Ballot base value `X`: the committed value when the current
    /// instance (fast commutative ballot) opened.
    pub base: i64,
    /// Net delta of options already committed within this instance.
    pub committed: i64,
    /// Sum of all negative deltas of pending (accepted, unresolved)
    /// options, excluding the candidate.
    pub pending_neg: i64,
    /// Sum of all positive deltas of pending options, excluding the
    /// candidate.
    pub pending_pos: i64,
}

/// Decides whether a node may accept `candidate` for the attribute under
/// `constraint`, given replication `n`, fast quorum `qf` and the node's
/// local [`EscrowView`].
///
/// Returns the rejection reason when the option must be refused:
/// [`AbortReason::DemarcationLimit`] when the quorum limit `L`/`U` is the
/// binding obstacle, [`AbortReason::ConstraintViolation`] when even the
/// raw constraint would be violated.
pub fn escrow_accepts(
    constraint: &AttrConstraint,
    n: usize,
    qf: usize,
    view: EscrowView,
    candidate: i64,
) -> Result<(), AbortReason> {
    let n_i = n as i64;
    let slack = (n - qf.min(n)) as i64;
    // Only the bound the candidate can harm is checked: rejecting an
    // increment never protects a floor (and vice versa), it only blocks
    // restorative traffic.
    if candidate < 0 {
        if let Some(min) = constraint.min {
            // Worst case for the floor: every pending decrement commits,
            // every pending increment aborts, and the candidate commits.
            let worst = view.base + view.committed + view.pending_neg + candidate;
            if worst < min {
                return Err(AbortReason::ConstraintViolation);
            }
            // (worst - min) >= slack/n * (base - min), cross-multiplied.
            if (worst - min) * n_i < slack * (view.base - min).max(0) {
                return Err(AbortReason::DemarcationLimit);
            }
        }
    }
    if candidate > 0 {
        if let Some(max) = constraint.max {
            let worst = view.base + view.committed + view.pending_pos + candidate;
            if worst > max {
                return Err(AbortReason::ConstraintViolation);
            }
            if (max - worst) * n_i < slack * (max - view.base).max(0) {
                return Err(AbortReason::DemarcationLimit);
            }
        }
    }
    Ok(())
}

/// The node-local floor `L` as an exact rational `(numerator, denominator)`
/// — exposed for documentation, reports and tests; the accept decision
/// itself uses [`escrow_accepts`].
pub fn lower_limit(n: usize, qf: usize, base: i64, min: i64) -> (i64, i64) {
    let slack = (n - qf.min(n)) as i64;
    (min * n as i64 + slack * (base - min).max(0), n as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 5;
    const QF: usize = 4;

    fn view(base: i64, committed: i64, pending_neg: i64, pending_pos: i64) -> EscrowView {
        EscrowView {
            base,
            committed,
            pending_neg,
            pending_pos,
        }
    }

    #[test]
    fn figure2_limit_is_four_fifths() {
        // X = 4, min = 0 ⇒ L = (5−4)/5 · 4 = 0.8.
        let (num, den) = lower_limit(N, QF, 4, 0);
        assert_eq!((num, den), (4, 5));
    }

    #[test]
    fn figure2_each_node_accepts_exactly_three_decrements() {
        // The paper's Figure 2 scenario: stock = 4, five txns each with
        // δ = −1. A node must accept the first three and reject the
        // fourth (0 < 0.8) — so at most ⌊15/4⌋ = 3 can globally commit,
        // and the constraint can never be violated.
        let c = AttrConstraint::at_least("stock", 0);
        for already_pending in 0..3 {
            let v = view(4, 0, -already_pending, 0);
            assert_eq!(
                escrow_accepts(&c, N, QF, v, -1),
                Ok(()),
                "pending {already_pending}"
            );
        }
        let v = view(4, 0, -3, 0);
        assert_eq!(
            escrow_accepts(&c, N, QF, v, -1),
            Err(AbortReason::DemarcationLimit)
        );
    }

    #[test]
    fn plain_constraint_violation_reported_distinctly() {
        let c = AttrConstraint::at_least("stock", 0);
        // Candidate alone would push below min regardless of quorums.
        let v = view(2, 0, 0, 0);
        assert_eq!(
            escrow_accepts(&c, N, QF, v, -3),
            Err(AbortReason::ConstraintViolation)
        );
    }

    #[test]
    fn committed_deltas_tighten_the_check() {
        let c = AttrConstraint::at_least("stock", 0);
        // Base 10, but 7 already committed away: only ~1 more fits above
        // L = 2 (slack 1/5 of 10).
        let v = view(10, -7, 0, 0);
        assert_eq!(escrow_accepts(&c, N, QF, v, -1), Ok(()));
        assert_eq!(
            escrow_accepts(&c, N, QF, v, -2),
            Err(AbortReason::DemarcationLimit)
        );
    }

    #[test]
    fn increments_do_not_hurt_the_floor() {
        let c = AttrConstraint::at_least("stock", 0);
        let v = view(1, 0, 0, 50);
        assert_eq!(escrow_accepts(&c, N, QF, v, 5), Ok(()));
    }

    #[test]
    fn upper_bound_is_symmetric() {
        let c = AttrConstraint::at_most("seats", 100);
        // Base 96: U = 100 − (1/5)·4 = 99.2, so pending +3 plus candidate
        // +1 (worst 100) violates the demarcation ceiling.
        let v = view(96, 0, 0, 3);
        assert_eq!(
            escrow_accepts(&c, N, QF, v, 1),
            Err(AbortReason::DemarcationLimit)
        );
        assert_eq!(escrow_accepts(&c, N, QF, view(96, 0, 0, 0), 1), Ok(()));
    }

    #[test]
    fn both_bounds_checked_together() {
        let c = AttrConstraint::between("level", 0, 10);
        let v = view(5, 0, -2, 2);
        assert_eq!(escrow_accepts(&c, N, QF, v, 0), Ok(()));
        assert!(escrow_accepts(&c, N, QF, v, -3).is_err());
        assert!(escrow_accepts(&c, N, QF, v, 4).is_err());
    }

    #[test]
    fn full_fast_quorum_degenerates_to_plain_escrow() {
        // Qf = N means no silent resources: L = min.
        let c = AttrConstraint::at_least("stock", 0);
        let v = view(4, 0, -3, 0);
        assert_eq!(
            escrow_accepts(&c, 5, 5, v, -1),
            Ok(()),
            "exactly to zero is fine"
        );
        assert_eq!(
            escrow_accepts(&c, 5, 5, view(4, 0, -4, 0), -1),
            Err(AbortReason::ConstraintViolation)
        );
    }

    #[test]
    fn aborted_pending_options_release_escrow() {
        // Once options resolve as aborted they leave the pending set; the
        // caller models that by shrinking `pending_neg`.
        let c = AttrConstraint::at_least("stock", 0);
        assert!(escrow_accepts(&c, N, QF, view(4, 0, -3, 0), -1).is_err());
        // One of the three aborts: pending shrinks, acceptance resumes.
        assert_eq!(escrow_accepts(&c, N, QF, view(4, 0, -2, 0), -1), Ok(()));
    }

    #[test]
    fn base_below_min_rejects_all_harmful_deltas() {
        let c = AttrConstraint::at_least("stock", 0);
        assert!(escrow_accepts(&c, N, QF, view(-1, 0, 0, 0), -1).is_err());
        // Restorative increments are always welcome.
        assert_eq!(escrow_accepts(&c, N, QF, view(-1, 0, 0, 0), 2), Ok(()));
    }
}

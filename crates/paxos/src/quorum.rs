//! Quorum arithmetic and subset enumeration.
//!
//! Replication factors are tiny (the paper uses 5), so enumerating all
//! `C(n, k)` quorum subsets as bitmasks is both exact and cheap; the
//! learner and `ProvedSafe` both rely on it.

use mdcc_common::ProtocolConfig;

use crate::ballot::BallotKind;

/// Quorum size required to decide at a ballot of `kind`.
pub fn quorum_size(cfg: &ProtocolConfig, kind: BallotKind) -> usize {
    match kind {
        BallotKind::Fast => cfg.fast_quorum,
        BallotKind::Classic => cfg.classic_quorum,
    }
}

/// All `k`-subsets of `0..n` as bitmasks, in ascending mask order.
///
/// # Panics
///
/// Panics if `n > 31` (replication factors are single digits in practice).
pub fn subsets(n: usize, k: usize) -> Vec<u32> {
    assert!(n <= 31, "subset enumeration is for small replica sets");
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize == k {
            out.push(mask);
        }
    }
    out
}

/// Iterates the set bit indices of `mask`.
pub fn mask_indices(mask: u32) -> impl Iterator<Item = usize> {
    (0..32).filter(move |i| mask & (1 << i) != 0)
}

/// Number of distinct `k`-subsets of `0..n` (sanity checks in tests).
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    let mut den = 1usize;
    for i in 0..k {
        num *= n - i;
        den *= i + 1;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomial() {
        for n in 0..=7 {
            for k in 0..=n {
                assert_eq!(subsets(n, k).len(), binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn five_choose_four_gives_the_five_fast_quorums() {
        let qs = subsets(5, 4);
        assert_eq!(qs.len(), 5);
        for q in &qs {
            assert_eq!(q.count_ones(), 4);
        }
        // Every pair of fast quorums overlaps in at least 3 nodes.
        for a in &qs {
            for b in &qs {
                assert!((a & b).count_ones() >= 3);
            }
        }
    }

    #[test]
    fn mask_indices_round_trip() {
        let mask = 0b10110;
        let idx: Vec<usize> = mask_indices(mask).collect();
        assert_eq!(idx, vec![1, 2, 4]);
    }

    #[test]
    fn quorum_sizes_follow_config() {
        let cfg = ProtocolConfig::default();
        assert_eq!(quorum_size(&cfg, BallotKind::Classic), 3);
        assert_eq!(quorum_size(&cfg, BallotKind::Fast), 4);
    }

    #[test]
    fn fast_fast_classic_triple_intersection_holds_for_default() {
        // Requirement (ii) of §3.3.1, checked exhaustively for (5, 3, 4).
        let fasts = subsets(5, 4);
        let classics = subsets(5, 3);
        for f1 in &fasts {
            for f2 in &fasts {
                for c in &classics {
                    assert!(
                        f1 & f2 & c != 0,
                        "empty triple intersection: {f1:b} {f2:b} {c:b}"
                    );
                }
            }
        }
    }
}

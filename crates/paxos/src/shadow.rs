//! Delta votes and per-acceptor shadow views.
//!
//! Full MDCC's dominant wire cost is Phase2b vote fan-out: every vote
//! ships the record's entire cstruct to the proposer and to every
//! interested coordinator (see EXPERIMENTS.md §fig5). Within one
//! *cstruct epoch* the acceptor's cstruct is strictly append-only, so a
//! vote only needs to carry the options appended since the acceptor's
//! previous vote — a [`DeltaVote`] — plus an FNV digest of the full
//! structure.
//!
//! Receivers keep one [`ShadowView`] per acceptor and fold each delta
//! into it. When the digest of the folded view matches the vote's
//! digest, the view *is* the acceptor's cstruct and a full
//! [`Phase2b`] is synthesized for the learner. When it does not —
//! an epoch was missed (ballot change, instance advance, entry
//! removal), a delta was lost, or votes were reordered — the receiver
//! falls back to an explicit read-repair round trip (`CstructPull` /
//! `CstructFull` in the message schema) that fetches the full cstruct
//! only for that diverged acceptor.

use mdcc_common::Version;

use crate::acceptor::Phase2b;
use crate::ballot::Ballot;
use crate::cstruct::{CStruct, Entry};

/// A Phase2b vote carrying only the options appended since the
/// acceptor's previous vote, plus a digest of the full cstruct.
#[derive(Debug, Clone)]
pub struct DeltaVote {
    /// Ballot the vote belongs to.
    pub ballot: Ballot,
    /// Instance (record version) the vote belongs to.
    pub version: Version,
    /// The acceptor's cstruct epoch this delta's positions refer to.
    pub epoch: u64,
    /// Position in the epoch's append order where `entries` starts.
    pub from_seq: u64,
    /// Entries `[from_seq..from_seq + entries.len())` of the epoch.
    pub entries: Vec<Entry>,
    /// FNV-1a digest of the canonical encoding of the acceptor's full
    /// cstruct at emission time.
    pub digest: u64,
    /// Total entries in the full cstruct (cheap pre-check and gap
    /// detector alongside the digest).
    pub full_len: u64,
}

impl DeltaVote {
    /// Extracts the delta representation of an emitted vote: the entry
    /// suffix past `from_seq` plus the full-structure digest.
    pub fn extract(vote: &Phase2b, from_seq: u64) -> Self {
        Self::extract_with_digest(vote, from_seq, vote.cstruct.digest())
    }

    /// Like [`DeltaVote::extract`] with the cstruct digest precomputed —
    /// fan-out to many destinations serializes the cstruct once instead
    /// of once per target.
    pub fn extract_with_digest(vote: &Phase2b, from_seq: u64, digest: u64) -> Self {
        DeltaVote {
            ballot: vote.ballot,
            version: vote.version,
            epoch: vote.epoch,
            from_seq,
            entries: vote
                .cstruct
                .entries()
                .skip(from_seq as usize)
                .cloned()
                .collect(),
            digest,
            full_len: vote.cstruct.len() as u64,
        }
    }
}

/// Sender-side delta cursor: tracks, per destination, how much of which
/// cstruct epoch that destination has already been sent, so each vote
/// ships only the entry suffix the destination is missing.
///
/// Deliberately volatile (kept in the storage-node process, not the
/// WAL): losing a cursor after a crash merely re-primes the destination
/// with one full vote. What *must* survive restarts is the acceptor's
/// cstruct epoch — cursors and shadow views both position against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaCursor {
    primed: bool,
    version: Version,
    epoch: u64,
    seq: u64,
}

impl DeltaCursor {
    /// A cursor for a destination that has never been sent a vote.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides what to send for `vote` and advances the cursor:
    /// `None` means the destination has no shadow yet and must receive
    /// the full vote; `Some(delta)` is the positioned entry suffix.
    pub fn extract(&mut self, vote: &Phase2b) -> Option<DeltaVote> {
        self.position(vote)
            .map(|from_seq| DeltaVote::extract(vote, from_seq))
    }

    /// The cursor-advance half of [`DeltaCursor::extract`]: where this
    /// destination's next delta starts, or `None` for a first contact
    /// (send the full vote). Callers fanning one vote to many
    /// destinations pair this with [`DeltaVote::extract_with_digest`]
    /// so the digest is computed once.
    pub fn position(&mut self, vote: &Phase2b) -> Option<u64> {
        let len = vote.cstruct.len() as u64;
        let from_seq = if !self.primed {
            // First contact: prime with the full vote.
            self.primed = true;
            self.advance(vote, len);
            return None;
        } else if self.version == vote.version && self.epoch == vote.epoch && self.seq <= len {
            // Same epoch, append-only since the last send: ship the tail.
            self.seq
        } else {
            // New instance or epoch (or an inconsistent cursor): the
            // receiver rebuilds from an epoch-opening delta.
            0
        };
        self.advance(vote, len);
        Some(from_seq)
    }

    fn advance(&mut self, vote: &Phase2b, len: u64) {
        self.version = vote.version;
        self.epoch = vote.epoch;
        self.seq = len;
    }
}

/// What folding one delta vote into a shadow view produced.
#[derive(Debug, Clone)]
pub enum FoldOutcome {
    /// The fold succeeded and the digest matched: here is the
    /// reconstructed full vote for the learner.
    Vote(Phase2b),
    /// The shadow diverged from the acceptor (missed epoch, lost delta,
    /// reordering): the receiver must pull the full cstruct.
    Diverged,
    /// The delta belongs to an older instance or epoch than the shadow
    /// already tracks; ignore it.
    Stale,
}

/// The receiver-side reconstruction of one acceptor's cstruct.
#[derive(Debug, Clone, Default)]
pub struct ShadowView {
    version: Version,
    epoch: u64,
    cstruct: CStruct,
    /// Diverged folds seen since the last pull was issued (0 = no pull
    /// outstanding). Suppresses the pull storm a single lost delta
    /// would otherwise cause on a hot record — every vote arriving
    /// during the repair round trip re-detects the same gap — while
    /// [`PULL_RETRY_EVERY`] keeps the view live if the repair response
    /// itself is lost.
    diverged_since_pull: u32,
}

/// Diverged folds tolerated on one shadow before the pull is re-sent
/// (the escape hatch for a lost `CstructFull` response).
const PULL_RETRY_EVERY: u32 = 16;

impl ShadowView {
    /// An empty shadow: folds epoch-opening deltas (`from_seq == 0`)
    /// directly; anything mid-epoch diverges and triggers a pull.
    pub fn new() -> Self {
        Self::default()
    }

    /// The reconstructed cstruct (tests and diagnostics).
    pub fn cstruct(&self) -> &CStruct {
        &self.cstruct
    }

    /// Folds one delta vote. On [`FoldOutcome::Vote`] the shadow equals
    /// the acceptor's cstruct byte-for-byte (the digest proved it).
    pub fn fold(&mut self, dv: &DeltaVote) -> FoldOutcome {
        if (dv.version, dv.epoch) < (self.version, self.epoch) {
            return FoldOutcome::Stale;
        }
        if dv.version != self.version || dv.epoch != self.epoch {
            // A new instance or epoch. Its append history starts empty,
            // so an epoch-opening delta (from_seq == 0) rebuilds the
            // shadow outright; a mid-epoch delta means the opening was
            // lost and only a pull can resynchronize.
            if dv.from_seq != 0 {
                return FoldOutcome::Diverged;
            }
            self.version = dv.version;
            self.epoch = dv.epoch;
            self.cstruct = CStruct::new();
        }
        let have = self.cstruct.len() as u64;
        if dv.from_seq > have {
            // Gap: a previous delta of this epoch never arrived.
            return FoldOutcome::Diverged;
        }
        // Overlapping prefix entries are already present (duplicate or
        // re-emitted vote); append only the genuinely new tail.
        for entry in dv.entries.iter().skip((have - dv.from_seq) as usize) {
            self.cstruct.append_entry(entry.clone());
        }
        if self.cstruct.len() as u64 == dv.full_len && self.cstruct.digest() == dv.digest {
            self.diverged_since_pull = 0;
            FoldOutcome::Vote(self.as_vote(dv.ballot))
        } else {
            FoldOutcome::Diverged
        }
    }

    /// Whether a [`FoldOutcome::Diverged`] should trigger a pull right
    /// now: true for the first divergence (and again every
    /// [`PULL_RETRY_EVERY`] diverged folds, in case the repair response
    /// was lost); false while a pull is already outstanding.
    pub fn should_pull(&mut self) -> bool {
        if self.diverged_since_pull == 0 || self.diverged_since_pull >= PULL_RETRY_EVERY {
            self.diverged_since_pull = 1;
            true
        } else {
            self.diverged_since_pull += 1;
            false
        }
    }

    /// Installs a full vote (a `CstructFull` repair response),
    /// resetting the shadow to the acceptor's exact state so subsequent
    /// deltas fold again. Unconditional: a diverged shadow's contents
    /// are untrustworthy, so the repair response always wins (a stale
    /// response merely provokes one more pull).
    pub fn reset_full(&mut self, vote: &Phase2b) {
        self.version = vote.version;
        self.epoch = vote.epoch;
        self.cstruct = vote.cstruct.clone();
        self.diverged_since_pull = 0;
    }

    /// Primes the shadow from an ordinary full vote (first-contact or
    /// legacy-mode votes) — installs it only when it is at least as new
    /// as what the shadow tracks, so a reordered old vote cannot regress
    /// a view that already folded fresher deltas.
    pub fn observe_full(&mut self, vote: &Phase2b) {
        let incoming = (vote.version, vote.epoch, vote.cstruct.len() as u64);
        let have = (self.version, self.epoch, self.cstruct.len() as u64);
        if incoming >= have {
            self.reset_full(vote);
        }
    }

    fn as_vote(&self, ballot: Ballot) -> Phase2b {
        Phase2b {
            ballot,
            version: self.version,
            cstruct: self.cstruct.clone(),
            epoch: self.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::{AcceptorRecord, FastPropose};
    use crate::demarcation::AttrConstraint;
    use crate::options::{TxnOption, TxnOutcome};
    use mdcc_common::{CommutativeUpdate, Key, NodeId, Row, TableId, TxnId, UpdateOp};
    use std::sync::Arc;

    fn acceptor(stock: i64) -> AcceptorRecord {
        AcceptorRecord::with_value(
            Arc::from(vec![AttrConstraint::at_least("stock", 0)]),
            5,
            4,
            32,
            Row::new().with("stock", stock),
        )
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(9), seq)
    }

    fn dec(seq: u64, amount: i64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            Key::new(TableId(0), "item1"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -amount)),
        )
    }

    fn vote_of(r: FastPropose) -> Phase2b {
        match r {
            FastPropose::Vote(v) => v,
            other => panic!("expected vote, got {other:?}"),
        }
    }

    /// Primes a cursor/shadow pair with one full vote (the node's
    /// first-contact behaviour).
    fn prime(cursor: &mut DeltaCursor, shadow: &mut ShadowView, vote: &Phase2b) {
        assert!(
            cursor.extract(vote).is_none(),
            "first contact ships the full vote"
        );
        shadow.reset_full(vote);
    }

    #[test]
    fn deltas_fold_to_the_acceptors_exact_cstruct() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        for i in 2..=5 {
            let vote = vote_of(a.fast_propose(dec(i, 1)));
            let dv = cursor.extract(&vote).expect("warm cursor ships deltas");
            assert_eq!(
                dv.entries.len(),
                1,
                "each vote ships exactly the new option"
            );
            match shadow.fold(&dv) {
                FoldOutcome::Vote(v) => {
                    assert_eq!(v.cstruct.digest(), a.cstruct().digest());
                    assert_eq!(v.cstruct.len(), a.cstruct().len());
                }
                other => panic!("fold failed: {other:?}"),
            }
        }
    }

    #[test]
    fn lost_delta_is_detected_and_repaired() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        // The second vote's delta is lost in transit; the third arrives
        // with a gap the shadow must refuse to paper over.
        let _lost = cursor.extract(&vote_of(a.fast_propose(dec(2, 1))));
        let v3 = vote_of(a.fast_propose(dec(3, 1)));
        let dv3 = cursor.extract(&v3).expect("delta");
        assert!(matches!(shadow.fold(&dv3), FoldOutcome::Diverged));
        // Read-repair: install the acceptor's full cstruct, then deltas
        // fold again.
        shadow.reset_full(&a.phase2b());
        let v4 = vote_of(a.fast_propose(dec(4, 1)));
        let dv4 = cursor.extract(&v4).expect("delta");
        match shadow.fold(&dv4) {
            FoldOutcome::Vote(v) => assert_eq!(v.cstruct.digest(), a.cstruct().digest()),
            other => panic!("post-repair fold failed: {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_reemitted_votes_fold_idempotently() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        let v2 = vote_of(a.fast_propose(dec(2, 1)));
        let dv2 = cursor.extract(&v2).expect("delta");
        assert!(matches!(shadow.fold(&dv2), FoldOutcome::Vote(_)));
        assert!(matches!(shadow.fold(&dv2), FoldOutcome::Vote(_)));
        // A retried proposal re-votes; the warm cursor ships an empty
        // delta that still digest-verifies against the folded shadow.
        let revote = vote_of(a.fast_propose(dec(2, 1)));
        let dv = cursor.extract(&revote).expect("delta");
        assert!(dv.entries.is_empty(), "re-vote ships no entries");
        assert!(matches!(shadow.fold(&dv), FoldOutcome::Vote(_)));
    }

    #[test]
    fn removal_opens_a_new_epoch_and_deltas_recover() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        for i in 2..=3 {
            let v = vote_of(a.fast_propose(dec(i, 1)));
            let dv = cursor.extract(&v).expect("delta");
            assert!(matches!(shadow.fold(&dv), FoldOutcome::Vote(_)));
        }
        let epoch_before = a.cstruct_epoch();
        // An abort removes its entry: the epoch bumps and the next vote
        // re-ships the whole (shrunken) cstruct as an epoch-opening
        // delta — no pull needed.
        a.apply_visibility(txn(2), TxnOutcome::Aborted, false);
        assert!(a.cstruct_epoch() > epoch_before);
        let v4 = vote_of(a.fast_propose(dec(4, 1)));
        let dv = cursor.extract(&v4).expect("delta");
        assert_eq!(dv.from_seq, 0, "new epoch opens at position zero");
        assert_eq!(dv.entries.len(), 3, "survivors plus the new option");
        match shadow.fold(&dv) {
            FoldOutcome::Vote(v) => assert_eq!(v.cstruct.digest(), a.cstruct().digest()),
            other => panic!("epoch-opening fold failed: {other:?}"),
        }
    }

    #[test]
    fn missed_epoch_opening_diverges() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        // Abort bumps the epoch; the epoch-opening re-vote is lost.
        a.apply_visibility(txn(1), TxnOutcome::Aborted, false);
        let _lost = cursor.extract(&vote_of(a.fast_propose(dec(2, 1))));
        let v3 = vote_of(a.fast_propose(dec(3, 1)));
        let dv = cursor.extract(&v3).expect("delta");
        assert!(dv.from_seq > 0);
        assert!(matches!(shadow.fold(&dv), FoldOutcome::Diverged));
    }

    #[test]
    fn stale_votes_from_older_epochs_are_ignored() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(0, 1))),
        );
        let old = vote_of(a.fast_propose(dec(1, 1)));
        let old_dv = cursor.extract(&old).expect("delta");
        a.apply_visibility(txn(1), TxnOutcome::Aborted, false);
        let new = vote_of(a.fast_propose(dec(2, 1)));
        let new_dv = cursor.extract(&new).expect("delta");
        assert!(matches!(shadow.fold(&new_dv), FoldOutcome::Vote(_)));
        // The pre-abort delta arrives late: older epoch, ignored.
        assert!(matches!(shadow.fold(&old_dv), FoldOutcome::Stale));
        assert_eq!(shadow.cstruct().digest(), a.cstruct().digest());
    }

    #[test]
    fn repeated_divergence_pulls_once_until_repaired() {
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        // A delta is lost; the following votes keep hitting the gap.
        let _lost = cursor.extract(&vote_of(a.fast_propose(dec(2, 1))));
        let mut pulls = 0;
        for i in 3..=8 {
            let v = vote_of(a.fast_propose(dec(i, 1)));
            let dv = cursor.extract(&v).expect("delta");
            assert!(matches!(shadow.fold(&dv), FoldOutcome::Diverged));
            if shadow.should_pull() {
                pulls += 1;
            }
        }
        assert_eq!(pulls, 1, "one pull per divergence, not per vote");
        // The repair response clears the suppression…
        shadow.reset_full(&a.phase2b());
        let v = vote_of(a.fast_propose(dec(9, 1)));
        let dv = cursor.extract(&v).expect("delta");
        assert!(matches!(shadow.fold(&dv), FoldOutcome::Vote(_)));
        // …and a fresh divergence pulls again immediately.
        let _lost = cursor.extract(&vote_of(a.fast_propose(dec(10, 1))));
        let v = vote_of(a.fast_propose(dec(11, 1)));
        let dv = cursor.extract(&v).expect("delta");
        assert!(matches!(shadow.fold(&dv), FoldOutcome::Diverged));
        assert!(shadow.should_pull(), "new divergence pulls at once");
    }

    #[test]
    fn cold_cursor_after_sender_restart_reprimes_with_a_full_vote() {
        // The cursor is volatile: a restarted node starts cold and sends
        // a full vote, which the receiver's shadow absorbs seamlessly
        // because the WAL-restored epoch keeps positions consistent.
        let mut a = acceptor(100);
        let mut cursor = DeltaCursor::new();
        let mut shadow = ShadowView::new();
        prime(
            &mut cursor,
            &mut shadow,
            &vote_of(a.fast_propose(dec(1, 1))),
        );
        let v2 = vote_of(a.fast_propose(dec(2, 1)));
        let dv = cursor.extract(&v2).expect("delta");
        assert!(matches!(shadow.fold(&dv), FoldOutcome::Vote(_)));
        // Crash + restart: acceptor state (incl. epoch) survives via
        // export/import, the cursor does not.
        let state = a.export_state();
        let mut a = AcceptorRecord::from_state(
            Arc::from(vec![AttrConstraint::at_least("stock", 0)]),
            5,
            4,
            32,
            state,
        );
        let mut cursor = DeltaCursor::new();
        let v3 = vote_of(a.fast_propose(dec(3, 1)));
        assert!(cursor.extract(&v3).is_none(), "cold cursor sends full");
        shadow.observe_full(&v3);
        let v4 = vote_of(a.fast_propose(dec(4, 1)));
        let dv = cursor.extract(&v4).expect("warm again");
        match shadow.fold(&dv) {
            FoldOutcome::Vote(v) => assert_eq!(v.cstruct.digest(), a.cstruct().digest()),
            other => panic!("post-restart fold failed: {other:?}"),
        }
    }
}

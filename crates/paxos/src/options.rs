//! Transaction options: ω(up, ✓/✗).
//!
//! MDCC's acceptors do not agree on values — they agree on *options to
//! execute an update* (§3.2.1). A storage node actively decides whether an
//! option is acceptable (version check or demarcation check) and the
//! decision itself is what Paxos replicates. An accepted option is
//! *outstanding* until the coordinator's Visibility message resolves it as
//! committed or aborted.

use std::fmt;
use std::sync::Arc;

use mdcc_common::error::AbortReason;
use mdcc_common::{Key, TxnId, UpdateOp};

/// The acceptance decision a storage node makes for an option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionStatus {
    /// ω(up, ✓): the update may execute if the transaction commits.
    Accepted,
    /// ω(up, ✗): the update must not execute; carries the reason.
    Rejected(AbortReason),
}

impl OptionStatus {
    /// True for [`OptionStatus::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, OptionStatus::Accepted)
    }
}

/// Final transaction outcome distributed by Visibility messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// Execute all accepted options of the transaction.
    Committed,
    /// Discard all options of the transaction.
    Aborted,
}

/// An update proposed for one record on behalf of one transaction.
///
/// Besides the operation itself, the option carries the transaction id and
/// the full set of write-set keys — "every option includes all necessary
/// information to reconstruct the state of the corresponding transactions"
/// (§3.2.3), which is what makes dangling-transaction recovery possible.
#[derive(Debug, Clone)]
pub struct TxnOption {
    /// The transaction proposing the update.
    pub txn: TxnId,
    /// The record the update targets.
    pub key: Key,
    /// The update operation.
    pub op: UpdateOp,
    /// All keys written by the transaction (recovery metadata).
    pub peers: Arc<[Key]>,
}

impl TxnOption {
    /// Builds an option for a single-record transaction (tests, examples).
    pub fn solo(txn: TxnId, key: Key, op: UpdateOp) -> Self {
        let peers: Arc<[Key]> = Arc::from(vec![key.clone()]);
        Self {
            txn,
            key,
            op,
            peers,
        }
    }

    /// True when the payload is a commutative update.
    pub fn is_commutative(&self) -> bool {
        self.op.is_commutative()
    }
}

impl PartialEq for TxnOption {
    fn eq(&self, other: &Self) -> bool {
        // Options are identified by (txn, key): a transaction writes a
        // record at most once (the TM merges repeated writes).
        self.txn == other.txn && self.key == other.key
    }
}

impl Eq for TxnOption {}

impl fmt::Display for TxnOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_commutative() {
            "comm"
        } else {
            "phys"
        };
        write!(f, "ω({} on {}, {kind})", self.txn, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, NodeId, PhysicalUpdate, Row, TableId, Version};

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    #[test]
    fn identity_is_txn_and_key() {
        let t = TxnId::new(NodeId(0), 1);
        let a = TxnOption::solo(
            t,
            key("x"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        let b = TxnOption::solo(
            t,
            key("x"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -2)),
        );
        assert_eq!(a, b, "same (txn, key) is the same option");
        let c = TxnOption::solo(t, key("y"), a.op.clone());
        assert_ne!(a, c);
    }

    #[test]
    fn solo_captures_its_own_key_as_peer() {
        let t = TxnId::new(NodeId(2), 9);
        let o = TxnOption::solo(
            t,
            key("x"),
            UpdateOp::Physical(PhysicalUpdate::write(Version(0), Row::new())),
        );
        assert_eq!(&*o.peers, &[key("x")]);
        assert!(!o.is_commutative());
    }

    #[test]
    fn status_helpers() {
        assert!(OptionStatus::Accepted.is_accepted());
        assert!(!OptionStatus::Rejected(AbortReason::StaleRead).is_accepted());
    }
}

//! Coordinator-side learning (Algorithm 1, lines 14–26).
//!
//! The app server that proposed an option collects Phase2b votes and
//! learns the option's status once *some* quorum of acceptors reports
//! cstructs whose greatest lower bound contains the option: a common
//! trace prefix of a quorum is durable under any future of the protocol.
//!
//! The learner also detects **definite collisions** — situations where no
//! quorum can possibly agree anymore (e.g. two concurrent physical writes
//! interleaved differently across acceptors) — so recovery can start
//! before the learn timeout fires.

use std::collections::BTreeMap;

use mdcc_common::TxnId;

use crate::acceptor::Phase2b;
use crate::ballot::Ballot;
use crate::cstruct::CStruct;
use crate::options::OptionStatus;
use crate::quorum::{mask_indices, subsets};

/// Phase2b votes grouped by `(instance, ballot round, ballot kind flag,
/// proposer)` — votes are only comparable within one group.
type VoteGroups<'a> = BTreeMap<(u64, u32, bool, u32), Vec<(usize, &'a CStruct)>>;

/// The learner's verdict after each vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnOutcome {
    /// Keep waiting.
    Undecided,
    /// The option's status is durable.
    Learned(OptionStatus),
    /// No quorum can agree on this option anymore; the proposer must ask
    /// the master for collision recovery (§3.3.1).
    Collision,
}

/// Tracks Phase2b votes for one option (one transaction × one record).
#[derive(Debug, Clone)]
pub struct Learner {
    n: usize,
    qc: usize,
    qf: usize,
    txn: TxnId,
    /// Latest vote per acceptor index.
    votes: BTreeMap<usize, Phase2b>,
    learned: Option<OptionStatus>,
    learned_fast: bool,
}

impl Learner {
    /// Creates a learner for `txn`'s option on one record replicated over
    /// `n` acceptors.
    pub fn new(n: usize, qc: usize, qf: usize, txn: TxnId) -> Self {
        Self {
            n,
            qc,
            qf,
            txn,
            votes: BTreeMap::new(),
            learned: None,
            learned_fast: false,
        }
    }

    /// The learned status, if any.
    pub fn learned(&self) -> Option<OptionStatus> {
        self.learned
    }

    /// True when the status was learned from a fast quorum — i.e. without
    /// a master round trip (latency statistics).
    pub fn learned_fast(&self) -> bool {
        self.learned_fast
    }

    /// Number of acceptors heard from.
    pub fn responses(&self) -> usize {
        self.votes.len()
    }

    /// True when at least one vote *at the newest instance seen* contains
    /// the option. Recovery uses this to distinguish "acceptors disagree"
    /// (drive master recovery) from "the option reached nobody" (the
    /// transaction can be resolved as aborted once proposals can no
    /// longer arrive).
    pub fn seen_at_latest(&self) -> bool {
        let Some(max_version) = self.votes.values().map(|v| v.version).max() else {
            return false;
        };
        self.votes
            .values()
            .filter(|v| v.version == max_version)
            .any(|v| v.cstruct.status_of(self.txn).is_some())
    }

    /// Feeds one Phase2b vote from acceptor `from` and re-evaluates.
    pub fn on_vote(&mut self, from: usize, vote: Phase2b) -> LearnOutcome {
        debug_assert!(from < self.n, "acceptor index out of range");
        match self.votes.get(&from) {
            Some(old) if (old.version, old.ballot) > (vote.version, vote.ballot) => {}
            _ => {
                self.votes.insert(from, vote);
            }
        }
        self.evaluate()
    }

    fn quorum_for(&self, ballot: Ballot) -> usize {
        if ballot.is_fast() {
            self.qf
        } else {
            self.qc
        }
    }

    fn evaluate(&mut self) -> LearnOutcome {
        if let Some(s) = self.learned {
            return LearnOutcome::Learned(s);
        }
        if self.votes.is_empty() {
            return LearnOutcome::Undecided;
        }
        // Group votes by (instance, ballot); Phase2b votes are only
        // comparable within one instance and ballot. Every group is a
        // learning candidate - an accepted-pending option pins its
        // instance open at its acceptors, so a quorum at an older version
        // is just as durable as one at the newest.
        let mut groups: VoteGroups<'_> = BTreeMap::new();
        for (idx, v) in &self.votes {
            let key = (
                v.version.0,
                v.ballot.round,
                !v.ballot.is_fast(),
                v.ballot.proposer.0,
            );
            groups.entry(key).or_default().push((*idx, &v.cstruct));
        }
        for ((_, round, classic, proposer), members) in groups.iter().rev() {
            let ballot = if *classic {
                Ballot::classic(*round, mdcc_common::NodeId(*proposer))
            } else {
                Ballot::fast(*round, mdcc_common::NodeId(*proposer))
            };
            let q = self.quorum_for(ballot);
            if members.len() < q {
                continue;
            }
            // Enumerate q-subsets of this group's members.
            for mask in subsets(members.len(), q) {
                let chosen: Vec<&CStruct> = mask_indices(mask).map(|i| members[i].1).collect();
                let glb = CStruct::glb_many(&chosen);
                if let Some(status) = glb.status_of(self.txn) {
                    self.learned = Some(status);
                    self.learned_fast = ballot.is_fast();
                    return LearnOutcome::Learned(status);
                }
            }
        }
        self.detect_collision(&groups)
    }

    /// Declares a collision when no quorum can agree anymore: every
    /// acceptor responded, all in one (instance, ballot) group, and
    /// nothing was learned. Anything less clear-cut stays `Undecided` -
    /// the coordinator's learn timeout is the liveness fallback, and a
    /// spurious collision verdict would trigger needless recovery rounds.
    fn detect_collision(&self, groups: &VoteGroups<'_>) -> LearnOutcome {
        if groups.len() != 1 {
            return LearnOutcome::Undecided;
        }
        let ((_, _, classic, _), members) = groups.iter().next().expect("one group");
        // A vote can reach this coordinator before its own proposal
        // reaches the acceptors (acceptors fan votes out to every entry's
        // coordinator). Until at least one vote carries the option, there
        // is nothing to collide about.
        if members.iter().all(|(_, c)| c.status_of(self.txn).is_none()) {
            return LearnOutcome::Undecided;
        }
        if self.votes.len() == self.n {
            return LearnOutcome::Collision;
        }
        // Early detection within the single group of the current
        // proposal: if neither side can reach its quorum even with every
        // unheard acceptor, the votes are split for good.
        let q = if *classic { self.qc } else { self.qf };
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut absent = 0usize;
        for (_, c) in members {
            match c.status_of(self.txn) {
                Some(s) if s.is_accepted() => accepted += 1,
                Some(_) => rejected += 1,
                None => absent += 1,
            }
        }
        let head_room = (self.n - self.votes.len()) + absent;
        if accepted + head_room < q && rejected + head_room < q {
            return LearnOutcome::Collision;
        }
        LearnOutcome::Undecided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TxnOption;
    use mdcc_common::error::AbortReason;
    use mdcc_common::{
        CommutativeUpdate, Key, NodeId, PhysicalUpdate, Row, TableId, UpdateOp, Version,
    };

    const N: usize = 5;
    const QC: usize = 3;
    const QF: usize = 4;

    fn key() -> Key {
        Key::new(TableId(0), "r")
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(1), seq)
    }

    fn comm(seq: u64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        )
    }

    fn phys(seq: u64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new())),
        )
    }

    fn vote(ballot: Ballot, entries: Vec<(TxnOption, OptionStatus)>) -> Phase2b {
        let mut c = CStruct::new();
        for (o, s) in entries {
            c.append(o, s);
        }
        Phase2b {
            ballot,
            version: Version(1),
            cstruct: c,
            epoch: 0,
        }
    }

    #[test]
    fn learns_accept_from_fast_quorum() {
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        for i in 0..3 {
            assert_eq!(
                l.on_vote(i, vote(b, vec![(comm(1), OptionStatus::Accepted)])),
                LearnOutcome::Undecided,
                "three votes are not a fast quorum"
            );
        }
        assert_eq!(
            l.on_vote(3, vote(b, vec![(comm(1), OptionStatus::Accepted)])),
            LearnOutcome::Learned(OptionStatus::Accepted)
        );
        assert_eq!(l.learned(), Some(OptionStatus::Accepted));
    }

    #[test]
    fn learns_reject_even_with_mixed_reasons() {
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        let reasons = [
            AbortReason::StaleRead,
            AbortReason::DemarcationLimit,
            AbortReason::PendingOption,
            AbortReason::StaleRead,
        ];
        let mut outcome = LearnOutcome::Undecided;
        for (i, r) in reasons.iter().enumerate() {
            outcome = l.on_vote(i, vote(b, vec![(comm(1), OptionStatus::Rejected(*r))]));
        }
        assert!(
            matches!(outcome, LearnOutcome::Learned(OptionStatus::Rejected(_))),
            "got {outcome:?}"
        );
    }

    #[test]
    fn learns_classic_from_three_votes() {
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::classic(1, NodeId(0));
        l.on_vote(0, vote(b, vec![(phys(1), OptionStatus::Accepted)]));
        l.on_vote(1, vote(b, vec![(phys(1), OptionStatus::Accepted)]));
        let out = l.on_vote(2, vote(b, vec![(phys(1), OptionStatus::Accepted)]));
        assert_eq!(out, LearnOutcome::Learned(OptionStatus::Accepted));
    }

    #[test]
    fn interleaved_physical_writes_collide() {
        // Acceptors saw t1 and t2 in different orders: 3 accepted t1
        // first, 2 accepted t2 first. Neither reaches a fast quorum.
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        let t1_first = vec![
            (phys(1), OptionStatus::Accepted),
            (phys(2), OptionStatus::Rejected(AbortReason::PendingOption)),
        ];
        let t2_first = vec![
            (phys(2), OptionStatus::Accepted),
            (phys(1), OptionStatus::Rejected(AbortReason::PendingOption)),
        ];
        assert_eq!(
            l.on_vote(0, vote(b, t1_first.clone())),
            LearnOutcome::Undecided
        );
        assert_eq!(
            l.on_vote(1, vote(b, t1_first.clone())),
            LearnOutcome::Undecided
        );
        assert_eq!(
            l.on_vote(2, vote(b, t1_first.clone())),
            LearnOutcome::Undecided
        );
        assert_eq!(
            l.on_vote(3, vote(b, t2_first.clone())),
            LearnOutcome::Undecided
        );
        // Fifth response: all acceptors heard, no 4-quorum agrees → collision.
        assert_eq!(l.on_vote(4, vote(b, t2_first)), LearnOutcome::Collision);
    }

    #[test]
    fn early_collision_detection_without_all_votes() {
        // 2 accepted, 2 rejected: even the one silent acceptor cannot give
        // either side a fast quorum of 4 → declare collision early.
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        l.on_vote(0, vote(b, vec![(comm(1), OptionStatus::Accepted)]));
        l.on_vote(1, vote(b, vec![(comm(1), OptionStatus::Accepted)]));
        l.on_vote(
            2,
            vote(
                b,
                vec![(
                    comm(1),
                    OptionStatus::Rejected(AbortReason::DemarcationLimit),
                )],
            ),
        );
        let out = l.on_vote(
            3,
            vote(
                b,
                vec![(
                    comm(1),
                    OptionStatus::Rejected(AbortReason::DemarcationLimit),
                )],
            ),
        );
        assert_eq!(out, LearnOutcome::Collision);
    }

    #[test]
    fn commutative_options_learn_despite_different_orders() {
        // The whole point of Generalized Paxos: different arrival orders
        // of commuting options do not prevent learning.
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        let ab = vec![
            (comm(1), OptionStatus::Accepted),
            (comm(2), OptionStatus::Accepted),
        ];
        let ba = vec![
            (comm(2), OptionStatus::Accepted),
            (comm(1), OptionStatus::Accepted),
        ];
        l.on_vote(0, vote(b, ab.clone()));
        l.on_vote(1, vote(b, ba.clone()));
        l.on_vote(2, vote(b, ab));
        let out = l.on_vote(3, vote(b, ba));
        assert_eq!(out, LearnOutcome::Learned(OptionStatus::Accepted));
    }

    #[test]
    fn votes_from_older_instances_are_ignored() {
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        let mut old = vote(b, vec![(comm(1), OptionStatus::Accepted)]);
        old.version = Version(0);
        for i in 0..4 {
            let out = l.on_vote(i, old.clone());
            if i < 3 {
                assert_eq!(out, LearnOutcome::Undecided);
            } else {
                // All four votes *are* a quorum at version 0 — but if a
                // newer vote exists, the old instance cannot decide.
                assert_eq!(out, LearnOutcome::Learned(OptionStatus::Accepted));
            }
        }
        // Now a newer-version vote arrives: learning already happened, so
        // the learner sticks to its verdict (learning is stable).
        let newer = vote(b, vec![]);
        assert_eq!(
            l.on_vote(4, newer),
            LearnOutcome::Learned(OptionStatus::Accepted)
        );
    }

    #[test]
    fn duplicate_and_stale_votes_are_idempotent() {
        let mut l = Learner::new(N, QC, QF, txn(1));
        let b = Ballot::INITIAL_FAST;
        let v = vote(b, vec![(comm(1), OptionStatus::Accepted)]);
        l.on_vote(0, v.clone());
        l.on_vote(0, v.clone());
        l.on_vote(0, v.clone());
        assert_eq!(l.responses(), 1, "one acceptor, one vote");
    }
}

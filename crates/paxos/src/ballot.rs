//! Ballot numbers.
//!
//! MDCC distinguishes *classic* and *fast* ballots (§3.3.1). Collision
//! recovery must be able to override any fast activity of the same round,
//! so "classic ballot numbers are always higher ranked than fast ballot
//! numbers". Within a kind, ballots order by round and then by proposer
//! id (the paper concatenates the requester's IP address for uniqueness).

use std::fmt;

use mdcc_common::NodeId;

/// Whether a ballot is coordinated by a master (classic) or open to any
/// proposer (fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BallotKind {
    /// Any proposer may send options directly to the acceptors; learning
    /// needs a fast quorum.
    Fast,
    /// A single leader serializes proposals; learning needs only a classic
    /// quorum.
    Classic,
}

/// A ballot number: `(round, kind, proposer)` with classic > fast within a
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ballot {
    /// Monotonically increasing round.
    pub round: u32,
    /// Fast or classic.
    pub kind: BallotKind,
    /// The node that started the ballot; tie-breaker, and the master for
    /// classic ballots.
    pub proposer: NodeId,
}

impl Ballot {
    /// The implicit default ballot every record starts in: round 0, fast,
    /// no distinguished proposer (§3.3.1: "all versions start as an
    /// implicitly fast ballot number").
    pub const INITIAL_FAST: Ballot = Ballot {
        round: 0,
        kind: BallotKind::Fast,
        proposer: NodeId(0),
    };

    /// A classic ballot at `round` led by `proposer`.
    pub fn classic(round: u32, proposer: NodeId) -> Self {
        Self {
            round,
            kind: BallotKind::Classic,
            proposer,
        }
    }

    /// A fast ballot at `round` opened by `proposer`.
    pub fn fast(round: u32, proposer: NodeId) -> Self {
        Self {
            round,
            kind: BallotKind::Fast,
            proposer,
        }
    }

    /// True for fast ballots.
    pub fn is_fast(&self) -> bool {
        self.kind == BallotKind::Fast
    }

    /// The smallest classic ballot led by `proposer` that beats `self`.
    pub fn next_classic(&self, proposer: NodeId) -> Ballot {
        match self.kind {
            // A classic ballot of the same round already beats any fast
            // ballot of that round.
            BallotKind::Fast => Ballot::classic(self.round.max(1), proposer),
            BallotKind::Classic => Ballot::classic(self.round + 1, proposer),
        }
    }

    /// The smallest fast ballot that beats `self` (used by a master
    /// reopening fast mode after γ classic transactions).
    pub fn next_fast(&self, proposer: NodeId) -> Ballot {
        Ballot::fast(self.round + 1, proposer)
    }

    /// The promise floor a mastership lease at election-ballot number
    /// `n` carries for every record in its scope (lease-carried
    /// Phase1). Classic by construction: a floor must fence fast
    /// proposals of its round and is always led by the lease `holder`,
    /// so the holder's first Phase2a at this ballot is immediately
    /// valid on any acceptor that installed the floor.
    pub fn lease(n: u32, holder: NodeId) -> Self {
        Ballot::classic(n, holder)
    }

    fn rank(&self) -> (u32, u8, u32) {
        let kind = match self.kind {
            BallotKind::Fast => 0,
            BallotKind::Classic => 1,
        };
        (self.round, kind, self.proposer.0)
    }
}

impl PartialOrd for Ballot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ballot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = if self.is_fast() { "F" } else { "C" };
        write!(f, "b{}{}@{}", self.round, k, self.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_outranks_fast_of_same_round() {
        let f = Ballot::fast(3, NodeId(9));
        let c = Ballot::classic(3, NodeId(1));
        assert!(c > f, "classic must beat fast within a round");
        assert!(Ballot::fast(4, NodeId(0)) > c, "higher round beats kind");
    }

    #[test]
    fn proposer_breaks_ties() {
        let a = Ballot::classic(2, NodeId(1));
        let b = Ballot::classic(2, NodeId(2));
        assert!(a < b);
        assert_eq!(a, Ballot::classic(2, NodeId(1)));
    }

    #[test]
    fn next_classic_always_beats_current() {
        let cases = [
            Ballot::INITIAL_FAST,
            Ballot::fast(7, NodeId(3)),
            Ballot::classic(7, NodeId(3)),
        ];
        for b in cases {
            let n = b.next_classic(NodeId(0));
            assert!(n > b, "{n} must beat {b}");
            assert_eq!(n.kind, BallotKind::Classic);
        }
    }

    #[test]
    fn next_fast_beats_current_classic() {
        let c = Ballot::classic(5, NodeId(2));
        let f = c.next_fast(NodeId(2));
        assert!(f > c);
        assert!(f.is_fast());
    }

    #[test]
    fn initial_fast_is_the_minimum_fast_ballot() {
        assert!(Ballot::INITIAL_FAST <= Ballot::fast(0, NodeId(0)));
        assert!(Ballot::INITIAL_FAST < Ballot::classic(0, NodeId(0)));
    }

    #[test]
    fn lease_floor_fences_its_rounds_fast_ballots() {
        let floor = Ballot::lease(3, NodeId(2));
        assert!(!floor.is_fast());
        assert!(floor > Ballot::fast(3, NodeId(9)), "fences fast of round");
        assert!(floor > Ballot::classic(3, NodeId(1)), "pid breaks ties");
        assert!(Ballot::classic(4, NodeId(0)) > floor, "higher round wins");
    }

    #[test]
    fn display() {
        assert_eq!(Ballot::classic(4, NodeId(2)).to_string(), "b4C@n2");
        assert_eq!(Ballot::fast(0, NodeId(0)).to_string(), "b0F@n0");
    }
}

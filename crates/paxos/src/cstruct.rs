//! Command structures (cstructs) from Generalized Paxos, §3.4.
//!
//! A cstruct is an append-only sequence of decided options ω(up, ✓/✗) over
//! one record's current instance, considered up to *trace equivalence*:
//!
//! * accepted **commutative** options commute with each other;
//! * **rejected** options never execute, so they commute with everything;
//! * accepted **physical** options are barriers — they commute with
//!   nothing but rejected options.
//!
//! On top of that equivalence the crate implements the partial order `⊑`
//! (trace prefix), the least upper bound `⊔`, the greatest lower bound `⊓`
//! over sets, all of which `ProvedSafe` (Algorithm 2, lines 49–57) and the
//! learner need.
//!
//! Within one record a letter is identified by `(txn, status)`: a
//! transaction holds at most one option per record, and two cstructs that
//! disagree on a transaction's status are simply incompatible (no common
//! upper bound), which surfaces as a Fast Paxos collision.

use std::fmt;

use mdcc_common::TxnId;

use crate::options::{OptionStatus, TxnOption};

/// One decided option inside a cstruct.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The proposed update.
    pub opt: TxnOption,
    /// The acceptance decision.
    pub status: OptionStatus,
}

impl Entry {
    /// True when this entry never executes (rejected) and therefore
    /// commutes with everything.
    pub fn is_neutral(&self) -> bool {
        !self.status.is_accepted()
    }

    /// Trace commutation relation: rejected options are neutral; accepted
    /// commutative deltas commute with each other; accepted read guards
    /// (shared locks) commute with each other; everything else conflicts.
    pub fn commutes_with(&self, other: &Entry) -> bool {
        if self.is_neutral() || other.is_neutral() {
            return true;
        }
        (self.opt.is_commutative() && other.opt.is_commutative())
            || (self.opt.op.is_guard() && other.opt.op.is_guard())
    }

    /// Canonical letter identity and sort key: `(txn, decision)`.
    ///
    /// The rejection *reason* is deliberately excluded: two acceptors that
    /// reject the same option for different local reasons (say stale read
    /// versus demarcation) still agree on the decision, and the learner
    /// must be able to assemble an abort quorum from them.
    fn letter(&self) -> (TxnId, u8) {
        (self.opt.txn, status_rank(self.status))
    }
}

/// Deterministic rank of a status: 0 accepted, 1 rejected (any reason).
fn status_rank(s: OptionStatus) -> u8 {
    match s {
        OptionStatus::Accepted => 0,
        OptionStatus::Rejected(_) => 1,
    }
}

/// A command structure: sequence of decided options modulo commutation.
#[derive(Debug, Clone, Default)]
pub struct CStruct {
    entries: Vec<Entry>,
}

impl CStruct {
    /// The empty cstruct (⊥, the lattice bottom).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no options were decided yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in (one representative of the) recorded order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// The recorded status of `txn`'s option, if present.
    pub fn status_of(&self, txn: TxnId) -> Option<OptionStatus> {
        self.entries
            .iter()
            .find(|e| e.opt.txn == txn)
            .map(|e| e.status)
    }

    /// The full entry of `txn`'s option, if present.
    pub fn entry_of(&self, txn: TxnId) -> Option<&Entry> {
        self.entries.iter().find(|e| e.opt.txn == txn)
    }

    /// Appends ω(opt, status) — the `val • ω(up,_)` operator of Table 1.
    ///
    /// Returns `false` (and leaves the cstruct unchanged) if `opt`'s
    /// transaction already holds an option here, making the call
    /// idempotent under message duplication.
    pub fn append(&mut self, opt: TxnOption, status: OptionStatus) -> bool {
        if self.status_of(opt.txn).is_some() {
            return false;
        }
        self.entries.push(Entry { opt, status });
        true
    }

    /// Appends an existing entry (recovery adoption path).
    pub fn append_entry(&mut self, entry: Entry) -> bool {
        self.append(entry.opt, entry.status)
    }

    /// Removes `txn`'s entry, returning it. Used when a transaction
    /// resolves without consuming the instance (aborts of options that
    /// were not globally learned as accepted): the entry leaves the
    /// pending set and stops acting as a barrier.
    pub fn remove(&mut self, txn: TxnId) -> Option<Entry> {
        let pos = self.entries.iter().position(|e| e.opt.txn == txn)?;
        Some(self.entries.remove(pos))
    }

    /// Accepted entries in order.
    pub fn accepted(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(|e| e.status.is_accepted())
    }

    /// Trace-prefix test: `self ⊑ other` iff `other` equals `self`
    /// followed by more options, modulo commutation.
    ///
    /// Runs on every `lub`, which Phase2 learning calls per vote, so the
    /// common case (cstructs of ≤ 64 options) tracks consumed letters in
    /// a bitmask instead of allocating a scratch vector.
    pub fn is_prefix_of(&self, other: &CStruct) -> bool {
        if other.entries.len() <= 64 {
            return self.is_prefix_of_small(other);
        }
        let mut remaining: Vec<&Entry> = other.entries.iter().collect();
        // Consume self's letters in order. Non-commuting pairs keep a
        // fixed relative order across equivalent representatives, so
        // consuming in recorded order is sound.
        for e in &self.entries {
            let Some(pos) = remaining.iter().position(|r| r.letter() == e.letter()) else {
                return false;
            };
            if !remaining[..pos].iter().all(|r| r.commutes_with(e)) {
                return false;
            }
            remaining.remove(pos);
        }
        true
    }

    /// Allocation-free [`CStruct::is_prefix_of`] for `other` of ≤ 64
    /// entries: bit `i` of `consumed` marks `other.entries[i]` as
    /// already matched against one of self's letters.
    fn is_prefix_of_small(&self, other: &CStruct) -> bool {
        debug_assert!(other.entries.len() <= 64);
        let mut consumed: u64 = 0;
        'outer: for e in &self.entries {
            for (i, r) in other.entries.iter().enumerate() {
                if consumed & (1 << i) != 0 {
                    continue;
                }
                if r.letter() == e.letter() {
                    consumed |= 1 << i;
                    continue 'outer;
                }
                // An unconsumed letter stands between `e` and its match;
                // the orders are only equivalent if the two commute.
                if !r.commutes_with(e) {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Trace equivalence.
    pub fn equivalent(&self, other: &CStruct) -> bool {
        self.len() == other.len() && self.is_prefix_of(other)
    }

    /// Least upper bound `self ⊔ other`; `None` when the two conflict
    /// (status disagreement or incompatible ordering of barriers).
    pub fn lub(&self, other: &CStruct) -> Option<CStruct> {
        // Decision disagreement on any transaction ⇒ incompatible.
        for e in &other.entries {
            if let Some(s) = self.status_of(e.opt.txn) {
                if status_rank(s) != status_rank(e.status) {
                    return None;
                }
            }
        }
        let mut merged = self.clone();
        for e in &other.entries {
            if merged.status_of(e.opt.txn).is_none() {
                merged.entries.push(e.clone());
            }
        }
        if self.is_prefix_of(&merged) && other.is_prefix_of(&merged) {
            Some(merged)
        } else {
            None
        }
    }

    /// Least upper bound of many cstructs, `None` if any pair conflicts.
    pub fn lub_many<'a, I: IntoIterator<Item = &'a CStruct>>(items: I) -> Option<CStruct> {
        let mut acc = CStruct::new();
        for c in items {
            acc = acc.lub(c)?;
        }
        Some(acc)
    }

    /// Greatest lower bound `⊓` of a non-empty set of cstructs.
    ///
    /// Greedily extracts letters that are *front-movable* in every input:
    /// a letter is extractable from a sequence when everything recorded
    /// before it commutes with it. Removing a letter never disables other
    /// extractions, so the reachable set is order-independent; picking the
    /// canonically smallest letter each round makes the representative
    /// deterministic.
    pub fn glb_many(items: &[&CStruct]) -> CStruct {
        if items.is_empty() {
            return CStruct::new();
        }
        let mut rems: Vec<Vec<Entry>> = items.iter().map(|c| c.entries.clone()).collect();
        let mut out = CStruct::new();
        loop {
            // Letters extractable from every remaining sequence.
            let mut best: Option<(TxnId, u8)> = None;
            for cand in extractable(&rems[0]) {
                if rems[1..].iter().all(|r| extractable(r).contains(&cand))
                    && best.is_none_or(|b| cand < b)
                {
                    best = Some(cand);
                }
            }
            let Some(letter) = best else {
                break;
            };
            for (i, rem) in rems.iter_mut().enumerate() {
                let pos = rem
                    .iter()
                    .position(|e| e.letter() == letter)
                    .expect("extractable letter present");
                let e = rem.remove(pos);
                if i == 0 {
                    out.entries.push(e);
                }
            }
        }
        out
    }
}

/// Letters that can be commuted to the front of `seq`.
fn extractable(seq: &[Entry]) -> Vec<(TxnId, u8)> {
    let mut out = Vec::new();
    for (i, e) in seq.iter().enumerate() {
        if seq[..i].iter().all(|p| p.commutes_with(e)) {
            out.push(e.letter());
        }
    }
    out
}

impl PartialEq for CStruct {
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for CStruct {}

impl fmt::Display for CStruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let s = match e.status {
                OptionStatus::Accepted => "✓",
                OptionStatus::Rejected(_) => "✗",
            };
            write!(f, "{}{s}", e.opt.txn)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::error::AbortReason;
    use mdcc_common::{
        CommutativeUpdate, Key, NodeId, PhysicalUpdate, Row, TableId, UpdateOp, Version,
    };

    fn key() -> Key {
        Key::new(TableId(0), "r")
    }

    fn comm(seq: u64) -> TxnOption {
        TxnOption::solo(
            TxnId::new(NodeId(0), seq),
            key(),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        )
    }

    fn phys(seq: u64) -> TxnOption {
        TxnOption::solo(
            TxnId::new(NodeId(0), seq),
            key(),
            UpdateOp::Physical(PhysicalUpdate::write(Version(0), Row::new())),
        )
    }

    fn acc(o: TxnOption) -> (TxnOption, OptionStatus) {
        (o, OptionStatus::Accepted)
    }

    fn rej(o: TxnOption) -> (TxnOption, OptionStatus) {
        (o, OptionStatus::Rejected(AbortReason::StaleRead))
    }

    fn cs(parts: Vec<(TxnOption, OptionStatus)>) -> CStruct {
        let mut c = CStruct::new();
        for (o, s) in parts {
            assert!(c.append(o, s));
        }
        c
    }

    #[test]
    fn append_is_idempotent_per_txn() {
        let mut c = CStruct::new();
        assert!(c.append(comm(1), OptionStatus::Accepted));
        assert!(!c.append(comm(1), OptionStatus::Accepted));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn commutative_orders_are_equivalent() {
        let a = cs(vec![acc(comm(1)), acc(comm(2))]);
        let b = cs(vec![acc(comm(2)), acc(comm(1))]);
        assert_eq!(a, b);
        assert!(a.is_prefix_of(&b) && b.is_prefix_of(&a));
    }

    #[test]
    fn small_and_general_prefix_paths_agree() {
        // 70 entries pushes `other` past the 64-bit mask, forcing the
        // allocating general path; the ≤ 64 slices run the bitmask path.
        // Both must judge the same prefixes.
        let mut big = CStruct::new();
        for i in 0..70 {
            assert!(big.append(comm(i), OptionStatus::Accepted));
        }
        let mut small = CStruct::new();
        for i in 0..40 {
            assert!(small.append(comm(i), OptionStatus::Accepted));
        }
        assert!(small.is_prefix_of(&big), "general path accepts");
        assert!(small.is_prefix_of_small(&small), "bitmask path reflexive");
        // A physical barrier out of order must fail on both paths.
        let ordered = cs(vec![acc(phys(100)), acc(phys(101))]);
        let swapped = cs(vec![acc(phys(101)), acc(phys(100))]);
        assert!(!ordered.is_prefix_of_small(&swapped));
        let mut swapped_big = swapped.clone();
        for i in 0..70 {
            assert!(swapped_big.append(comm(i), OptionStatus::Accepted));
        }
        assert!(!ordered.is_prefix_of(&swapped_big), "barrier holds >64");
    }

    #[test]
    fn physical_orders_are_not_equivalent() {
        let a = cs(vec![acc(phys(1)), acc(phys(2))]);
        let b = cs(vec![acc(phys(2)), acc(phys(1))]);
        assert_ne!(a, b);
    }

    #[test]
    fn rejected_options_are_neutral() {
        let a = cs(vec![acc(phys(1)), rej(phys(2))]);
        let b = cs(vec![rej(phys(2)), acc(phys(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_respects_barriers() {
        let small = cs(vec![acc(phys(1))]);
        let big = cs(vec![acc(phys(1)), acc(phys(2))]);
        let wrong = cs(vec![acc(phys(2)), acc(phys(1))]);
        assert!(small.is_prefix_of(&big));
        assert!(
            !small.is_prefix_of(&wrong),
            "barrier before 1 blocks consumption"
        );
        assert!(!big.is_prefix_of(&small));
    }

    #[test]
    fn empty_is_prefix_of_everything() {
        let e = CStruct::new();
        assert!(e.is_prefix_of(&cs(vec![acc(phys(1))])));
        assert!(e.is_prefix_of(&e.clone()));
        assert!(e.is_empty());
    }

    #[test]
    fn lub_of_commutative_is_union() {
        let a = cs(vec![acc(comm(1)), acc(comm(2))]);
        let b = cs(vec![acc(comm(2)), acc(comm(3))]);
        let l = a.lub(&b).expect("compatible");
        assert_eq!(l.len(), 3);
        assert!(a.is_prefix_of(&l) && b.is_prefix_of(&l));
    }

    #[test]
    fn lub_detects_status_conflicts() {
        let a = cs(vec![acc(comm(1))]);
        let b = cs(vec![rej(comm(1))]);
        assert!(a.lub(&b).is_none(), "✓ vs ✗ on the same txn conflicts");
    }

    #[test]
    fn lub_detects_barrier_conflicts() {
        let a = cs(vec![acc(phys(1))]);
        let b = cs(vec![acc(phys(2))]);
        assert!(
            a.lub(&b).is_none(),
            "two barrier options have no common extension"
        );
    }

    #[test]
    fn lub_with_commutative_and_physical_conflicts() {
        // An accepted physical write does not commute with an accepted
        // commutative delta, so divergent first options collide.
        let a = cs(vec![acc(comm(1))]);
        let b = cs(vec![acc(phys(2))]);
        assert!(a.lub(&b).is_none());
    }

    #[test]
    fn glb_is_the_common_prefix() {
        let a = cs(vec![acc(comm(1)), acc(comm(2)), acc(comm(4))]);
        let b = cs(vec![acc(comm(2)), acc(comm(1)), acc(comm(3))]);
        let g = CStruct::glb_many(&[&a, &b]);
        assert_eq!(g.len(), 2);
        assert!(g.status_of(TxnId::new(NodeId(0), 1)).is_some());
        assert!(g.status_of(TxnId::new(NodeId(0), 2)).is_some());
        assert!(g.is_prefix_of(&a) && g.is_prefix_of(&b));
    }

    #[test]
    fn glb_stops_at_diverging_barriers() {
        let a = cs(vec![acc(phys(1)), acc(phys(3))]);
        let b = cs(vec![acc(phys(1)), acc(phys(4))]);
        let g = CStruct::glb_many(&[&a, &b]);
        assert_eq!(g.len(), 1, "only the shared barrier prefix survives");
        assert!(g.is_prefix_of(&a) && g.is_prefix_of(&b));
    }

    #[test]
    fn glb_excludes_status_disagreement() {
        let a = cs(vec![acc(comm(1)), acc(comm(2))]);
        let b = cs(vec![rej(comm(1)), acc(comm(2))]);
        let g = CStruct::glb_many(&[&a, &b]);
        // txn 1 disagrees; txn 2 is extractable in both (neutral/commuting
        // prefixes), so only txn 2 survives.
        assert_eq!(g.len(), 1);
        assert_eq!(
            g.status_of(TxnId::new(NodeId(0), 2)),
            Some(OptionStatus::Accepted)
        );
    }

    #[test]
    fn glb_of_identical_is_identity() {
        let a = cs(vec![acc(phys(1)), rej(phys(2))]);
        let g = CStruct::glb_many(&[&a, &a, &a]);
        assert_eq!(g, a);
    }

    #[test]
    fn paper_collision_example() {
        // §3.3.1's recovery example, restated with options: acceptors 2, 3
        // and 5 report ballot-4 cstructs; only v1→v2 (our txn 12) appears
        // in a potential fast-quorum intersection.
        let v12 = phys(12); // v1 → v2
        let v13 = phys(13); // v1 → v3
        let a2 = cs(vec![acc(v12.clone()), rej(v13.clone())]);
        let a3 = cs(vec![acc(v13.clone()), rej(v12.clone())]);
        let a5 = cs(vec![acc(v12.clone()), rej(v13.clone())]);
        // Intersection {2,5} agrees on v12 accepted.
        let g25 = CStruct::glb_many(&[&a2, &a5]);
        assert_eq!(
            g25.status_of(v12.txn),
            Some(OptionStatus::Accepted),
            "the option common to the quorum intersection must be proposed next"
        );
        // Intersections containing acceptor 3 agree on nothing.
        let g23 = CStruct::glb_many(&[&a2, &a3]);
        assert_eq!(g23.status_of(v12.txn), None);
        assert_eq!(g23.status_of(v13.txn), None);
    }
}

//! [`Wire`] encodings for the Paxos vocabulary.
//!
//! These impls complete the shared wire layer of [`mdcc_common::wire`]
//! for the types this crate owns: ballots, options, cstructs and every
//! Phase1/Phase2 payload. `mdcc-recovery` writes them to disk and
//! `mdcc-core` puts them on the simulated network, so one encoding
//! defines both the durable format and the message's cost in wire bytes.

use std::sync::Arc;

use mdcc_common::error::AbortReason;
use mdcc_common::wire::{err, Dec, Enc, Wire, WireResult};
use mdcc_common::{Key, TxnId, UpdateOp, Version};

use crate::acceptor::{AcceptorState, Phase1b, Phase2a, Phase2b, RecordSnapshot, Resolution};
use crate::ballot::{Ballot, BallotKind};
use crate::cstruct::{CStruct, Entry};
use crate::options::{OptionStatus, TxnOption, TxnOutcome};
use crate::shadow::DeltaVote;

impl CStruct {
    /// FNV-1a digest of the cstruct's canonical wire encoding — the
    /// order-sensitive fingerprint delta votes carry so receivers can
    /// prove their folded shadow view equals the acceptor's exact
    /// structure. Computed through the codec's thread-local scratch
    /// buffer: digesting is per-vote work, so it must not allocate.
    pub fn digest(&self) -> u64 {
        mdcc_common::wire::digest64(self)
    }
}

impl Wire for Ballot {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.round);
        out.u8(match self.kind {
            BallotKind::Fast => 0,
            BallotKind::Classic => 1,
        });
        self.proposer.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let round = inp.u32()?;
        let kind = match inp.u8()? {
            0 => BallotKind::Fast,
            1 => BallotKind::Classic,
            _ => return err("ballot kind"),
        };
        Ok(Ballot {
            round,
            kind,
            proposer: mdcc_common::NodeId::decode(inp)?,
        })
    }
}

impl Wire for OptionStatus {
    fn encode(&self, out: &mut Enc) {
        match self {
            OptionStatus::Accepted => out.u8(0),
            OptionStatus::Rejected(reason) => {
                out.u8(1);
                reason.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(OptionStatus::Accepted),
            1 => Ok(OptionStatus::Rejected(AbortReason::decode(inp)?)),
            _ => err("option-status tag"),
        }
    }
}

impl Wire for TxnOutcome {
    fn encode(&self, out: &mut Enc) {
        out.u8(match self {
            TxnOutcome::Committed => 0,
            TxnOutcome::Aborted => 1,
        });
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(TxnOutcome::Committed),
            1 => Ok(TxnOutcome::Aborted),
            _ => err("txn-outcome tag"),
        }
    }
}

impl Wire for Resolution {
    fn encode(&self, out: &mut Enc) {
        self.outcome.encode(out);
        out.bool(self.learned_accepted);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Resolution {
            outcome: TxnOutcome::decode(inp)?,
            learned_accepted: inp.bool()?,
        })
    }
}

impl Wire for TxnOption {
    fn encode(&self, out: &mut Enc) {
        self.txn.encode(out);
        self.key.encode(out);
        self.op.encode(out);
        out.u32(self.peers.len() as u32);
        for peer in self.peers.iter() {
            peer.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let txn = TxnId::decode(inp)?;
        let key = Key::decode(inp)?;
        let op = UpdateOp::decode(inp)?;
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("peers length");
        }
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(Key::decode(inp)?);
        }
        Ok(TxnOption {
            txn,
            key,
            op,
            peers: Arc::from(peers),
        })
    }
}

impl Wire for Entry {
    fn encode(&self, out: &mut Enc) {
        self.opt.encode(out);
        self.status.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Entry {
            opt: TxnOption::decode(inp)?,
            status: OptionStatus::decode(inp)?,
        })
    }
}

impl Wire for CStruct {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        for entry in self.entries() {
            entry.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("cstruct length");
        }
        let mut c = CStruct::new();
        for _ in 0..n {
            c.append_entry(Entry::decode(inp)?);
        }
        Ok(c)
    }
}

impl Wire for RecordSnapshot {
    fn encode(&self, out: &mut Enc) {
        self.version.encode(out);
        self.value.encode(out);
        self.folded.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(RecordSnapshot {
            version: Version::decode(inp)?,
            value: Option::decode(inp)?,
            folded: Vec::decode(inp)?,
        })
    }
}

impl Wire for Phase1b {
    fn encode(&self, out: &mut Enc) {
        self.promised.encode(out);
        self.accepted.encode(out);
        self.snapshot.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Phase1b {
            promised: Ballot::decode(inp)?,
            accepted: Option::decode(inp)?,
            snapshot: RecordSnapshot::decode(inp)?,
        })
    }
}

impl Wire for Phase2b {
    fn encode(&self, out: &mut Enc) {
        self.ballot.encode(out);
        self.version.encode(out);
        self.cstruct.encode(out);
        out.u64(self.epoch);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Phase2b {
            ballot: Ballot::decode(inp)?,
            version: Version::decode(inp)?,
            cstruct: CStruct::decode(inp)?,
            epoch: inp.u64()?,
        })
    }
}

impl Wire for DeltaVote {
    fn encode(&self, out: &mut Enc) {
        self.ballot.encode(out);
        self.version.encode(out);
        out.u64(self.epoch);
        out.u64(self.from_seq);
        self.entries.encode(out);
        out.u64(self.digest);
        out.u64(self.full_len);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(DeltaVote {
            ballot: Ballot::decode(inp)?,
            version: Version::decode(inp)?,
            epoch: inp.u64()?,
            from_seq: inp.u64()?,
            entries: Vec::decode(inp)?,
            digest: inp.u64()?,
            full_len: inp.u64()?,
        })
    }
}

impl Wire for Phase2a {
    fn encode(&self, out: &mut Enc) {
        self.ballot.encode(out);
        self.version.encode(out);
        self.snapshot.encode(out);
        self.safe.encode(out);
        self.new_options.encode(out);
        out.bool(self.close_instance);
        self.reopen_fast.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Phase2a {
            ballot: Ballot::decode(inp)?,
            version: Version::decode(inp)?,
            snapshot: RecordSnapshot::decode(inp)?,
            safe: Option::decode(inp)?,
            new_options: Vec::decode(inp)?,
            close_instance: inp.bool()?,
            reopen_fast: Option::decode(inp)?,
        })
    }
}

impl Wire for AcceptorState {
    fn encode(&self, out: &mut Enc) {
        self.version.encode(out);
        self.value.encode(out);
        self.base.encode(out);
        self.promised.encode(out);
        self.accepted_ballot.encode(out);
        self.entries.encode(out);
        self.outcomes.encode(out);
        self.resolved.encode(out);
        out.bool(self.close_on_resolve);
        self.reopen_fast_after.encode(out);
        self.closed_resolved.encode(out);
        self.inherited_folded.encode(out);
        self.settle_log.encode(out);
        self.settle_seq.encode(out);
        self.cstruct_epoch.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(AcceptorState {
            version: Version::decode(inp)?,
            value: Option::decode(inp)?,
            base: Option::decode(inp)?,
            promised: Ballot::decode(inp)?,
            accepted_ballot: Option::decode(inp)?,
            entries: Vec::decode(inp)?,
            outcomes: Vec::decode(inp)?,
            resolved: Vec::decode(inp)?,
            close_on_resolve: inp.bool()?,
            reopen_fast_after: Option::decode(inp)?,
            closed_resolved: Vec::decode(inp)?,
            inherited_folded: Vec::decode(inp)?,
            settle_log: Vec::decode(inp)?,
            settle_seq: u64::decode(inp)?,
            cstruct_epoch: u64::decode(inp)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::wire::{from_bytes, to_bytes};
    use mdcc_common::{CommutativeUpdate, NodeId, PhysicalUpdate, Row, TableId};

    fn round_trip<T: Wire + std::fmt::Debug>(v: &T) -> T {
        let bytes = to_bytes(v);
        from_bytes(&bytes).expect("round trip")
    }

    #[test]
    fn options_and_ballots_round_trip() {
        let opt = TxnOption {
            txn: TxnId::new(NodeId(1), 5),
            key: Key::new(TableId(0), "a"),
            op: UpdateOp::Commutative(CommutativeUpdate::delta("stock", -3).and("sold", 3)),
            peers: Arc::from(vec![Key::new(TableId(0), "a"), Key::new(TableId(0), "b")]),
        };
        let back = round_trip(&opt);
        assert_eq!(back.txn, opt.txn);
        assert_eq!(back.op, opt.op);
        assert_eq!(&*back.peers, &*opt.peers);

        for ballot in [
            Ballot::INITIAL_FAST,
            Ballot::classic(9, NodeId(2)),
            Ballot::fast(4, NodeId(1)),
        ] {
            assert_eq!(round_trip(&ballot), ballot);
        }
        for status in [
            OptionStatus::Accepted,
            OptionStatus::Rejected(AbortReason::DemarcationLimit),
        ] {
            assert_eq!(round_trip(&status), status);
        }
    }

    #[test]
    fn phase_payloads_round_trip() {
        let mut safe = CStruct::new();
        safe.append(
            TxnOption::solo(
                TxnId::new(NodeId(0), 1),
                Key::new(TableId(0), "x"),
                UpdateOp::ReadGuard(Version(2)),
            ),
            OptionStatus::Accepted,
        );
        let p2a = Phase2a {
            ballot: Ballot::classic(2, NodeId(3)),
            version: Version(5),
            snapshot: RecordSnapshot {
                version: Version(5),
                value: Some(Row::new().with("stock", 1)),
                folded: vec![TxnId::new(NodeId(4), 2)],
            },
            safe: Some(safe.clone()),
            new_options: vec![TxnOption::solo(
                TxnId::new(NodeId(9), 7),
                Key::new(TableId(0), "x"),
                UpdateOp::Physical(PhysicalUpdate::delete(Version(5))),
            )],
            close_instance: true,
            reopen_fast: Some(Ballot::fast(3, NodeId(3))),
        };
        let back = round_trip(&p2a);
        assert_eq!(back.ballot, p2a.ballot);
        assert_eq!(back.version, p2a.version);
        assert_eq!(back.snapshot, p2a.snapshot);
        assert_eq!(back.safe.as_ref().map(|c| c.len()), Some(1));
        assert_eq!(back.new_options, p2a.new_options);
        assert!(back.close_instance);
        assert_eq!(back.reopen_fast, p2a.reopen_fast);

        let p1b = Phase1b {
            promised: Ballot::classic(2, NodeId(3)),
            accepted: Some((Ballot::fast(1, NodeId(0)), safe.clone())),
            snapshot: RecordSnapshot::absent(),
        };
        let back = round_trip(&p1b);
        assert_eq!(back.promised, p1b.promised);
        assert_eq!(back.accepted.as_ref().map(|(b, c)| (*b, c.len())), {
            p1b.accepted.as_ref().map(|(b, c)| (*b, c.len()))
        });

        let p2b = Phase2b {
            ballot: Ballot::fast(1, NodeId(0)),
            version: Version(9),
            cstruct: safe.clone(),
            epoch: 3,
        };
        let back = round_trip(&p2b);
        assert_eq!(back.ballot, p2b.ballot);
        assert_eq!(back.version, p2b.version);
        assert_eq!(back.cstruct.len(), p2b.cstruct.len());
        assert_eq!(back.epoch, 3);

        let dv = crate::shadow::DeltaVote {
            ballot: Ballot::fast(1, NodeId(0)),
            version: Version(9),
            epoch: 3,
            from_seq: 2,
            entries: safe.entries().cloned().collect(),
            digest: safe.digest(),
            full_len: 3,
        };
        let back = round_trip(&dv);
        assert_eq!(back.ballot, dv.ballot);
        assert_eq!(back.from_seq, 2);
        assert_eq!(back.entries.len(), dv.entries.len());
        assert_eq!(back.digest, dv.digest);
        assert_eq!(back.full_len, 3);
    }
}

//! Per-record acceptor state (Algorithm 3 of the paper).
//!
//! Every record runs its own sequence of Paxos instances, one per record
//! *version*; instance `i+1` starts only when instance `i` is decided and
//! resolved. Within the current instance the acceptor holds the classic
//! Paxos triple — promised ballot `mbal`, accepted ballot `bal`, accepted
//! cstruct `val` — plus MDCC's additions: option validation (the "active
//! decision" of §3.2.1), escrow/demarcation bookkeeping for commutative
//! updates, and visibility application.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use mdcc_common::error::AbortReason;
use mdcc_common::{Row, TxnId, UpdateOp, Version};

use crate::ballot::Ballot;
use crate::cstruct::CStruct;
use crate::demarcation::{escrow_accepts, AttrConstraint, EscrowView};
use crate::options::{OptionStatus, TxnOption, TxnOutcome};

/// Committed record state, shipped in Phase1b/Phase2a for catch-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSnapshot {
    /// Number of decided instances.
    pub version: Version,
    /// Committed, visible value (`None`: absent or deleted).
    pub value: Option<Row>,
    /// Transactions whose effects are folded into `value` (executed
    /// locally or inherited through an earlier snapshot adoption),
    /// sorted. A node adopting this snapshot must mark these settled or
    /// a later re-delivery of one of their options (carried entries,
    /// restart anti-entropy) would double-execute it.
    pub folded: Vec<TxnId>,
}

impl RecordSnapshot {
    /// A snapshot of a record that does not exist yet.
    pub fn absent() -> Self {
        RecordSnapshot {
            version: Version::ZERO,
            value: None,
            folded: Vec::new(),
        }
    }
}

/// Phase1b response payload.
#[derive(Debug, Clone)]
pub struct Phase1b {
    /// The acceptor's promise after processing the Phase1a — equals the
    /// leader's ballot iff the promise was granted.
    pub promised: Ballot,
    /// Ballot and cstruct last accepted in the current instance, if any.
    pub accepted: Option<(Ballot, CStruct)>,
    /// Committed state for leader catch-up.
    pub snapshot: RecordSnapshot,
}

/// Phase2b vote payload.
#[derive(Debug, Clone)]
pub struct Phase2b {
    /// Ballot the vote belongs to.
    pub ballot: Ballot,
    /// Instance (record version) the vote belongs to.
    pub version: Version,
    /// The acceptor's full cstruct `val_a` — learners compute quorum
    /// glbs over these.
    pub cstruct: CStruct,
    /// The acceptor's cstruct epoch: bumped on every wholesale cstruct
    /// replacement or entry removal (instance advance, snapshot/safe
    /// adoption, abort/guard resolution), so that within one epoch the
    /// cstruct is strictly append-only and delta senders can reference
    /// positions in it. Restored by WAL replay — a regressed epoch
    /// after a restart would make receivers discard the node's votes
    /// as stale.
    pub epoch: u64,
}

/// Result of a direct (fast-ballot) proposal, Algorithm 3 line 78.
#[derive(Debug, Clone)]
pub enum FastPropose {
    /// The option was appended (or was already present); here is the vote.
    Vote(Phase2b),
    /// The record is in a classic ballot; the proposer must go through
    /// the master.
    NotFast {
        /// Current promised ballot (its proposer is the master to ask).
        promised: Ballot,
    },
    /// The instance has absorbed its maximum number of options; the
    /// proposer should ask the master to close and re-base it.
    InstanceFull,
    /// The proposing transaction was already resolved on this node — the
    /// proposal is a stale retry and must not re-enter an instance.
    AlreadyResolved(TxnOutcome),
}

/// Result of a classic Phase2a.
#[derive(Debug, Clone)]
pub enum ClassicAccept {
    /// Accepted; here is the vote.
    Vote(Phase2b),
    /// The ballot was too old.
    Nack {
        /// The acceptor's current promise.
        promised: Ballot,
    },
    /// The leader's snapshot is older than this acceptor's committed
    /// state; it must catch up and retry.
    Stale {
        /// The acceptor's newer committed state.
        snapshot: RecordSnapshot,
    },
}

/// Classic Phase2a payload (leader → acceptors).
#[derive(Debug, Clone)]
pub struct Phase2a {
    /// Classic ballot (must have been established by Phase1).
    pub ballot: Ballot,
    /// Instance this proposal targets.
    pub version: Version,
    /// The leader's committed state; acceptors behind it catch up.
    pub snapshot: RecordSnapshot,
    /// Proved-safe cstruct whose statuses are already decided. `Some`
    /// only on recovery rounds (the acceptor adopts it wholesale);
    /// `None` for pipelined appends, which leave the existing cstruct in
    /// place.
    pub safe: Option<CStruct>,
    /// Fresh options for the acceptor to validate and append.
    pub new_options: Vec<TxnOption>,
    /// Close the instance once every accepted option resolves, then
    /// re-base (new base value and demarcation limits, §3.4.2).
    pub close_instance: bool,
    /// After the instance advances, reopen fast mode at this ballot
    /// (γ policy, §3.3.2).
    pub reopen_fast: Option<Ballot>,
}

/// Per-record acceptor.
#[derive(Debug, Clone)]
pub struct AcceptorRecord {
    n: usize,
    qf: usize,
    max_instance_options: usize,
    constraints: Arc<[AttrConstraint]>,
    version: Version,
    value: Option<Row>,
    /// Value when the current instance opened — the demarcation base `X`.
    base: Option<Row>,
    promised: Ballot,
    accepted_ballot: Option<Ballot>,
    cstruct: CStruct,
    /// Transaction resolutions this node has heard (Visibility messages);
    /// kept across instances so duplicate or early messages are harmless.
    outcomes: HashMap<TxnId, Resolution>,
    /// Transactions whose entry-level resolution already executed here
    /// (idempotence under re-delivery and stale retries).
    resolved_entries: HashSet<TxnId>,
    close_on_resolve: bool,
    reopen_fast_after: Option<Ballot>,
    /// Bounded ring of committed commutative options from recently
    /// *closed* instances. Restart anti-entropy needs these: an option
    /// that commits while a replica is down and whose instance then
    /// closes leaves every live cstruct — this ring is the only place
    /// its payload survives for shipping to the recovering replica
    /// (deltas commute, so installing one after the close is still
    /// value-correct).
    closed_resolved: Vec<(TxnOption, Resolution)>,
    /// Bounded ring of transactions marked settled through a snapshot
    /// adoption *without* executing locally (their effect arrived inside
    /// the adopted value). These must keep riding in outgoing snapshots'
    /// `folded` lists: they are the settled transactions a further
    /// adopter cannot discover from this node's cstruct or ring.
    inherited_folded: Vec<TxnId>,
    /// Settled transactions in settle order, oldest first — the
    /// truncation queue for `outcomes`/`resolved_entries`. See
    /// [`AcceptorRecord::truncate_settled`].
    settle_log: VecDeque<TxnId>,
    /// Monotone count of settlements ever recorded on this record; the
    /// truncation watermark is `settle_seq - settle_log.len()` (every
    /// settlement below it has had its metadata dropped).
    settle_seq: u64,
    /// Cstruct epoch: bumped on every mutation that is not a plain
    /// append (instance advance, snapshot/safe adoption, entry removal).
    /// Within one epoch the cstruct is strictly append-only, which is
    /// what lets delta votes ship a positioned entry suffix instead of
    /// the whole structure. Mutated only inside the input-processing
    /// entry points, so WAL replay restores it deterministically.
    cstruct_epoch: u64,
}

/// Entries kept in [`AcceptorRecord`]'s closed-instance ring.
const CLOSED_RESOLVED_CAP: usize = 64;

/// Entries kept in [`AcceptorRecord`]'s inherited-folded ring. Larger
/// than any peer's shippable window (`CLOSED_RESOLVED_CAP` + one
/// instance), so a transaction can only age out of it after it has aged
/// out of every ring that could re-ship its option.
const INHERITED_FOLDED_CAP: usize = 256;

/// Settlements retained in [`AcceptorRecord`]'s truncation queue before
/// the oldest transaction's resolution metadata is dropped. The window
/// only needs to outlive in-flight duplicates of the transaction's
/// messages (stale retried proposals, duplicate Visibilities): message
/// lifetimes are sub-second while this many settlements on one record
/// take orders of magnitude longer — the same synchrony assumption the
/// paper's timeout-based recovery makes (§3.2.3).
const RESOLVED_RETENTION: usize = 512;

/// The full volatile state of one [`AcceptorRecord`], exported for
/// durable checkpoints and re-imported on node restart (§3.2.3: a
/// storage node must be able to reconstruct its per-record Paxos state).
///
/// Collections are exported in a deterministic (sorted) order so two
/// equal acceptors always serialize identically.
#[derive(Debug, Clone)]
pub struct AcceptorState {
    /// Committed version.
    pub version: Version,
    /// Committed value.
    pub value: Option<Row>,
    /// Demarcation base of the current instance.
    pub base: Option<Row>,
    /// Promised ballot.
    pub promised: Ballot,
    /// Last accepted ballot of the current instance.
    pub accepted_ballot: Option<Ballot>,
    /// Current-instance cstruct entries, in recorded order.
    pub entries: Vec<crate::cstruct::Entry>,
    /// Known transaction resolutions, sorted by transaction id.
    pub outcomes: Vec<(TxnId, Resolution)>,
    /// Transactions whose entry-level resolution already executed,
    /// sorted by transaction id.
    pub resolved: Vec<TxnId>,
    /// Whether the instance closes once all pending options resolve.
    pub close_on_resolve: bool,
    /// Ballot to reopen fast mode at after the instance advances.
    pub reopen_fast_after: Option<Ballot>,
    /// Retained committed commutative options of recently closed
    /// instances (restart anti-entropy), oldest first.
    pub closed_resolved: Vec<(TxnOption, Resolution)>,
    /// Transactions settled via snapshot adoption without local
    /// execution (see `AcceptorRecord::inherited_folded`), oldest first.
    pub inherited_folded: Vec<TxnId>,
    /// Settled transactions still inside the truncation window, oldest
    /// first (see `AcceptorRecord::settle_log`).
    pub settle_log: Vec<TxnId>,
    /// Total settlements ever recorded on this record.
    pub settle_seq: u64,
    /// Cstruct epoch (see `AcceptorRecord::cstruct_epoch`).
    pub cstruct_epoch: u64,
}

/// A transaction outcome together with the *globally learned* status of
/// this record's option — the coordinator knows both; the local vote may
/// have been in the minority and must not drive instance accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Commit or abort of the whole transaction.
    pub outcome: TxnOutcome,
    /// Whether this record's option was learned as accepted. Always true
    /// for commits; for aborts it decides whether the instance's version
    /// is consumed (§3.2.1: learning generates a new version id whether
    /// the learned option commits or aborts).
    pub learned_accepted: bool,
}

impl AcceptorRecord {
    /// A fresh, non-existent record in the implicit initial fast ballot.
    pub fn new(
        constraints: Arc<[AttrConstraint]>,
        n: usize,
        qf: usize,
        max_instance_options: usize,
    ) -> Self {
        Self {
            n,
            qf,
            max_instance_options,
            constraints,
            version: Version::ZERO,
            value: None,
            base: None,
            promised: Ballot::INITIAL_FAST,
            accepted_ballot: None,
            cstruct: CStruct::new(),
            outcomes: HashMap::new(),
            resolved_entries: HashSet::new(),
            close_on_resolve: false,
            reopen_fast_after: None,
            closed_resolved: Vec::new(),
            inherited_folded: Vec::new(),
            settle_log: VecDeque::new(),
            settle_seq: 0,
            cstruct_epoch: 0,
        }
    }

    /// Creates a record that already exists with `value` (bulk load).
    pub fn with_value(
        constraints: Arc<[AttrConstraint]>,
        n: usize,
        qf: usize,
        max_instance_options: usize,
        value: Row,
    ) -> Self {
        let mut a = Self::new(constraints, n, qf, max_instance_options);
        a.value = Some(value.clone());
        a.base = Some(value);
        a.version = Version(1);
        a
    }

    /// Committed version (decided instances).
    pub fn version(&self) -> Version {
        self.version
    }

    /// Committed, visible value.
    pub fn value(&self) -> Option<&Row> {
        self.value.as_ref()
    }

    /// Current promise.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The current instance's cstruct (tests and recovery inspection).
    pub fn cstruct(&self) -> &CStruct {
        &self.cstruct
    }

    /// Ballot of the last Phase2a accepted into the current instance, if
    /// any — a record is "in ballot `b`'s stream" exactly when this is
    /// `Some(b)` (the lease-carried-Phase1 warm guard keys off it).
    pub fn accepted_ballot(&self) -> Option<Ballot> {
        self.accepted_ballot
    }

    /// The current cstruct epoch (tests and shadow-view inspection).
    pub fn cstruct_epoch(&self) -> u64 {
        self.cstruct_epoch
    }

    /// Opens a new cstruct epoch after a non-append mutation (wholesale
    /// replacement or entry removal): delta positions from the old epoch
    /// no longer reference this cstruct, so senders restart their
    /// cursors and ship the new epoch's contents from position zero.
    fn bump_epoch(&mut self) {
        self.cstruct_epoch += 1;
    }

    /// The outcome this node has recorded for `txn`, if any (recovery
    /// queries short-circuit on it).
    pub fn outcome_of(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.outcomes.get(&txn).map(|r| r.outcome)
    }

    /// Committed state for catch-up messages.
    ///
    /// `folded` covers every settled transaction whose option could
    /// still be re-delivered to an adopter — resolved entries of the
    /// current instance, the closed-instance ring, and settled
    /// transactions this node itself inherited through adoption. The
    /// full `resolved_entries` history would also be correct but grows
    /// with transaction count; this bounded set keeps snapshot messages
    /// and WAL frames O(ring).
    pub fn snapshot(&self) -> RecordSnapshot {
        let mut folded: Vec<TxnId> = self
            .cstruct
            .entries()
            .map(|e| e.opt.txn)
            .filter(|txn| self.resolved_entries.contains(txn))
            .chain(self.closed_resolved.iter().map(|(opt, _)| opt.txn))
            .chain(self.inherited_folded.iter().copied())
            .collect();
        folded.sort();
        folded.dedup();
        RecordSnapshot {
            version: self.version,
            value: self.value.clone(),
            folded,
        }
    }

    /// Adopts a newer committed snapshot: the catch-up step shared by
    /// classic Phase2a and restart anti-entropy. Accepted-but-unresolved
    /// options carry over into the new instance — their acceptance may
    /// already be part of a learned quorum, so dropping them could lose
    /// an update — *except* those the snapshot already folds in, which
    /// re-executing would double-apply.
    fn adopt_snapshot(&mut self, snapshot: &RecordSnapshot) {
        let carried: Vec<crate::cstruct::Entry> = self
            .cstruct
            .entries()
            .filter(|e| {
                e.status.is_accepted()
                    && !self.outcomes.contains_key(&e.opt.txn)
                    && !snapshot.folded.contains(&e.opt.txn)
            })
            .cloned()
            .collect();
        // Entries already resolved here leave the cstruct on adoption,
        // but they are settled history: if they stop riding in this
        // node's outgoing `folded` lists, a peer that adopts *our*
        // snapshot can later double-execute their options when another
        // replica re-ships them (ring or current-instance payloads).
        // Keep advertising them as inherited.
        let executed: Vec<TxnId> = self
            .cstruct
            .entries()
            .filter(|e| self.resolved_entries.contains(&e.opt.txn))
            .map(|e| e.opt.txn)
            .collect();
        self.version = snapshot.version;
        self.value = snapshot.value.clone();
        self.base = self.value.clone();
        self.cstruct = CStruct::new();
        for entry in carried {
            self.cstruct.append_entry(entry);
        }
        self.accepted_ballot = None;
        self.close_on_resolve = false;
        self.bump_epoch();
        for txn in executed {
            self.note_inherited(txn);
        }
        for txn in &snapshot.folded {
            if self.resolved_entries.insert(*txn) {
                self.note_inherited(*txn);
                self.note_settled(*txn);
            }
        }
    }

    /// Records a transaction settled via adoption (effect arrived inside
    /// a snapshot value, never executed locally) so outgoing snapshots
    /// keep advertising it.
    fn note_inherited(&mut self, txn: TxnId) {
        if self.inherited_folded.contains(&txn) {
            return;
        }
        self.inherited_folded.push(txn);
        if self.inherited_folded.len() > INHERITED_FOLDED_CAP {
            let excess = self.inherited_folded.len() - INHERITED_FOLDED_CAP;
            self.inherited_folded.drain(..excess);
        }
    }

    /// Enrolls a settled transaction in the truncation queue and prunes
    /// metadata that has aged past the retention watermark.
    fn note_settled(&mut self, txn: TxnId) {
        self.settle_log.push_back(txn);
        self.settle_seq += 1;
        self.truncate_settled();
    }

    /// Watermark-based truncation of the resolution metadata (`outcomes`
    /// and `resolved_entries`), which would otherwise grow with
    /// transaction count.
    ///
    /// A settled transaction's metadata is dropped once
    /// [`RESOLVED_RETENTION`] later settlements have been recorded on
    /// this record — the proxy for "the visibility fan-out has been
    /// acknowledged everywhere" in a message schema without explicit
    /// acks — *and* the transaction has left every structure a replica
    /// could still re-ship its option from: the current cstruct, the
    /// closed-instance ring and the inherited-folded ring. Converged
    /// replicas hold identical rings (they execute the same instance
    /// closes), so aging out of the local rings implies peers can no
    /// longer re-deliver the option — which is what makes forgetting the
    /// `resolved_entries` dedup marker safe.
    fn truncate_settled(&mut self) {
        while self.settle_log.len() > RESOLVED_RETENTION {
            let txn = *self.settle_log.front().expect("len checked");
            let referenced = self.cstruct.entry_of(txn).is_some()
                || self.closed_resolved.iter().any(|(o, _)| o.txn == txn)
                || self.inherited_folded.contains(&txn);
            if referenced {
                // Still shippable from a ring: blocked until it ages out.
                break;
            }
            self.settle_log.pop_front();
            self.resolved_entries.remove(&txn);
            self.outcomes.remove(&txn);
        }
    }

    /// Entries currently held in the resolution-metadata maps (tests:
    /// bounded growth under sustained traffic).
    pub fn resolution_metadata_len(&self) -> usize {
        self.outcomes.len().max(self.resolved_entries.len())
    }

    /// Number of settlements whose metadata has been truncated — the
    /// watermark below which this record has forgotten resolutions.
    pub fn settle_watermark(&self) -> u64 {
        self.settle_seq - self.settle_log.len() as u64
    }

    /// Phase1a (Algorithm 3, line 68): promise if the ballot is new, and
    /// report the accepted state either way so the caller learns about
    /// competing masters.
    pub fn phase1a(&mut self, m: Ballot) -> Phase1b {
        if m > self.promised {
            self.promised = m;
        }
        Phase1b {
            promised: self.promised,
            accepted: self.accepted_ballot.map(|b| (b, self.cstruct.clone())),
            snapshot: self.snapshot(),
        }
    }

    /// Raises the promised ballot to `b` without producing a Phase1b —
    /// the lease-carried Phase1 (a mastership lease grant stands in for
    /// the per-record Phase1a/Phase1b exchange). Returns whether the
    /// promise rose. Unlike [`AcceptorRecord::phase1a`] this never
    /// lowers anything and sends no reply: the leaseholder's first
    /// Phase2a at the lease ballot is immediately valid here, while a
    /// deposed holder's older ballot now Nacks and fast proposals of
    /// the floored round bounce `NotFast`.
    pub fn raise_promise(&mut self, b: Ballot) -> bool {
        if b > self.promised {
            self.promised = b;
            true
        } else {
            false
        }
    }

    /// Direct fast-ballot proposal (Algorithm 3, line 78): accept the
    /// option iff the record is still in a fast ballot, validating it
    /// against local state ("the active decision", §3.2.1).
    pub fn fast_propose(&mut self, opt: TxnOption) -> FastPropose {
        if !self.promised.is_fast() {
            return FastPropose::NotFast {
                promised: self.promised,
            };
        }
        if self.cstruct.status_of(opt.txn).is_some() {
            // Duplicate delivery: re-vote idempotently.
            return FastPropose::Vote(self.phase2b());
        }
        if self.resolved_entries.contains(&opt.txn) {
            // The transaction was resolved and processed here already; a
            // retried proposal must not be decided twice. A settled
            // transaction whose outcome record is gone (snapshot-folded,
            // or truncated metadata) can only have committed — aborted
            // options never fold into values.
            let outcome = self
                .outcomes
                .get(&opt.txn)
                .map_or(TxnOutcome::Committed, |r| r.outcome);
            return FastPropose::AlreadyResolved(outcome);
        }
        if self.unresolved_len() >= self.max_instance_options {
            return FastPropose::InstanceFull;
        }
        let status = self.validate(&opt);
        let txn = opt.txn;
        self.cstruct.append(opt, status);
        self.accepted_ballot = Some(self.promised);
        // A Visibility that overtook the proposal resolves immediately.
        if self.outcomes.contains_key(&txn) {
            self.resolve_entry(txn);
            self.try_advance();
        }
        FastPropose::Vote(self.phase2b())
    }

    /// Classic Phase2a (Algorithm 3, line 72), extended with catch-up and
    /// instance-close/reopen control.
    pub fn classic_accept(&mut self, p: Phase2a) -> ClassicAccept {
        if p.ballot < self.promised {
            return ClassicAccept::Nack {
                promised: self.promised,
            };
        }
        if p.version > self.version {
            // We missed decisions; adopt the leader's committed state.
            self.adopt_snapshot(&p.snapshot);
        } else if p.version < self.version {
            return ClassicAccept::Stale {
                snapshot: self.snapshot(),
            };
        }
        self.promised = p.ballot;
        self.accepted_ballot = Some(p.ballot);
        // On recovery rounds, adopt the proved-safe cstruct wholesale;
        // pipelined appends leave the current cstruct as is. Then
        // validate fresh options in payload order. Every step is a
        // deterministic function of (payload, committed state), and the
        // leader serializes payloads, so acceptors that accept this
        // ballot's Phase2a stream hold identical cstructs — that is why
        // "all storage nodes will always make the same abort or commit
        // decision" (§3.2.1).
        if let Some(safe) = p.safe {
            self.cstruct = safe;
            self.bump_epoch();
        }
        for opt in p.new_options {
            // Skip duplicates and transactions this node already resolved
            // in an earlier instance (stale retries routed via the master).
            if self.cstruct.status_of(opt.txn).is_none() && !self.outcomes.contains_key(&opt.txn) {
                let status = self.validate(&opt);
                self.cstruct.append(opt, status);
            }
        }
        // Sticky within the instance: once a close is requested, later
        // appends must not cancel it (the demarcation re-base depends on
        // it, §3.4.2).
        self.close_on_resolve |= p.close_instance;
        if p.reopen_fast.is_some() {
            self.reopen_fast_after = p.reopen_fast;
        }
        // Resolve anything we already know the outcome of.
        let known: Vec<TxnId> = self
            .cstruct
            .entries()
            .filter(|e| self.outcomes.contains_key(&e.opt.txn))
            .map(|e| e.opt.txn)
            .collect();
        for txn in known {
            self.resolve_entry(txn);
        }
        self.try_advance();
        ClassicAccept::Vote(self.phase2b())
    }

    /// Exports the acceptor's full state for a durable checkpoint.
    pub fn export_state(&self) -> AcceptorState {
        let mut outcomes: Vec<(TxnId, Resolution)> =
            self.outcomes.iter().map(|(t, r)| (*t, *r)).collect();
        outcomes.sort_by_key(|(t, _)| *t);
        let mut resolved: Vec<TxnId> = self.resolved_entries.iter().copied().collect();
        resolved.sort();
        AcceptorState {
            version: self.version,
            value: self.value.clone(),
            base: self.base.clone(),
            promised: self.promised,
            accepted_ballot: self.accepted_ballot,
            entries: self.cstruct.entries().cloned().collect(),
            outcomes,
            resolved,
            close_on_resolve: self.close_on_resolve,
            reopen_fast_after: self.reopen_fast_after,
            closed_resolved: self.closed_resolved.clone(),
            inherited_folded: self.inherited_folded.clone(),
            settle_log: self.settle_log.iter().copied().collect(),
            settle_seq: self.settle_seq,
            cstruct_epoch: self.cstruct_epoch,
        }
    }

    /// Rebuilds an acceptor from an exported state (restart path).
    pub fn from_state(
        constraints: Arc<[AttrConstraint]>,
        n: usize,
        qf: usize,
        max_instance_options: usize,
        state: AcceptorState,
    ) -> Self {
        let mut cstruct = CStruct::new();
        for entry in state.entries {
            cstruct.append_entry(entry);
        }
        Self {
            n,
            qf,
            max_instance_options,
            constraints,
            version: state.version,
            value: state.value,
            base: state.base,
            promised: state.promised,
            accepted_ballot: state.accepted_ballot,
            cstruct,
            outcomes: state.outcomes.into_iter().collect(),
            resolved_entries: state.resolved.into_iter().collect(),
            close_on_resolve: state.close_on_resolve,
            reopen_fast_after: state.reopen_fast_after,
            closed_resolved: state.closed_resolved,
            inherited_folded: state.inherited_folded,
            settle_log: state.settle_log.into_iter().collect(),
            settle_seq: state.settle_seq,
            cstruct_epoch: state.cstruct_epoch,
        }
    }

    /// The settled outcome of `txn` if this replica already resolved
    /// *and processed* it — the answer owed to a stale retried
    /// proposal, on the classic path as much as the fast one (mirrors
    /// [`Self::fast_propose`]'s `AlreadyResolved` arm). A settled
    /// transaction whose outcome record is gone (snapshot-folded or
    /// truncated metadata) can only have committed — aborted options
    /// never fold into values.
    pub fn settled_outcome(&self, txn: TxnId) -> Option<TxnOutcome> {
        if self.resolved_entries.contains(&txn) {
            Some(
                self.outcomes
                    .get(&txn)
                    .map_or(TxnOutcome::Committed, |r| r.outcome),
            )
        } else {
            None
        }
    }

    /// Options of the current instance that are already resolved —
    /// committed commutative updates whose entries stay in the cstruct
    /// until the instance closes. A peer helping a restarted replica
    /// catch up ships exactly these (each option "includes all necessary
    /// information to reconstruct the state", §3.2.3).
    pub fn resolved_in_instance(&self) -> Vec<(TxnOption, Resolution)> {
        self.cstruct
            .entries()
            .filter_map(|e| self.outcomes.get(&e.opt.txn).map(|r| (e.opt.clone(), *r)))
            .collect()
    }

    /// Everything a recovering peer needs to catch up on this record:
    /// resolved options of the current instance plus the retained ring of
    /// committed commutative options from recently closed instances.
    pub fn sync_payload(&self) -> Vec<(TxnOption, Resolution)> {
        let mut payload = self.resolved_in_instance();
        let mut seen: HashSet<TxnId> = payload.iter().map(|(o, _)| o.txn).collect();
        for (opt, resolution) in &self.closed_resolved {
            if seen.insert(opt.txn) {
                payload.push((opt.clone(), *resolution));
            }
        }
        payload
    }

    /// Installs a learned option shipped by a peer (anti-entropy after a
    /// restart): appends the entry if this node never saw the proposal,
    /// records the authoritative resolution and executes it. Idempotent.
    /// Returns `true` when local state changed.
    pub fn install_learned(&mut self, opt: TxnOption, resolution: Resolution) -> bool {
        let txn = opt.txn;
        if self.resolved_entries.contains(&txn) {
            return false;
        }
        self.outcomes.entry(txn).or_insert(resolution);
        if self.cstruct.entry_of(txn).is_none() {
            let status = if resolution.learned_accepted {
                OptionStatus::Accepted
            } else {
                OptionStatus::Rejected(AbortReason::Resolved)
            };
            self.cstruct.append(opt, status);
            self.accepted_ballot.get_or_insert(self.promised);
        }
        self.resolve_entry(txn);
        self.try_advance();
        true
    }

    /// True when [`AcceptorRecord::sync_from_peer`] with these arguments
    /// would change local state — lets callers skip WAL-logging no-op
    /// sync traffic.
    pub fn sync_would_change(
        &self,
        snapshot: &RecordSnapshot,
        resolved: &[(TxnOption, Resolution)],
    ) -> bool {
        if snapshot.version > self.version {
            return true;
        }
        if snapshot.version < self.version {
            return false;
        }
        resolved
            .iter()
            .any(|(opt, _)| !self.resolved_entries.contains(&opt.txn))
    }

    /// Catches up from a peer's committed state after a restart.
    ///
    /// * `snapshot.version > self.version`: adopt the committed state
    ///   wholesale. Every option of an older instance is already settled
    ///   inside a snapshot at a higher version (an instance only closes
    ///   once its pending options resolve), so the current cstruct is
    ///   discarded and the shipped resolutions are recorded as
    ///   already-executed *without* re-applying them.
    /// * equal versions: install any resolved options this node missed
    ///   while it was down (their effects are *not* in the snapshot's
    ///   version accounting, so they execute here).
    /// * `snapshot.version < self.version`: the peer is the stale one.
    ///
    /// Returns `true` when local state changed.
    pub fn sync_from_peer(
        &mut self,
        snapshot: &RecordSnapshot,
        resolved: &[(TxnOption, Resolution)],
    ) -> bool {
        if snapshot.version > self.version {
            self.adopt_snapshot(snapshot);
            for (opt, resolution) in resolved {
                self.outcomes.insert(opt.txn, *resolution);
                if self.resolved_entries.insert(opt.txn) {
                    self.note_inherited(opt.txn);
                    self.note_settled(opt.txn);
                }
                if self.cstruct.remove(opt.txn).is_some() {
                    self.bump_epoch();
                }
            }
            true
        } else if snapshot.version == self.version {
            let mut changed = false;
            for (opt, resolution) in resolved {
                changed |= self.install_learned(opt.clone(), *resolution);
            }
            changed
        } else {
            false
        }
    }

    /// True when applying a *committed* visibility for `txn` would land
    /// as a bare outcome: this node never accepted the option (bounced
    /// proposal, divergent ballot mode), so it cannot execute the
    /// learned update and its value silently falls behind its peers.
    /// Callers use this to trigger a targeted anti-entropy pull — the
    /// same class of divergence repair delta votes rely on.
    pub fn would_miss_execution(&self, txn: TxnId) -> bool {
        !self.outcomes.contains_key(&txn) && self.missing_execution(txn)
    }

    /// True while `txn`'s learned update has not executed here and its
    /// option is nowhere to be found locally — the state a bare
    /// committed outcome leaves behind until a peer pull repairs it.
    pub fn missing_execution(&self, txn: TxnId) -> bool {
        !self.resolved_entries.contains(&txn) && self.cstruct.entry_of(txn).is_none()
    }

    /// Handles a Visibility/Learned message (Algorithm 3, line 100).
    /// Returns `true` if this resolution advanced the instance.
    ///
    /// `learned_accepted` is the coordinator's learned status for this
    /// record's option — the authoritative decision, which may differ
    /// from this node's minority vote.
    pub fn apply_visibility(
        &mut self,
        txn: TxnId,
        outcome: TxnOutcome,
        learned_accepted: bool,
    ) -> bool {
        if self.outcomes.contains_key(&txn) {
            // Duplicate (e.g. both the coordinator and a recovery
            // coordinator resolved the transaction).
            return false;
        }
        self.outcomes.insert(
            txn,
            Resolution {
                outcome,
                learned_accepted,
            },
        );
        let before = self.version;
        self.resolve_entry(txn);
        self.try_advance();
        if !self.resolved_entries.contains(&txn) {
            // The option never reached this node (only the fan-out did):
            // enroll the bare outcome for truncation directly, or the
            // `outcomes` map would grow with every transaction whose
            // Visibility is broadcast here.
            self.note_settled(txn);
        }
        self.version != before
    }

    /// The vote for the current state. Carries the cstruct epoch so
    /// delta senders and shadow views can position entry suffixes
    /// against it.
    pub fn phase2b(&self) -> Phase2b {
        Phase2b {
            ballot: self.accepted_ballot.unwrap_or(self.promised),
            version: self.version,
            cstruct: self.cstruct.clone(),
            epoch: self.cstruct_epoch,
        }
    }

    /// Coordinators that still have something to learn from this
    /// record's votes: owners of entries whose transaction outcome this
    /// node has not yet recorded. Coordinators of resolved entries
    /// already decided (they produced the Visibility, or the retry path
    /// answers them `AlreadyResolved`), so fanning votes to them is
    /// pure wire waste — the delta-vote fan-out targets exactly this
    /// set.
    pub fn learning_coordinators(&self) -> Vec<mdcc_common::NodeId> {
        let mut v: Vec<mdcc_common::NodeId> = self
            .cstruct
            .entries()
            .filter(|e| !self.outcomes.contains_key(&e.opt.txn))
            .map(|e| e.opt.txn.coordinator)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Options accepted but with unknown transaction outcome.
    fn pending(&self) -> impl Iterator<Item = &crate::cstruct::Entry> {
        self.cstruct
            .entries()
            .filter(|e| e.status.is_accepted() && !self.outcomes.contains_key(&e.opt.txn))
    }

    fn unresolved_len(&self) -> usize {
        self.pending().count()
    }

    /// SETCOMPATIBLE (Algorithm 3, lines 83–99): the storage node's active
    /// accept/reject decision.
    fn validate(&self, opt: &TxnOption) -> OptionStatus {
        match &opt.op {
            UpdateOp::Physical(p) => {
                // validSingle: no other pending option may exist.
                if self.pending().next().is_some() {
                    return OptionStatus::Rejected(AbortReason::PendingOption);
                }
                match p.vread {
                    None => {
                        // Insert: the record must not exist.
                        if self.value.is_some() {
                            OptionStatus::Rejected(AbortReason::AlreadyExists)
                        } else {
                            OptionStatus::Accepted
                        }
                    }
                    Some(vread) => {
                        if self.value.is_none() || vread != self.version {
                            OptionStatus::Rejected(AbortReason::StaleRead)
                        } else {
                            OptionStatus::Accepted
                        }
                    }
                }
            }
            UpdateOp::ReadGuard(vread) => {
                // §4.4 serializability: the read is valid iff the version
                // still matches and no write can sneak between the read
                // and the commit (pending writes reject the guard; other
                // guards — shared locks — coexist).
                if self.value.is_none() || *vread != self.version {
                    return OptionStatus::Rejected(AbortReason::StaleRead);
                }
                if self.pending().any(|e| !e.opt.op.is_guard()) {
                    return OptionStatus::Rejected(AbortReason::PendingOption);
                }
                OptionStatus::Accepted
            }
            UpdateOp::Commutative(c) => {
                let Some(base) = &self.base else {
                    return OptionStatus::Rejected(AbortReason::ConstraintViolation);
                };
                // A pending physical replacement — or a pending read
                // guard (shared lock) — blocks deltas.
                if self.pending().any(|e| !e.opt.is_commutative()) {
                    return OptionStatus::Rejected(AbortReason::PendingOption);
                }
                for constraint in self.constraints.iter() {
                    let candidate = c.delta_for(&constraint.attr);
                    if candidate == 0 {
                        continue;
                    }
                    let view = self.escrow_view(base, &constraint.attr);
                    if let Err(reason) =
                        escrow_accepts(constraint, self.n, self.qf, view, candidate)
                    {
                        return OptionStatus::Rejected(reason);
                    }
                }
                OptionStatus::Accepted
            }
        }
    }

    /// Builds the escrow view of one attribute: base `X`, the net of
    /// deltas already committed within this instance, and the sign-split
    /// pending deltas.
    fn escrow_view(&self, base: &Row, attr: &str) -> EscrowView {
        let base_v = base.get_int(attr).unwrap_or(0);
        let current = self
            .value
            .as_ref()
            .and_then(|v| v.get_int(attr))
            .unwrap_or(0);
        let mut pending_neg = 0;
        let mut pending_pos = 0;
        for e in self.pending() {
            if let UpdateOp::Commutative(c) = &e.opt.op {
                let d = c.delta_for(attr);
                if d < 0 {
                    pending_neg += d;
                } else {
                    pending_pos += d;
                }
            }
        }
        EscrowView {
            base: base_v,
            committed: current - base_v,
            pending_neg,
            pending_pos,
        }
    }

    /// Applies the recorded resolution of `txn` to its entry in the
    /// current instance, exactly once per node.
    ///
    /// The *learned* status in the resolution — not this node's possibly
    /// minority local vote — drives the effects, so every replica makes
    /// identical instance-accounting decisions:
    ///
    /// * committed → execute the update; physical updates close the
    ///   instance (new version);
    /// * aborted but learned-accepted → the instance's version is still
    ///   consumed for physical options (§3.2.1);
    /// * aborted and learned-rejected → the entry simply leaves the
    ///   cstruct (escrow release; it was never going to execute).
    fn resolve_entry(&mut self, txn: TxnId) {
        if self.cstruct.entry_of(txn).is_none() {
            return;
        }
        if !self.resolved_entries.insert(txn) {
            return;
        }
        let entry = self.cstruct.entry_of(txn).expect("checked above");
        let op = entry.opt.op.clone();
        let resolution = self.outcomes[&txn];
        match resolution.outcome {
            TxnOutcome::Committed => {
                // Execute even if *locally* rejected: the learned global
                // decision outranks this node's minority vote, and data
                // must converge.
                match &op {
                    UpdateOp::Physical(p) => {
                        self.value = p.value.clone();
                    }
                    UpdateOp::Commutative(c) => {
                        let mut row = self.value.take().unwrap_or_default();
                        for (attr, delta) in &c.deltas {
                            row.apply_delta(attr, *delta);
                        }
                        self.value = Some(row);
                    }
                    UpdateOp::ReadGuard(_) => {
                        // Guards execute as no-ops; the lock releases.
                        if self.cstruct.remove(txn).is_some() {
                            self.bump_epoch();
                        }
                    }
                }
                if op.is_physical() {
                    self.advance_instance();
                }
            }
            TxnOutcome::Aborted => {
                if resolution.learned_accepted && op.is_physical() {
                    self.advance_instance();
                } else if self.cstruct.remove(txn).is_some() {
                    self.bump_epoch();
                }
            }
        }
        self.note_settled(txn);
    }

    fn try_advance(&mut self) {
        if self.close_on_resolve && self.pending().next().is_none() {
            self.advance_instance();
        }
    }

    /// Closes the current instance: bump the version, re-base the value
    /// (new demarcation base, §3.4.2) and open the next instance in fast
    /// or classic mode per the leader's instruction.
    fn advance_instance(&mut self) {
        // Preserve the closing instance's committed commutative options
        // for restart anti-entropy (see `closed_resolved`). Rejected and
        // physical options need no payload: aborts execute nothing and a
        // missed physical decision shows up as version lag, which
        // snapshot catch-up repairs.
        let keep: Vec<(TxnOption, Resolution)> = self
            .cstruct
            .entries()
            .filter(|e| e.opt.is_commutative())
            .filter_map(|e| {
                let r = self.outcomes.get(&e.opt.txn)?;
                (r.outcome == TxnOutcome::Committed).then(|| (e.opt.clone(), *r))
            })
            .collect();
        self.closed_resolved.extend(keep);
        if self.closed_resolved.len() > CLOSED_RESOLVED_CAP {
            let excess = self.closed_resolved.len() - CLOSED_RESOLVED_CAP;
            self.closed_resolved.drain(..excess);
        }
        self.version = self.version.next();
        self.base = self.value.clone();
        self.cstruct = CStruct::new();
        self.bump_epoch();
        self.accepted_ballot = None;
        self.close_on_resolve = false;
        if let Some(fast) = self.reopen_fast_after.take() {
            if fast > self.promised {
                self.promised = fast;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, Key, NodeId, PhysicalUpdate, TableId};

    fn key() -> Key {
        Key::new(TableId(0), "item1")
    }

    fn stock_constraints() -> Arc<[AttrConstraint]> {
        Arc::from(vec![AttrConstraint::at_least("stock", 0)])
    }

    fn acceptor_with_stock(stock: i64) -> AcceptorRecord {
        AcceptorRecord::with_value(
            stock_constraints(),
            5,
            4,
            32,
            Row::new().with("stock", stock),
        )
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(9), seq)
    }

    fn dec(seq: u64, amount: i64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -amount)),
        )
    }

    fn phys_write(seq: u64, vread: u64, stock: i64) -> TxnOption {
        TxnOption::solo(
            txn(seq),
            key(),
            UpdateOp::Physical(PhysicalUpdate::write(
                Version(vread),
                Row::new().with("stock", stock),
            )),
        )
    }

    fn status_of(v: &FastPropose, t: TxnId) -> OptionStatus {
        match v {
            FastPropose::Vote(p) => p.cstruct.status_of(t).expect("present"),
            other => panic!("expected vote, got {other:?}"),
        }
    }

    #[test]
    fn fresh_record_accepts_insert_and_rejects_duplicate() {
        let mut a = AcceptorRecord::new(stock_constraints(), 5, 4, 32);
        let ins = TxnOption::solo(
            txn(1),
            key(),
            UpdateOp::Physical(PhysicalUpdate::insert(Row::new().with("stock", 5))),
        );
        let v = a.fast_propose(ins.clone());
        assert!(status_of(&v, txn(1)).is_accepted());
        // Commit it: the record now exists at version 1.
        assert!(a.apply_visibility(txn(1), TxnOutcome::Committed, true));
        assert_eq!(a.version(), Version(1));
        assert_eq!(a.value().unwrap().get_int("stock"), Some(5));
        // A second insert must be rejected.
        let ins2 = TxnOption::solo(
            txn(2),
            key(),
            UpdateOp::Physical(PhysicalUpdate::insert(Row::new())),
        );
        let v2 = a.fast_propose(ins2);
        assert_eq!(
            status_of(&v2, txn(2)),
            OptionStatus::Rejected(AbortReason::AlreadyExists)
        );
    }

    #[test]
    fn physical_update_checks_vread() {
        let mut a = acceptor_with_stock(5);
        assert_eq!(a.version(), Version(1));
        let stale = phys_write(1, 0, 9);
        assert_eq!(
            status_of(&a.fast_propose(stale), txn(1)),
            OptionStatus::Rejected(AbortReason::StaleRead)
        );
        let fresh = phys_write(2, 1, 9);
        assert!(status_of(&a.fast_propose(fresh), txn(2)).is_accepted());
        a.apply_visibility(txn(2), TxnOutcome::Committed, true);
        assert_eq!(a.value().unwrap().get_int("stock"), Some(9));
        assert_eq!(a.version(), Version(2));
    }

    #[test]
    fn pending_physical_option_blocks_the_next_writer() {
        // The deadlock-avoidance rule (§3.2.2): reject instead of wait.
        let mut a = acceptor_with_stock(5);
        assert!(status_of(&a.fast_propose(phys_write(1, 1, 6)), txn(1)).is_accepted());
        assert_eq!(
            status_of(&a.fast_propose(phys_write(2, 1, 7)), txn(2)),
            OptionStatus::Rejected(AbortReason::PendingOption)
        );
    }

    #[test]
    fn aborted_physical_option_still_consumes_the_version() {
        let mut a = acceptor_with_stock(5);
        a.fast_propose(phys_write(1, 1, 6));
        assert!(a.apply_visibility(txn(1), TxnOutcome::Aborted, true));
        assert_eq!(a.version(), Version(2), "version consumed by the abort");
        assert_eq!(
            a.value().unwrap().get_int("stock"),
            Some(5),
            "value untouched"
        );
        // A transaction that re-reads (version 2) succeeds now.
        let v = a.fast_propose(phys_write(2, 2, 7));
        assert!(status_of(&v, txn(2)).is_accepted());
    }

    #[test]
    fn commutative_options_coexist() {
        let mut a = acceptor_with_stock(10);
        assert!(status_of(&a.fast_propose(dec(1, 2)), txn(1)).is_accepted());
        assert!(status_of(&a.fast_propose(dec(2, 3)), txn(2)).is_accepted());
        // Both commit; the deltas fold into the value, version unchanged
        // until the instance is closed by the master.
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        a.apply_visibility(txn(2), TxnOutcome::Committed, true);
        assert_eq!(a.value().unwrap().get_int("stock"), Some(5));
        assert_eq!(a.version(), Version(1));
    }

    #[test]
    fn demarcation_limit_rejects_fourth_pending_decrement() {
        // Figure 2: X=4, five −1 options; a single node accepts three.
        let mut a = acceptor_with_stock(4);
        for i in 1..=3 {
            assert!(
                status_of(&a.fast_propose(dec(i, 1)), txn(i)).is_accepted(),
                "txn {i}"
            );
        }
        assert_eq!(
            status_of(&a.fast_propose(dec(4, 1)), txn(4)),
            OptionStatus::Rejected(AbortReason::DemarcationLimit)
        );
    }

    #[test]
    fn aborts_release_escrow() {
        let mut a = acceptor_with_stock(4);
        for i in 1..=3 {
            a.fast_propose(dec(i, 1));
        }
        a.apply_visibility(txn(2), TxnOutcome::Aborted, true);
        assert!(
            status_of(&a.fast_propose(dec(4, 1)), txn(4)).is_accepted(),
            "released escrow re-admits the fourth option"
        );
    }

    #[test]
    fn pending_commutative_blocks_physical_but_not_vice_versa_check() {
        let mut a = acceptor_with_stock(10);
        a.fast_propose(dec(1, 1));
        // Physical write while a delta is pending → rejected (validSingle).
        assert_eq!(
            status_of(&a.fast_propose(phys_write(2, 1, 99)), txn(2)),
            OptionStatus::Rejected(AbortReason::PendingOption)
        );
    }

    #[test]
    fn pending_physical_blocks_commutative() {
        let mut a = acceptor_with_stock(10);
        a.fast_propose(phys_write(1, 1, 99));
        assert_eq!(
            status_of(&a.fast_propose(dec(2, 1)), txn(2)),
            OptionStatus::Rejected(AbortReason::PendingOption)
        );
    }

    #[test]
    fn classic_ballot_bounces_fast_proposals() {
        let mut a = acceptor_with_stock(5);
        let m = Ballot::classic(1, NodeId(3));
        a.phase1a(m);
        match a.fast_propose(dec(1, 1)) {
            FastPropose::NotFast { promised } => assert_eq!(promised, m),
            other => panic!("expected NotFast, got {other:?}"),
        }
    }

    #[test]
    fn lease_floor_admits_holder_and_fences_the_deposed() {
        // Lease-carried Phase1: installing the lease ballot as the
        // promise floor replaces the per-record Phase1a/Phase1b round.
        let mut a = acceptor_with_stock(4);
        let floor = Ballot::lease(3, NodeId(2));
        assert!(a.raise_promise(floor));
        assert!(
            !a.raise_promise(Ballot::classic(2, NodeId(4))),
            "no regress"
        );
        // The holder's first Phase2a at the floor ballot is valid with
        // no prior Phase1a on this record.
        let r = a.classic_accept(Phase2a {
            ballot: floor,
            version: Version(1),
            snapshot: a.snapshot(),
            safe: None,
            new_options: vec![dec(1, 1)],
            close_instance: false,
            reopen_fast: None,
        });
        assert!(matches!(r, ClassicAccept::Vote(_)), "floor admits holder");
        // A deposed holder's lower lease ballot Nacks...
        let deposed = Ballot::lease(2, NodeId(4));
        match a.classic_accept(Phase2a {
            ballot: deposed,
            version: Version(1),
            snapshot: a.snapshot(),
            safe: None,
            new_options: vec![dec(2, 1)],
            close_instance: false,
            reopen_fast: None,
        }) {
            ClassicAccept::Nack { promised } => assert_eq!(promised, floor),
            other => panic!("expected nack, got {other:?}"),
        }
        // ...and fast proposals bounce to the master while floored.
        match a.fast_propose(dec(3, 1)) {
            FastPropose::NotFast { promised } => assert_eq!(promised, floor),
            other => panic!("expected NotFast, got {other:?}"),
        }
    }

    #[test]
    fn phase1a_promises_monotonically() {
        let mut a = acceptor_with_stock(5);
        let m1 = Ballot::classic(2, NodeId(1));
        let m2 = Ballot::classic(1, NodeId(2));
        assert_eq!(a.phase1a(m1).promised, m1);
        // A lower ballot cannot regress the promise.
        assert_eq!(a.phase1a(m2).promised, m1);
    }

    #[test]
    fn classic_accept_validates_new_options_and_closes() {
        let mut a = acceptor_with_stock(4);
        let m = Ballot::classic(1, NodeId(3));
        a.phase1a(m);
        let result = a.classic_accept(Phase2a {
            ballot: m,
            version: Version(1),
            snapshot: a.snapshot(),
            safe: None,
            new_options: vec![dec(1, 2)],
            close_instance: true,
            reopen_fast: Some(Ballot::fast(2, NodeId(3))),
        });
        let ClassicAccept::Vote(vote) = result else {
            panic!("expected vote");
        };
        assert!(vote.cstruct.status_of(txn(1)).unwrap().is_accepted());
        // Resolving the only pending option closes and re-bases the
        // instance, reopening fast mode.
        assert!(a.apply_visibility(txn(1), TxnOutcome::Committed, true));
        assert_eq!(a.version(), Version(2));
        assert_eq!(a.value().unwrap().get_int("stock"), Some(2));
        assert!(a.promised().is_fast());
        // Demarcation now works against the new base of 2.
        assert!(status_of(&a.fast_propose(dec(5, 1)), txn(5)).is_accepted());
    }

    #[test]
    fn classic_accept_nacks_old_ballots() {
        let mut a = acceptor_with_stock(5);
        let high = Ballot::classic(5, NodeId(1));
        a.phase1a(high);
        let low = Ballot::classic(1, NodeId(2));
        match a.classic_accept(Phase2a {
            ballot: low,
            version: Version(1),
            snapshot: a.snapshot(),
            safe: None,
            new_options: vec![],
            close_instance: false,
            reopen_fast: None,
        }) {
            ClassicAccept::Nack { promised } => assert_eq!(promised, high),
            other => panic!("expected nack, got {other:?}"),
        }
    }

    #[test]
    fn catch_up_adopts_leader_snapshot() {
        let mut behind = acceptor_with_stock(5);
        let m = Ballot::classic(1, NodeId(3));
        behind.phase1a(m);
        let newer = RecordSnapshot {
            version: Version(4),
            value: Some(Row::new().with("stock", 1)),
            folded: Vec::new(),
        };
        let r = behind.classic_accept(Phase2a {
            ballot: m,
            version: Version(4),
            snapshot: newer.clone(),
            safe: None,
            new_options: vec![],
            close_instance: false,
            reopen_fast: None,
        });
        assert!(matches!(r, ClassicAccept::Vote(_)));
        assert_eq!(behind.version(), Version(4));
        assert_eq!(behind.value().unwrap().get_int("stock"), Some(1));
    }

    #[test]
    fn stale_leader_is_told_to_catch_up() {
        let mut ahead = acceptor_with_stock(5);
        // Advance to version 2 locally.
        ahead.fast_propose(phys_write(1, 1, 6));
        ahead.apply_visibility(txn(1), TxnOutcome::Committed, true);
        assert_eq!(ahead.version(), Version(2));
        let m = Ballot::classic(1, NodeId(3));
        ahead.phase1a(m);
        match ahead.classic_accept(Phase2a {
            ballot: m,
            version: Version(1),
            snapshot: RecordSnapshot {
                version: Version(1),
                value: None,
                folded: Vec::new(),
            },
            safe: None,
            new_options: vec![],
            close_instance: false,
            reopen_fast: None,
        }) {
            ClassicAccept::Stale { snapshot } => assert_eq!(snapshot.version, Version(2)),
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn visibility_before_proposal_resolves_on_arrival() {
        let mut a = acceptor_with_stock(10);
        // The Visibility overtakes the Propose in the network.
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        a.fast_propose(dec(1, 4));
        assert_eq!(a.value().unwrap().get_int("stock"), Some(6));
    }

    #[test]
    fn duplicate_visibilities_apply_once() {
        let mut a = acceptor_with_stock(10);
        a.fast_propose(dec(1, 4));
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        assert_eq!(a.value().unwrap().get_int("stock"), Some(6));
    }

    #[test]
    fn instance_full_reports_to_proposer() {
        let mut a = acceptor_with_stock(1_000_000);
        let cap = 4;
        let mut small = AcceptorRecord::with_value(
            stock_constraints(),
            5,
            4,
            cap,
            Row::new().with("stock", 1_000_000),
        );
        for i in 0..cap as u64 {
            assert!(matches!(
                small.fast_propose(dec(i + 1, 1)),
                FastPropose::Vote(_)
            ));
        }
        assert!(matches!(
            small.fast_propose(dec(99, 1)),
            FastPropose::InstanceFull
        ));
        // The default cap (32) is far from full here.
        assert!(matches!(a.fast_propose(dec(1, 1)), FastPropose::Vote(_)));
    }

    #[test]
    fn state_round_trip_preserves_behaviour() {
        let mut a = acceptor_with_stock(10);
        a.fast_propose(dec(1, 2));
        a.fast_propose(dec(2, 3));
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        a.phase1a(Ballot::classic(1, NodeId(2)));

        let state = a.export_state();
        let mut b = AcceptorRecord::from_state(stock_constraints(), 5, 4, 32, state);
        assert_eq!(b.version(), a.version());
        assert_eq!(b.value(), a.value());
        assert_eq!(b.promised(), a.promised());
        assert_eq!(b.cstruct().len(), a.cstruct().len());
        // The clone continues exactly where the original stops.
        a.apply_visibility(txn(2), TxnOutcome::Committed, true);
        b.apply_visibility(txn(2), TxnOutcome::Committed, true);
        assert_eq!(b.value(), a.value());
        assert_eq!(
            format!("{:?}", b.export_state()),
            format!("{:?}", a.export_state()),
            "exported states stay identical after further operations"
        );
    }

    #[test]
    fn install_learned_executes_missed_commits_once() {
        // A replica that was down during the proposal gets the learned
        // option shipped by a peer: the delta applies exactly once.
        let mut a = acceptor_with_stock(10);
        let res = Resolution {
            outcome: TxnOutcome::Committed,
            learned_accepted: true,
        };
        assert!(a.install_learned(dec(1, 4), res));
        assert_eq!(a.value().unwrap().get_int("stock"), Some(6));
        assert!(!a.install_learned(dec(1, 4), res), "idempotent");
        assert_eq!(a.value().unwrap().get_int("stock"), Some(6));
        // A late Visibility for the same transaction is also a no-op.
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        assert_eq!(a.value().unwrap().get_int("stock"), Some(6));
    }

    #[test]
    fn sync_adopts_newer_snapshots_without_reexecuting() {
        let mut behind = acceptor_with_stock(10);
        // Peer is two instances ahead; its resolved list describes options
        // whose effects are already inside the snapshot value.
        let newer = RecordSnapshot {
            version: Version(3),
            value: Some(Row::new().with("stock", 4)),
            folded: Vec::new(),
        };
        let resolved = vec![(
            dec(7, 2),
            Resolution {
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
        )];
        assert!(behind.sync_from_peer(&newer, &resolved));
        assert_eq!(behind.version(), Version(3));
        assert_eq!(behind.value().unwrap().get_int("stock"), Some(4));
        // The shipped resolution was recorded, not re-executed.
        assert_eq!(behind.outcome_of(txn(7)), Some(TxnOutcome::Committed));
        // A stale peer changes nothing.
        let older = RecordSnapshot {
            version: Version(1),
            value: Some(Row::new().with("stock", 99)),
            folded: Vec::new(),
        };
        assert!(!behind.sync_from_peer(&older, &[]));
        assert_eq!(behind.value().unwrap().get_int("stock"), Some(4));
    }

    #[test]
    fn sync_at_equal_version_installs_missed_deltas() {
        let mut a = acceptor_with_stock(10);
        let peer_snapshot = RecordSnapshot {
            version: Version(1),
            value: Some(Row::new().with("stock", 7)),
            folded: Vec::new(),
        };
        let resolved = vec![(
            dec(3, 3),
            Resolution {
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
        )];
        assert!(a.sync_from_peer(&peer_snapshot, &resolved));
        assert_eq!(
            a.value().unwrap().get_int("stock"),
            Some(7),
            "missed delta executed locally"
        );
        assert!(!a.sync_from_peer(&peer_snapshot, &resolved), "idempotent");
    }

    #[test]
    fn resolution_metadata_stops_growing_with_transaction_count() {
        // Sustained physical-write traffic: every commit closes its
        // instance, so nothing blocks the watermark. The metadata maps
        // must plateau instead of growing with transaction count.
        let mut a = acceptor_with_stock(1);
        const TXNS: u64 = 4_000;
        for i in 1..=TXNS {
            let v = a.version().0;
            let w = phys_write(i, v, i as i64);
            assert!(status_of(&a.fast_propose(w), txn(i)).is_accepted());
            a.apply_visibility(txn(i), TxnOutcome::Committed, true);
        }
        assert_eq!(a.version().0, 1 + TXNS, "every write closed an instance");
        assert!(
            a.resolution_metadata_len() <= 520,
            "metadata must be bounded, got {}",
            a.resolution_metadata_len()
        );
        assert!(
            a.settle_watermark() > 3_000,
            "watermark advanced, got {}",
            a.settle_watermark()
        );
    }

    #[test]
    fn outcome_only_visibilities_are_truncated_too() {
        // Visibility fan-out reaches replicas that never saw the option;
        // those bare outcomes must not accumulate forever either.
        let mut a = acceptor_with_stock(5);
        for i in 1..=2_000 {
            a.apply_visibility(txn(i), TxnOutcome::Committed, true);
        }
        assert!(
            a.resolution_metadata_len() <= 520,
            "bare outcomes bounded, got {}",
            a.resolution_metadata_len()
        );
    }

    #[test]
    fn truncation_is_blocked_while_rings_can_reship() {
        // Commutative commits whose instance never closes stay in the
        // cstruct — the watermark must not outrun them (a peer could
        // still ship their options).
        let mut a = acceptor_with_stock(10_000_000);
        for i in 1..=700 {
            a.fast_propose(dec(i, 1));
            a.apply_visibility(txn(i), TxnOutcome::Committed, true);
        }
        // All 700 are resolved entries of the still-open instance.
        assert_eq!(a.settle_watermark(), 0, "open-instance entries retained");
        for i in 1..=700 {
            assert_eq!(a.outcome_of(txn(i)), Some(TxnOutcome::Committed));
        }
    }

    #[test]
    fn truncated_metadata_round_trips_through_state_export() {
        let mut a = acceptor_with_stock(1);
        for i in 1..=1_000 {
            let v = a.version().0;
            a.fast_propose(phys_write(i, v, i as i64));
            a.apply_visibility(txn(i), TxnOutcome::Committed, true);
        }
        let b = AcceptorRecord::from_state(stock_constraints(), 5, 4, 32, a.export_state());
        assert_eq!(b.settle_watermark(), a.settle_watermark());
        assert_eq!(b.resolution_metadata_len(), a.resolution_metadata_len());
        assert_eq!(
            format!("{:?}", b.export_state()),
            format!("{:?}", a.export_state()),
            "export ∘ import is the identity under truncation"
        );
    }

    #[test]
    fn delete_then_reinsert() {
        let mut a = acceptor_with_stock(5);
        let del = TxnOption::solo(
            txn(1),
            key(),
            UpdateOp::Physical(PhysicalUpdate::delete(Version(1))),
        );
        assert!(status_of(&a.fast_propose(del), txn(1)).is_accepted());
        a.apply_visibility(txn(1), TxnOutcome::Committed, true);
        assert!(a.value().is_none(), "tombstoned");
        let ins = TxnOption::solo(
            txn(2),
            key(),
            UpdateOp::Physical(PhysicalUpdate::insert(Row::new().with("stock", 1))),
        );
        assert!(status_of(&a.fast_propose(ins), txn(2)).is_accepted());
    }
}

//! Property test of the paper's central safety claim (§3.4.2): under
//! *any* interleaving of proposals, commit/abort outcomes and message
//! orders, quorum demarcation never lets committed decrements violate the
//! `stock ≥ 0` constraint — the guarantee Figure 2 shows plain escrow
//! does not give.

use std::sync::Arc;

use mdcc_common::{CommutativeUpdate, Key, NodeId, TableId, TxnId, UpdateOp};
use mdcc_paxos::acceptor::FastPropose;
use mdcc_paxos::{AcceptorRecord, AttrConstraint, TxnOption, TxnOutcome};
use proptest::prelude::*;

const N: usize = 5;
const QF: usize = 4;

fn key() -> Key {
    Key::new(TableId(0), "hot")
}

fn constraints() -> Arc<[AttrConstraint]> {
    Arc::from(vec![AttrConstraint::at_least("stock", 0)])
}

fn acceptors(stock: i64) -> Vec<AcceptorRecord> {
    (0..N)
        .map(|_| {
            AcceptorRecord::with_value(
                constraints(),
                N,
                QF,
                64,
                mdcc_common::Row::new().with("stock", stock),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Proposals arrive at each acceptor in an adversarial order;
    /// transactions whose option gathers a fast quorum commit. The sum of
    /// committed decrements must never exceed the initial stock.
    #[test]
    fn committed_decrements_never_violate_the_constraint(
        stock in 1i64..20,
        deltas in prop::collection::vec(1i64..4, 1..12),
        perm_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        let mut nodes = acceptors(stock);
        let options: Vec<TxnOption> = deltas
            .iter()
            .enumerate()
            .map(|(i, d)| TxnOption::solo(
                TxnId::new(NodeId(9), i as u64),
                key(),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -d)),
            ))
            .collect();
        // Deliver every proposal to every acceptor in an independent
        // random order (the Figure 2 adversary).
        let mut accepted_at: Vec<Vec<bool>> = vec![vec![false; options.len()]; N];
        for (a, node) in nodes.iter_mut().enumerate() {
            let mut order: Vec<usize> = (0..options.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for idx in order {
                if let FastPropose::Vote(vote) = node.fast_propose(options[idx].clone()) {
                    accepted_at[a][idx] = vote
                        .cstruct
                        .status_of(options[idx].txn)
                        .map(|s| s.is_accepted())
                        .unwrap_or(false);
                }
            }
        }
        // A transaction commits iff a fast quorum accepted its option.
        let mut committed_total = 0i64;
        for (idx, opt) in options.iter().enumerate() {
            let votes = (0..N).filter(|a| accepted_at[*a][idx]).count();
            let outcome = if votes >= QF {
                committed_total += deltas[idx];
                TxnOutcome::Committed
            } else {
                TxnOutcome::Aborted
            };
            for (a, node) in nodes.iter_mut().enumerate() {
                node.apply_visibility(opt.txn, outcome, accepted_at[a][idx]);
            }
        }
        prop_assert!(
            committed_total <= stock,
            "committed {committed_total} from stock {stock}"
        );
        // Every replica converges to the same non-negative value.
        let finals: Vec<i64> = nodes
            .iter()
            .map(|n| n.value().unwrap().get_int("stock").unwrap())
            .collect();
        prop_assert!(finals.iter().all(|v| *v == finals[0]), "diverged: {finals:?}");
        prop_assert_eq!(finals[0], stock - committed_total);
        prop_assert!(finals[0] >= 0, "constraint violated: {finals:?}");
    }

    /// With aborts injected at random (simulating multi-record
    /// transactions failing elsewhere), escrow must release and later
    /// options must still respect the constraint.
    #[test]
    fn random_aborts_release_escrow_safely(
        stock in 1i64..20,
        script in prop::collection::vec((1i64..4, any::<bool>()), 1..16),
    ) {
        let mut nodes = acceptors(stock);
        let mut committed_total = 0i64;
        for (i, (delta, force_abort)) in script.iter().enumerate() {
            let opt = TxnOption::solo(
                TxnId::new(NodeId(9), i as u64),
                key(),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -delta)),
            );
            let mut votes = 0;
            let mut accepted_at = [false; N];
            for (a, node) in nodes.iter_mut().enumerate() {
                if let FastPropose::Vote(v) = node.fast_propose(opt.clone()) {
                    if v.cstruct.status_of(opt.txn).is_some_and(|s| s.is_accepted()) {
                        votes += 1;
                        accepted_at[a] = true;
                    }
                }
            }
            let outcome = if votes >= QF && !force_abort {
                committed_total += delta;
                TxnOutcome::Committed
            } else {
                TxnOutcome::Aborted
            };
            for (a, node) in nodes.iter_mut().enumerate() {
                node.apply_visibility(opt.txn, outcome, accepted_at[a]);
            }
        }
        prop_assert!(committed_total <= stock);
        for node in &nodes {
            prop_assert_eq!(
                node.value().unwrap().get_int("stock"),
                Some(stock - committed_total)
            );
        }
    }
}

//! Property tests for the cstruct algebra: the partial-order and lattice
//! laws Generalized Paxos relies on (§3.4.1).

use mdcc_common::error::AbortReason;
use mdcc_common::{
    CommutativeUpdate, Key, NodeId, PhysicalUpdate, Row, TableId, TxnId, UpdateOp, Version,
};
use mdcc_paxos::{Ballot, CStruct, OptionStatus, TxnOption};
use proptest::prelude::*;

fn key() -> Key {
    Key::new(TableId(0), "r")
}

/// A generated letter: transaction id, commutative?, accepted?.
#[derive(Debug, Clone, Copy)]
struct Letter {
    txn: u64,
    commutative: bool,
    accepted: bool,
}

fn letter_strategy() -> impl Strategy<Value = Letter> {
    (0u64..12, any::<bool>(), any::<bool>()).prop_map(|(txn, commutative, accepted)| Letter {
        txn,
        commutative,
        accepted,
    })
}

/// Distinct-transaction letter sequences: a transaction holds at most one
/// option per record, so generators must not emit the same txn twice
/// (shuffling duplicates would change which occurrence wins the dedupe).
fn letters_strategy(max: usize) -> impl Strategy<Value = Vec<Letter>> {
    prop::collection::vec(letter_strategy(), 0..max).prop_map(|mut v| {
        let mut seen = std::collections::HashSet::new();
        v.retain(|l| seen.insert(l.txn));
        v
    })
}

fn build(letters: &[Letter]) -> CStruct {
    let mut c = CStruct::new();
    for l in letters {
        let op = if l.commutative {
            UpdateOp::Commutative(CommutativeUpdate::delta("x", -1))
        } else {
            UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new()))
        };
        let status = if l.accepted {
            OptionStatus::Accepted
        } else {
            OptionStatus::Rejected(AbortReason::StaleRead)
        };
        // `append` dedupes by txn, mirroring acceptor behaviour.
        c.append(
            TxnOption::solo(TxnId::new(NodeId(0), l.txn), key(), op),
            status,
        );
    }
    c
}

/// Shuffles only adjacent commuting pairs — produces an equivalent trace.
fn commuting_shuffle(letters: &[Letter], swaps: &[usize]) -> Vec<Letter> {
    let mut v: Vec<Letter> = letters.to_vec();
    for &s in swaps {
        if v.len() < 2 {
            break;
        }
        let i = s % (v.len() - 1);
        let commute =
            |a: &Letter, b: &Letter| !a.accepted || !b.accepted || (a.commutative && b.commutative);
        if commute(&v[i], &v[i + 1]) {
            v.swap(i, i + 1);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prefix_is_reflexive(letters in letters_strategy(8)) {
        let c = build(&letters);
        prop_assert!(c.is_prefix_of(&c));
        prop_assert!(CStruct::new().is_prefix_of(&c));
    }

    #[test]
    fn prefixes_of_built_history_hold(letters in letters_strategy(8)) {
        // Every "append history" prefix must be ⊑ the final cstruct.
        for cut in 0..=letters.len() {
            let small = build(&letters[..cut]);
            let big = build(&letters);
            prop_assert!(
                small.is_prefix_of(&big),
                "prefix {cut} not ⊑ full ({small} vs {big})"
            );
        }
    }

    #[test]
    fn commuting_shuffles_are_equivalent(
        letters in letters_strategy(8),
        swaps in prop::collection::vec(0usize..16, 0..12),
    ) {
        let a = build(&letters);
        let b = build(&commuting_shuffle(&letters, &swaps));
        prop_assert!(a.equivalent(&b), "{a} !~ {b}");
        prop_assert!(b.equivalent(&a));
    }

    #[test]
    fn lub_is_an_upper_bound(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
    ) {
        let a = build(&xs);
        let b = build(&ys);
        if let Some(l) = a.lub(&b) {
            prop_assert!(a.is_prefix_of(&l), "a={a} not ⊑ lub={l}");
            prop_assert!(b.is_prefix_of(&l), "b={b} not ⊑ lub={l}");
        }
    }

    #[test]
    fn lub_with_self_is_identity(letters in letters_strategy(8)) {
        let a = build(&letters);
        let l = a.lub(&a).expect("self-compatible");
        prop_assert!(l.equivalent(&a));
    }

    #[test]
    fn glb_is_a_lower_bound(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
        zs in letters_strategy(6),
    ) {
        let a = build(&xs);
        let b = build(&ys);
        let c = build(&zs);
        let g = CStruct::glb_many(&[&a, &b, &c]);
        prop_assert!(g.is_prefix_of(&a), "glb={g} not ⊑ a={a}");
        prop_assert!(g.is_prefix_of(&b), "glb={g} not ⊑ b={b}");
        prop_assert!(g.is_prefix_of(&c), "glb={g} not ⊑ c={c}");
    }

    #[test]
    fn glb_of_prefix_pair_is_the_prefix(
        letters in letters_strategy(8),
        cut in 0usize..8,
    ) {
        let cut = cut.min(letters.len());
        let small = build(&letters[..cut]);
        let big = build(&letters);
        let g = CStruct::glb_many(&[&small, &big]);
        prop_assert!(g.equivalent(&small), "glb({small}, {big}) = {g}");
    }

    #[test]
    fn glb_is_idempotent(letters in letters_strategy(8)) {
        let a = build(&letters);
        let g = CStruct::glb_many(&[&a, &a]);
        prop_assert!(g.equivalent(&a));
    }

    #[test]
    fn lub_glb_absorption(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
    ) {
        // a ⊔ (a ⊓ b) ~ a, whenever the lub exists.
        let a = build(&xs);
        let b = build(&ys);
        let g = CStruct::glb_many(&[&a, &b]);
        if let Some(l) = a.lub(&g) {
            prop_assert!(l.equivalent(&a), "a={a} g={g} lub={l}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ballot_order_is_total_and_respects_kind(
        r1 in 0u32..50, r2 in 0u32..50,
        p1 in 0u32..8, p2 in 0u32..8,
        f1 in any::<bool>(), f2 in any::<bool>(),
    ) {
        let make = |r: u32, p: u32, fast: bool| if fast {
            Ballot::fast(r, NodeId(p))
        } else {
            Ballot::classic(r, NodeId(p))
        };
        let a = make(r1, p1, f1);
        let b = make(r2, p2, f2);
        // Totality + antisymmetry.
        prop_assert_eq!(a < b, b > a);
        prop_assert_eq!(a == b, (r1, p1, f1) == (r2, p2, f2));
        // Classic beats fast within a round.
        if r1 == r2 && !f1 && f2 {
            prop_assert!(a > b);
        }
        // next_classic beats everything it was derived from.
        prop_assert!(a.next_classic(NodeId(0)) > a);
        prop_assert!(a.next_fast(NodeId(0)) > a);
    }
}

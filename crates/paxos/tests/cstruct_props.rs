//! Property tests for the cstruct algebra: the partial-order and lattice
//! laws Generalized Paxos relies on (§3.4.1), plus the delta-vote
//! equivalence proofs — shadow views folded from delta votes under
//! random loss, duplication and crash/restart converge to the exact
//! byte-identical state the full-cstruct vote path produces.

use mdcc_common::error::AbortReason;
use mdcc_common::wire::to_bytes;
use mdcc_common::{
    CommutativeUpdate, Key, NodeId, PhysicalUpdate, Row, TableId, TxnId, UpdateOp, Version,
};
use mdcc_paxos::acceptor::{AcceptorRecord, FastPropose, Phase2b};
use mdcc_paxos::{
    AttrConstraint, Ballot, CStruct, DeltaCursor, FoldOutcome, Learner, OptionStatus, ShadowView,
    TxnOption, TxnOutcome,
};
use proptest::prelude::*;
use std::sync::Arc;

fn key() -> Key {
    Key::new(TableId(0), "r")
}

/// A generated letter: transaction id, commutative?, accepted?.
#[derive(Debug, Clone, Copy)]
struct Letter {
    txn: u64,
    commutative: bool,
    accepted: bool,
}

fn letter_strategy() -> impl Strategy<Value = Letter> {
    (0u64..12, any::<bool>(), any::<bool>()).prop_map(|(txn, commutative, accepted)| Letter {
        txn,
        commutative,
        accepted,
    })
}

/// Distinct-transaction letter sequences: a transaction holds at most one
/// option per record, so generators must not emit the same txn twice
/// (shuffling duplicates would change which occurrence wins the dedupe).
fn letters_strategy(max: usize) -> impl Strategy<Value = Vec<Letter>> {
    prop::collection::vec(letter_strategy(), 0..max).prop_map(|mut v| {
        let mut seen = std::collections::HashSet::new();
        v.retain(|l| seen.insert(l.txn));
        v
    })
}

fn build(letters: &[Letter]) -> CStruct {
    let mut c = CStruct::new();
    for l in letters {
        let op = if l.commutative {
            UpdateOp::Commutative(CommutativeUpdate::delta("x", -1))
        } else {
            UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new()))
        };
        let status = if l.accepted {
            OptionStatus::Accepted
        } else {
            OptionStatus::Rejected(AbortReason::StaleRead)
        };
        // `append` dedupes by txn, mirroring acceptor behaviour.
        c.append(
            TxnOption::solo(TxnId::new(NodeId(0), l.txn), key(), op),
            status,
        );
    }
    c
}

/// Shuffles only adjacent commuting pairs — produces an equivalent trace.
fn commuting_shuffle(letters: &[Letter], swaps: &[usize]) -> Vec<Letter> {
    let mut v: Vec<Letter> = letters.to_vec();
    for &s in swaps {
        if v.len() < 2 {
            break;
        }
        let i = s % (v.len() - 1);
        let commute =
            |a: &Letter, b: &Letter| !a.accepted || !b.accepted || (a.commutative && b.commutative);
        if commute(&v[i], &v[i + 1]) {
            v.swap(i, i + 1);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prefix_is_reflexive(letters in letters_strategy(8)) {
        let c = build(&letters);
        prop_assert!(c.is_prefix_of(&c));
        prop_assert!(CStruct::new().is_prefix_of(&c));
    }

    #[test]
    fn prefixes_of_built_history_hold(letters in letters_strategy(8)) {
        // Every "append history" prefix must be ⊑ the final cstruct.
        for cut in 0..=letters.len() {
            let small = build(&letters[..cut]);
            let big = build(&letters);
            prop_assert!(
                small.is_prefix_of(&big),
                "prefix {cut} not ⊑ full ({small} vs {big})"
            );
        }
    }

    #[test]
    fn commuting_shuffles_are_equivalent(
        letters in letters_strategy(8),
        swaps in prop::collection::vec(0usize..16, 0..12),
    ) {
        let a = build(&letters);
        let b = build(&commuting_shuffle(&letters, &swaps));
        prop_assert!(a.equivalent(&b), "{a} !~ {b}");
        prop_assert!(b.equivalent(&a));
    }

    #[test]
    fn lub_is_an_upper_bound(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
    ) {
        let a = build(&xs);
        let b = build(&ys);
        if let Some(l) = a.lub(&b) {
            prop_assert!(a.is_prefix_of(&l), "a={a} not ⊑ lub={l}");
            prop_assert!(b.is_prefix_of(&l), "b={b} not ⊑ lub={l}");
        }
    }

    #[test]
    fn lub_with_self_is_identity(letters in letters_strategy(8)) {
        let a = build(&letters);
        let l = a.lub(&a).expect("self-compatible");
        prop_assert!(l.equivalent(&a));
    }

    #[test]
    fn glb_is_a_lower_bound(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
        zs in letters_strategy(6),
    ) {
        let a = build(&xs);
        let b = build(&ys);
        let c = build(&zs);
        let g = CStruct::glb_many(&[&a, &b, &c]);
        prop_assert!(g.is_prefix_of(&a), "glb={g} not ⊑ a={a}");
        prop_assert!(g.is_prefix_of(&b), "glb={g} not ⊑ b={b}");
        prop_assert!(g.is_prefix_of(&c), "glb={g} not ⊑ c={c}");
    }

    #[test]
    fn glb_of_prefix_pair_is_the_prefix(
        letters in letters_strategy(8),
        cut in 0usize..8,
    ) {
        let cut = cut.min(letters.len());
        let small = build(&letters[..cut]);
        let big = build(&letters);
        let g = CStruct::glb_many(&[&small, &big]);
        prop_assert!(g.equivalent(&small), "glb({small}, {big}) = {g}");
    }

    #[test]
    fn glb_is_idempotent(letters in letters_strategy(8)) {
        let a = build(&letters);
        let g = CStruct::glb_many(&[&a, &a]);
        prop_assert!(g.equivalent(&a));
    }

    #[test]
    fn lub_glb_absorption(
        xs in letters_strategy(6),
        ys in letters_strategy(6),
    ) {
        // a ⊔ (a ⊓ b) ~ a, whenever the lub exists.
        let a = build(&xs);
        let b = build(&ys);
        let g = CStruct::glb_many(&[&a, &b]);
        if let Some(l) = a.lub(&g) {
            prop_assert!(l.equivalent(&a), "a={a} g={g} lub={l}");
        }
    }
}

// ---------------------------------------------------------------------
// Delta-vote equivalence: shadow views versus the full-cstruct path.
// ---------------------------------------------------------------------

/// One step of a random acceptor schedule.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Fast-propose a commutative decrement for transaction `seq`.
    Propose { seq: u64 },
    /// Resolve transaction `seq` (commit or abort) — aborts remove the
    /// entry, which bumps the cstruct epoch.
    Resolve { seq: u64, commit: bool },
    /// Crash the acceptor and rebuild it from its exported state — the
    /// same state a checkpoint + WAL replay reconstructs, including the
    /// delta watermark and cstruct epoch.
    Restart,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored proptest shim has no `prop_oneof!`; pick the step
    // kind from an integer weight instead (4:3:1).
    ((0u8..8), (0u64..24), any::<bool>()).prop_map(|(kind, seq, commit)| match kind {
        0..=3 => Step::Propose { seq },
        4..=6 => Step::Resolve { seq, commit },
        _ => Step::Restart,
    })
}

fn stock_constraints() -> Arc<[AttrConstraint]> {
    Arc::from(vec![AttrConstraint::at_least("stock", 0)])
}

fn hot_acceptor() -> AcceptorRecord {
    AcceptorRecord::with_value(
        stock_constraints(),
        5,
        4,
        64,
        Row::new().with("stock", 1_000_000),
    )
}

fn prop_key() -> Key {
    Key::new(TableId(0), "hot")
}

fn dec_opt(seq: u64) -> TxnOption {
    TxnOption::solo(
        TxnId::new(NodeId(7), seq),
        prop_key(),
        UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
    )
}

/// Runs `steps` against one acceptor, shipping every emitted vote the
/// way the storage node does — a per-destination [`DeltaCursor`] picks
/// full vote versus positioned delta — with per-vote loss/duplication,
/// folding into `shadow` and read-repairing on divergence. Returns the
/// repair count.
fn drive_delta_schedule(
    acc: &mut AcceptorRecord,
    shadow: &mut ShadowView,
    steps: &[Step],
    drops: &[bool],
    dups: &[bool],
) -> u32 {
    let mut repairs = 0;
    let mut cursor = DeltaCursor::new();
    let mut deliver = |cursor: &mut DeltaCursor,
                       shadow: &mut ShadowView,
                       acc: &AcceptorRecord,
                       vote: &Phase2b,
                       i: usize| {
        // The sender's cursor advances whether or not the network then
        // eats the message (exactly like the node's).
        let extracted = cursor.extract(vote);
        if drops[i % drops.len()] {
            return; // lost in transit
        }
        let times = if dups[i % dups.len()] { 2 } else { 1 };
        for _ in 0..times {
            match &extracted {
                None => shadow.observe_full(vote),
                Some(dv) => {
                    if let FoldOutcome::Diverged = shadow.fold(dv) {
                        // Read-repair round trip: pull the acceptor's
                        // current full cstruct (CstructPull/CstructFull).
                        repairs += 1;
                        shadow.reset_full(&acc.phase2b());
                    }
                }
            }
        }
    };
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Propose { seq } => {
                if let FastPropose::Vote(vote) = acc.fast_propose(dec_opt(seq)) {
                    deliver(&mut cursor, shadow, acc, &vote, i);
                }
            }
            Step::Resolve { seq, commit } => {
                let outcome = if commit {
                    TxnOutcome::Committed
                } else {
                    TxnOutcome::Aborted
                };
                acc.apply_visibility(TxnId::new(NodeId(7), seq), outcome, commit);
            }
            Step::Restart => {
                // The acceptor state (including the cstruct epoch)
                // survives via export/import; the sender's cursor is
                // volatile and starts cold, re-priming with a full vote.
                let state = acc.export_state();
                *acc = AcceptorRecord::from_state(stock_constraints(), 5, 4, 64, state);
                cursor = DeltaCursor::new();
            }
        }
    }
    repairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Under random loss, duplication and crash/restart, the folded
    /// shadow view — after at most one final read-repair — equals the
    /// acceptor's cstruct **byte for byte**, which is exactly the state
    /// the full-cstruct vote path would have delivered.
    #[test]
    fn delta_votes_reconstruct_the_acceptor_byte_for_byte(
        steps in prop::collection::vec(step_strategy(), 1..40),
        drops in prop::collection::vec(any::<bool>(), 8..9),
        dups in prop::collection::vec(any::<bool>(), 8..9),
    ) {
        let mut acc = hot_acceptor();
        let mut shadow = ShadowView::new();
        drive_delta_schedule(&mut acc, &mut shadow, &steps, &drops, &dups);
        // One final reliably-delivered vote (a re-vote of a fresh
        // proposal reaching a cold cursor ships the full structure;
        // otherwise the delta must fold or trigger exactly one repair).
        let mut cursor = DeltaCursor::new();
        let FastPropose::Vote(vote) = acc.fast_propose(dec_opt(999)) else {
            panic!("fresh proposal must vote");
        };
        match cursor.extract(&vote) {
            None => shadow.observe_full(&vote),
            Some(dv) => {
                if let FoldOutcome::Diverged = shadow.fold(&dv) {
                    shadow.reset_full(&acc.phase2b());
                }
            }
        }
        prop_assert_eq!(
            to_bytes(shadow.cstruct()),
            to_bytes(acc.cstruct()),
            "shadow diverged from the acceptor after repair"
        );
    }

    /// Learner equivalence: a learner fed shadow-reconstructed votes
    /// (deltas under loss, with read-repair) learns exactly the same
    /// statuses as a learner fed the legacy full-cstruct votes.
    #[test]
    fn delta_vote_learning_equals_full_vote_learning(
        orders in prop::collection::vec(prop::collection::vec(0usize..6, 6..7), 5..6),
        drops in prop::collection::vec(any::<bool>(), 16..17),
        target in 0u64..6,
    ) {
        const N: usize = 5;
        let mut acceptors: Vec<AcceptorRecord> = (0..N).map(|_| hot_acceptor()).collect();
        let mut shadows: Vec<ShadowView> = (0..N).map(|_| ShadowView::new()).collect();
        let mut cursors: Vec<DeltaCursor> = (0..N).map(|_| DeltaCursor::new()).collect();
        let txn = TxnId::new(NodeId(7), target);
        let mut full = Learner::new(N, 3, 4, txn);
        let mut delta = Learner::new(N, 3, 4, txn);
        let mut di = 0usize;
        for (idx, order) in orders.iter().enumerate() {
            // Each acceptor sees the six commutative proposals in its own
            // order (duplicates in the generated order are deduped by the
            // acceptor) — the Generalized-Paxos situation delta votes
            // must preserve.
            for &seq in order {
                let FastPropose::Vote(vote) = acceptors[idx].fast_propose(dec_opt(seq as u64))
                else { continue };
                // Full-cstruct path: every vote arrives.
                full.on_vote(idx, vote.clone());
                // Delta path: the cursor advances at the sender either
                // way; the message may then be lost, and divergence
                // read-repairs.
                let extracted = cursors[idx].extract(&vote);
                di += 1;
                if drops[di % drops.len()] {
                    continue;
                }
                let folded = match extracted {
                    None => {
                        shadows[idx].observe_full(&vote);
                        vote
                    }
                    Some(dv) => match shadows[idx].fold(&dv) {
                        FoldOutcome::Vote(v) => v,
                        _ => {
                            shadows[idx].reset_full(&acceptors[idx].phase2b());
                            acceptors[idx].phase2b()
                        }
                    },
                };
                delta.on_vote(idx, folded);
            }
        }
        // Drain: every acceptor's final state reaches the delta learner
        // (the repair path guarantees this is always reachable).
        for (idx, acc) in acceptors.iter().enumerate() {
            delta.on_vote(idx, acc.phase2b());
            full.on_vote(idx, acc.phase2b());
        }
        prop_assert_eq!(full.learned(), delta.learned(),
            "delta-vote learning diverged from full-cstruct learning");
        if let Some(status) = full.learned() {
            prop_assert!(matches!(status, OptionStatus::Accepted),
                "commutative decrements against ample stock must be accepted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ballot_order_is_total_and_respects_kind(
        r1 in 0u32..50, r2 in 0u32..50,
        p1 in 0u32..8, p2 in 0u32..8,
        f1 in any::<bool>(), f2 in any::<bool>(),
    ) {
        let make = |r: u32, p: u32, fast: bool| if fast {
            Ballot::fast(r, NodeId(p))
        } else {
            Ballot::classic(r, NodeId(p))
        };
        let a = make(r1, p1, f1);
        let b = make(r2, p2, f2);
        // Totality + antisymmetry.
        prop_assert_eq!(a < b, b > a);
        prop_assert_eq!(a == b, (r1, p1, f1) == (r2, p2, f2));
        // Classic beats fast within a round.
        if r1 == r2 && !f1 && f2 {
            prop_assert!(a > b);
        }
        // next_classic beats everything it was derived from.
        prop_assert!(a.next_classic(NodeId(0)) > a);
        prop_assert!(a.next_fast(NodeId(0)) > a);
    }
}

//! Wire sizes for the baseline protocols' messages.
//!
//! The baselines ride the same sized transport as MDCC: every message
//! reports its byte-accurate encoded size (computed with the shared
//! codec of [`mdcc_common::wire`]) so transmission delay, link queueing
//! and per-byte service cost apply to 2PC, quorum writes and Megastore*
//! exactly as they do to MDCC — a fair fight on the same network.

use mdcc_common::wire::{wire_len, FRAME_OVERHEAD};
use mdcc_sim::{NetMessage, TrafficClass};

use crate::megastore::MegaMsg;
use crate::qw::QwMsg;
use crate::twopc::TpcMsg;

/// Encoded size of a `TxnId` (coordinator u32 + seq u64).
const TXN_LEN: usize = 12;
/// Encoded size of a `u64` request id / log position.
const U64_LEN: usize = 8;
/// Encoded size of a `Version`.
const VERSION_LEN: usize = 8;
/// Encoded size of a bool / tag byte.
const BOOL_LEN: usize = 1;

/// Encoded size of an `Option<Row>` (tag byte + row if present).
fn opt_row_len(value: &Option<mdcc_common::Row>) -> usize {
    BOOL_LEN + value.as_ref().map_or(0, wire_len)
}

impl NetMessage for TpcMsg {
    fn wire_bytes(&self) -> usize {
        let body = match self {
            TpcMsg::Prepare { update, .. } => TXN_LEN + wire_len(update),
            TpcMsg::PrepareVote { key, .. } => TXN_LEN + wire_len(key) + BOOL_LEN,
            TpcMsg::Decide { key, .. } => TXN_LEN + wire_len(key) + BOOL_LEN,
            TpcMsg::DecideAck { key, .. } => TXN_LEN + wire_len(key),
            TpcMsg::ReadReq { key, .. } => U64_LEN + wire_len(key),
            TpcMsg::ReadResp { key, value, .. } => {
                U64_LEN + wire_len(key) + VERSION_LEN + opt_row_len(value)
            }
            TpcMsg::ClientTick => 0,
        };
        FRAME_OVERHEAD + 1 + body
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            TpcMsg::ReadReq { .. } | TpcMsg::ReadResp { .. } => TrafficClass::Read,
            _ => TrafficClass::Protocol,
        }
    }
}

impl NetMessage for QwMsg {
    fn wire_bytes(&self) -> usize {
        let body = match self {
            QwMsg::Put { update, .. } => U64_LEN + wire_len(update),
            QwMsg::PutAck { key, .. } => U64_LEN + wire_len(key),
            QwMsg::ReadReq { key, .. } => U64_LEN + wire_len(key),
            QwMsg::ReadResp { key, value, .. } => {
                U64_LEN + wire_len(key) + VERSION_LEN + opt_row_len(value)
            }
            QwMsg::ClientTick => 0,
        };
        FRAME_OVERHEAD + 1 + body
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            QwMsg::ReadReq { .. } | QwMsg::ReadResp { .. } => TrafficClass::Read,
            _ => TrafficClass::Protocol,
        }
    }
}

impl NetMessage for MegaMsg {
    fn wire_bytes(&self) -> usize {
        let body = match self {
            MegaMsg::CommitReq {
                updates,
                read_versions,
                ..
            } => {
                TXN_LEN
                    + wire_len(updates)
                    + 4
                    + read_versions
                        .iter()
                        .map(|(k, _)| wire_len(k) + VERSION_LEN)
                        .sum::<usize>()
            }
            MegaMsg::CommitResp { .. } => TXN_LEN + BOOL_LEN,
            MegaMsg::LogAccept { .. } => U64_LEN + TXN_LEN,
            MegaMsg::LogAck { .. } => U64_LEN,
            MegaMsg::Apply { updates, .. } => U64_LEN + wire_len(updates),
            MegaMsg::ReadReq { key, .. } => U64_LEN + wire_len(key),
            MegaMsg::ReadResp { key, value, .. } => {
                U64_LEN + wire_len(key) + VERSION_LEN + opt_row_len(value)
            }
            MegaMsg::ClientTick => 0,
        };
        FRAME_OVERHEAD + 1 + body
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            MegaMsg::ReadReq { .. } | MegaMsg::ReadResp { .. } => TrafficClass::Read,
            _ => TrafficClass::Protocol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, Key, NodeId, RecordUpdate, TableId, TxnId, UpdateOp};

    #[test]
    fn sizes_scale_with_payload() {
        let small = TpcMsg::Prepare {
            txn: TxnId::new(NodeId(1), 1),
            update: RecordUpdate::new(
                Key::new(TableId(0), "a"),
                UpdateOp::Commutative(CommutativeUpdate::delta("s", -1)),
            ),
        };
        let big = TpcMsg::Prepare {
            txn: TxnId::new(NodeId(1), 1),
            update: RecordUpdate::new(
                Key::new(TableId(0), "a-much-longer-primary-key-string"),
                UpdateOp::Commutative(CommutativeUpdate::delta("some_attribute", -1)),
            ),
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        assert_eq!(
            TpcMsg::ClientTick.wire_bytes(),
            FRAME_OVERHEAD + 1,
            "empty messages still pay framing"
        );
    }

    #[test]
    fn reads_are_classified_as_read_traffic() {
        let read = QwMsg::ReadReq {
            req: 1,
            key: Key::new(TableId(0), "a"),
        };
        assert_eq!(read.traffic_class(), TrafficClass::Read);
        assert_eq!(QwMsg::ClientTick.traffic_class(), TrafficClass::Protocol);
        let mega_read = MegaMsg::ReadReq {
            req: 1,
            key: Key::new(TableId(0), "a"),
        };
        assert_eq!(mega_read.traffic_class(), TrafficClass::Read);
    }
}

//! Two-phase commit over fully replicated records (§5.2).
//!
//! The paper's 2PC baseline: "a transaction manager tries to prepare all
//! involved storage nodes … 2PC requires all involved storage nodes to
//! respond and is not resilient to single node failures." Prepare takes
//! record locks (no-wait: a locked record votes no, so there are no
//! distributed deadlocks); commit/abort releases them. The coordinator
//! needs two wide-area round trips and waits for the slowest replica in
//! both.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mdcc_common::{Key, NodeId, Placement, RecordUpdate, Row, SimTime, TxnId, Version};
use mdcc_sim::{Ctx, Process};

use crate::store::BaselineStore;

/// 2PC messages.
#[derive(Debug, Clone)]
pub enum TpcMsg {
    /// Phase 1: validate and lock one record.
    Prepare {
        /// Transaction id.
        txn: TxnId,
        /// The update to prepare.
        update: RecordUpdate,
    },
    /// Phase 1 response.
    PrepareVote {
        /// Transaction id.
        txn: TxnId,
        /// Record voted on.
        key: Key,
        /// Yes/no vote.
        ok: bool,
    },
    /// Phase 2: commit (apply + unlock) or abort (unlock).
    Decide {
        /// Transaction id.
        txn: TxnId,
        /// Record the decision applies to.
        key: Key,
        /// Commit when true.
        commit: bool,
    },
    /// Phase 2 acknowledgement.
    DecideAck {
        /// Transaction id.
        txn: TxnId,
        /// Record acknowledged.
        key: Key,
    },
    /// Local committed read.
    ReadReq {
        /// Request id.
        req: u64,
        /// Key to read.
        key: Key,
    },
    /// Read response.
    ReadResp {
        /// Echoed request id.
        req: u64,
        /// Key read.
        key: Key,
        /// Version at the replica.
        version: Version,
        /// Value at the replica.
        value: Option<Row>,
    },
    /// Client pacing timer (harness use).
    ClientTick,
}

/// A 2PC storage replica with a no-wait lock table.
pub struct TpcStorage {
    store: BaselineStore,
    /// key → (owner, prepared update).
    locks: HashMap<Key, (TxnId, RecordUpdate)>,
}

impl TpcStorage {
    /// Creates a replica over `store`.
    pub fn new(store: BaselineStore) -> Self {
        Self {
            store,
            locks: HashMap::new(),
        }
    }

    /// Bulk-load access.
    pub fn store_mut(&mut self) -> &mut BaselineStore {
        &mut self.store
    }

    /// Read access (tests/metrics).
    pub fn store(&self) -> &BaselineStore {
        &self.store
    }

    /// Currently held locks (tests).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }
}

impl Process<TpcMsg> for TpcStorage {
    fn on_message(&mut self, from: NodeId, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) {
        match msg {
            TpcMsg::Prepare { txn, update } => {
                let key = update.key.clone();
                let ok = match self.locks.get(&key) {
                    Some((owner, _)) if *owner != txn => false,
                    _ => self.store.validate(&update).is_ok(),
                };
                if ok {
                    self.locks.insert(key.clone(), (txn, update));
                }
                ctx.send(from, TpcMsg::PrepareVote { txn, key, ok });
            }
            TpcMsg::Decide { txn, key, commit } => {
                if let Some((owner, update)) = self.locks.get(&key) {
                    if *owner == txn {
                        if commit {
                            let update = update.clone();
                            self.store.apply(&update);
                        }
                        self.locks.remove(&key);
                    }
                }
                ctx.send(from, TpcMsg::DecideAck { txn, key });
            }
            TpcMsg::ReadReq { req, key } => {
                let (version, value) = match self.store.read(&key) {
                    Some((v, row)) => (v, Some(row)),
                    None => (self.store.version_of(&key), None),
                };
                ctx.send(
                    from,
                    TpcMsg::ReadResp {
                        req,
                        key,
                        version,
                        value,
                    },
                );
            }
            _ => {}
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum TpcPhase {
    Preparing,
    Deciding,
}

#[derive(Debug)]
struct ActiveTpc {
    started: SimTime,
    keys: Vec<Key>,
    phase: TpcPhase,
    votes_needed: usize,
    yes_votes: usize,
    any_no: bool,
    votes_seen: usize,
    acks_needed: usize,
    acks_seen: usize,
    commit: bool,
}

/// A finished 2PC transaction.
#[derive(Debug, Clone, Copy)]
pub struct TpcDone {
    /// Transaction id.
    pub txn: TxnId,
    /// True if committed.
    pub committed: bool,
    /// When the transaction started.
    pub started: SimTime,
}

/// Client-side 2PC coordinator.
pub struct TpcCoordinator {
    placement: Arc<dyn Placement>,
    replication: usize,
    next_seq: u64,
    active: HashMap<TxnId, ActiveTpc>,
}

impl TpcCoordinator {
    /// Creates a coordinator over `placement` with `replication` replicas
    /// per record.
    pub fn new(placement: Arc<dyn Placement>, replication: usize) -> Self {
        Self {
            placement,
            replication,
            next_seq: 0,
            active: HashMap::new(),
        }
    }

    /// Starts a transaction; empty write-sets commit immediately.
    pub fn commit(
        &mut self,
        updates: Vec<RecordUpdate>,
        ctx: &mut Ctx<'_, TpcMsg>,
    ) -> (TxnId, Option<TpcDone>) {
        let txn = TxnId::new(ctx.self_id, self.next_seq);
        self.next_seq += 1;
        if updates.is_empty() {
            return (
                txn,
                Some(TpcDone {
                    txn,
                    committed: true,
                    started: ctx.now,
                }),
            );
        }
        let mut keys = Vec::new();
        let mut seen = HashSet::new();
        for u in &updates {
            if seen.insert(u.key.clone()) {
                keys.push(u.key.clone());
            }
            for replica in self.placement.replicas(&u.key) {
                ctx.send(
                    replica,
                    TpcMsg::Prepare {
                        txn,
                        update: u.clone(),
                    },
                );
            }
        }
        let total = keys.len() * self.replication;
        self.active.insert(
            txn,
            ActiveTpc {
                started: ctx.now,
                keys,
                phase: TpcPhase::Preparing,
                votes_needed: total,
                yes_votes: 0,
                any_no: false,
                votes_seen: 0,
                acks_needed: total,
                acks_seen: 0,
                commit: false,
            },
        );
        (txn, None)
    }

    /// Feeds a protocol message; returns the completion when phase 2 is
    /// fully acknowledged.
    pub fn on_message(&mut self, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) -> Option<TpcDone> {
        match msg {
            TpcMsg::PrepareVote { txn, ok, .. } => {
                let active = self.active.get_mut(&txn)?;
                if active.phase != TpcPhase::Preparing {
                    return None;
                }
                active.votes_seen += 1;
                if ok {
                    active.yes_votes += 1;
                } else {
                    active.any_no = true;
                }
                // The paper's baseline waits for *all* storage nodes.
                if active.votes_seen < active.votes_needed {
                    return None;
                }
                active.phase = TpcPhase::Deciding;
                active.commit = !active.any_no;
                let commit = active.commit;
                let keys = active.keys.clone();
                for key in keys {
                    for replica in self.placement.replicas(&key) {
                        ctx.send(
                            replica,
                            TpcMsg::Decide {
                                txn,
                                key: key.clone(),
                                commit,
                            },
                        );
                    }
                }
                None
            }
            TpcMsg::DecideAck { txn, .. } => {
                let active = self.active.get_mut(&txn)?;
                if active.phase != TpcPhase::Deciding {
                    return None;
                }
                active.acks_seen += 1;
                if active.acks_seen < active.acks_needed {
                    return None;
                }
                let active = self.active.remove(&txn).expect("present");
                Some(TpcDone {
                    txn,
                    committed: active.commit,
                    started: active.started,
                })
            }
            _ => None,
        }
    }

    /// In-flight transactions.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::placement::MasterPolicy;
    use mdcc_common::{CommutativeUpdate, DcId, SimDuration, StaticPlacement, TableId, UpdateOp};
    use mdcc_sim::{NetworkModel, World, WorldConfig};
    use mdcc_storage::{AttrConstraint, Catalog, TableSchema};

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new().with(
                TableSchema::new(TableId(1), "item")
                    .with_constraint(AttrConstraint::at_least("stock", 0)),
            ),
        )
    }

    struct Client {
        coord: TpcCoordinator,
        batch: Vec<RecordUpdate>,
        done: Option<(TpcDone, SimTime)>,
    }

    impl Process<TpcMsg> for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TpcMsg>) {
            let batch = self.batch.clone();
            let (_, done) = self.coord.commit(batch, ctx);
            if let Some(d) = done {
                self.done = Some((d, ctx.now));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) {
            if let Some(d) = self.coord.on_message(msg, ctx) {
                self.done = Some((d, ctx.now));
            }
        }
    }

    fn build(clients: Vec<Vec<RecordUpdate>>) -> (World<TpcMsg>, Vec<NodeId>, Vec<NodeId>) {
        let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
        let mut world = World::new(
            net,
            WorldConfig {
                seed: 3,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                ..WorldConfig::default()
            },
        );
        let storage: Vec<NodeId> = (0..5u8)
            .map(|dc| {
                let mut s = TpcStorage::new(BaselineStore::new(catalog()));
                s.store_mut().load(key("a"), Row::new().with("stock", 10));
                world.spawn(DcId(dc), Box::new(s))
            })
            .collect();
        let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
        let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
        let client_ids: Vec<NodeId> = clients
            .into_iter()
            .enumerate()
            .map(|(i, batch)| {
                let c = Client {
                    coord: TpcCoordinator::new(placement.clone(), 5),
                    batch,
                    done: None,
                };
                world.spawn(DcId((i % 5) as u8), Box::new(c))
            })
            .collect();
        world.run_for(SimDuration::from_secs(10));
        (world, storage, client_ids)
    }

    fn dec(by: i64) -> Vec<RecordUpdate> {
        vec![RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -by)),
        )]
    }

    #[test]
    fn single_txn_takes_two_round_trips() {
        let (world, storage, clients) = build(vec![dec(1)]);
        let (done, at) = world.get::<Client>(clients[0]).unwrap().done.unwrap();
        assert!(done.committed);
        // Two wide-area round trips at uniform 100 ms RTT ≈ 200 ms.
        assert!(
            (195..=230).contains(&at.as_millis()),
            "expected ~200 ms, got {at}"
        );
        for n in storage {
            let s = world.get::<TpcStorage>(n).unwrap();
            assert_eq!(
                s.store().read(&key("a")).unwrap().1.get_int("stock"),
                Some(9)
            );
            assert_eq!(s.lock_count(), 0, "locks must be released");
        }
    }

    #[test]
    fn constraint_violation_aborts() {
        let (world, storage, clients) = build(vec![dec(11)]);
        let (done, _) = world.get::<Client>(clients[0]).unwrap().done.unwrap();
        assert!(!done.committed);
        for n in storage {
            let s = world.get::<TpcStorage>(n).unwrap();
            assert_eq!(
                s.store().read(&key("a")).unwrap().1.get_int("stock"),
                Some(10)
            );
        }
    }

    #[test]
    fn concurrent_conflicting_txns_do_not_both_commit_unsafely() {
        // Two decrements of 6 against stock 10: 2PC's no-wait locks mean
        // at most one can commit (they contend on the same record).
        let (world, storage, clients) = build(vec![dec(6), dec(6)]);
        let mut committed = 0;
        for c in &clients {
            let (done, _) = world.get::<Client>(*c).unwrap().done.unwrap();
            if done.committed {
                committed += 1;
            }
        }
        assert!(
            committed <= 1,
            "locks must serialize conflicting decrements"
        );
        for n in storage {
            let s = world.get::<TpcStorage>(n).unwrap();
            let stock = s
                .store()
                .read(&key("a"))
                .unwrap()
                .1
                .get_int("stock")
                .unwrap();
            assert!(stock >= 0, "constraint held");
            assert_eq!(s.lock_count(), 0);
        }
    }

    #[test]
    fn read_only_transactions_commit_immediately() {
        let (world, _, clients) = build(vec![vec![]]);
        let (done, at) = world.get::<Client>(clients[0]).unwrap().done.unwrap();
        assert!(done.committed);
        assert_eq!(at, SimTime::ZERO);
    }
}

//! Megastore\* — the paper's re-implementation of Megastore's replication
//! protocol (§5.2).
//!
//! All data lives in a **single entity group** (the paper's setup, which
//! avoids Megastore's cross-group 2PC). A master serializes write
//! transactions onto commit-log positions agreed via Multi-Paxos: one log
//! position — i.e. one transaction — is in flight at a time, which is the
//! scalability bottleneck the paper measures. Two of the paper's
//! favourable adjustments are included:
//!
//! * the Paxos-CP improvement: non-conflicting transactions commit on
//!   subsequent log positions instead of aborting;
//! * master and all clients co-located in one data center, so commits
//!   need no extra master hop.
//!
//! The master is stable (no failover is modeled — the paper's
//! experiments never fail it), so Phase 1 is elided exactly as
//! Multi-Paxos allows.

use std::collections::{HashMap, VecDeque};

use mdcc_common::{Key, NodeId, RecordUpdate, Row, SimTime, TxnId, Version};
use mdcc_sim::{Ctx, Process};

use crate::store::BaselineStore;

/// Megastore* messages.
#[derive(Debug, Clone)]
pub enum MegaMsg {
    /// Client → master: commit this write-set (with the versions read).
    CommitReq {
        /// Client-chosen transaction id.
        txn: TxnId,
        /// The write-set.
        updates: Vec<RecordUpdate>,
        /// Versions the client read (conflict detection at the
        /// serialization point).
        read_versions: Vec<(Key, Version)>,
    },
    /// Master → client: outcome.
    CommitResp {
        /// Transaction id.
        txn: TxnId,
        /// True if the transaction got a log position and committed.
        committed: bool,
    },
    /// Master → replicas: accept a log position (Multi-Paxos phase 2).
    LogAccept {
        /// Log position.
        pos: u64,
        /// Transaction occupying it.
        txn: TxnId,
    },
    /// Replica → master: position accepted.
    LogAck {
        /// Log position.
        pos: u64,
    },
    /// Master → replicas: apply a decided position's write-set (keeps
    /// local reads fresh-ish; asynchronous).
    Apply {
        /// Log position.
        pos: u64,
        /// The write-set to apply.
        updates: Vec<RecordUpdate>,
    },
    /// Local committed read.
    ReadReq {
        /// Request id.
        req: u64,
        /// Key to read.
        key: Key,
    },
    /// Read response.
    ReadResp {
        /// Echoed request id.
        req: u64,
        /// Key read.
        key: Key,
        /// Version at the replica.
        version: Version,
        /// Value at the replica.
        value: Option<Row>,
    },
    /// Client pacing timer (harness use).
    ClientTick,
}

/// A Megastore* log replica: acks log positions, applies decided
/// write-sets, serves local reads.
pub struct MegaReplica {
    store: BaselineStore,
    applied: u64,
}

impl MegaReplica {
    /// Creates a replica over `store`.
    pub fn new(store: BaselineStore) -> Self {
        Self { store, applied: 0 }
    }

    /// Bulk-load access.
    pub fn store_mut(&mut self) -> &mut BaselineStore {
        &mut self.store
    }

    /// Read access (tests/metrics).
    pub fn store(&self) -> &BaselineStore {
        &self.store
    }

    /// Number of applied log positions.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl Process<MegaMsg> for MegaReplica {
    fn on_message(&mut self, from: NodeId, msg: MegaMsg, ctx: &mut Ctx<'_, MegaMsg>) {
        match msg {
            MegaMsg::LogAccept { pos, .. } => {
                // Stable master ⇒ always acceptable (Multi-Paxos with a
                // held ballot).
                ctx.send(from, MegaMsg::LogAck { pos });
            }
            MegaMsg::Apply { pos, updates } => {
                for u in &updates {
                    self.store.apply(u);
                }
                self.applied = self.applied.max(pos);
            }
            MegaMsg::ReadReq { req, key } => {
                let (version, value) = match self.store.read(&key) {
                    Some((v, row)) => (v, Some(row)),
                    None => (self.store.version_of(&key), None),
                };
                ctx.send(
                    from,
                    MegaMsg::ReadResp {
                        req,
                        key,
                        version,
                        value,
                    },
                );
            }
            _ => {}
        }
    }
}

struct QueuedTxn {
    txn: TxnId,
    client: NodeId,
    updates: Vec<RecordUpdate>,
}

struct InFlight {
    txn: TxnId,
    client: NodeId,
    updates: Vec<RecordUpdate>,
    acks: usize,
}

/// Master counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MegaStats {
    /// Transactions committed through the log.
    pub committed: u64,
    /// Transactions aborted at the serialization point.
    pub aborted: u64,
    /// High-water mark of the queue length (the Figure 3 queueing
    /// collapse shows up here).
    pub max_queue: usize,
}

/// The Megastore* master: serializes the entity group's commit log.
pub struct MegaMaster {
    store: BaselineStore,
    replicas: Vec<NodeId>,
    classic_quorum: usize,
    queue: VecDeque<QueuedTxn>,
    inflight: Option<InFlight>,
    log_pos: u64,
    stats: MegaStats,
}

impl MegaMaster {
    /// Creates a master over its authoritative `store`. `replicas` are
    /// the *other* log replicas; the master itself counts as one ack.
    pub fn new(store: BaselineStore, replicas: Vec<NodeId>, classic_quorum: usize) -> Self {
        Self {
            store,
            replicas,
            classic_quorum,
            queue: VecDeque::new(),
            inflight: None,
            log_pos: 0,
            stats: MegaStats::default(),
        }
    }

    /// Bulk-load access.
    pub fn store_mut(&mut self) -> &mut BaselineStore {
        &mut self.store
    }

    /// Master counters.
    pub fn stats(&self) -> MegaStats {
        self.stats
    }

    /// Current queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Serialization point: validate against the entity group's committed
    /// state. Non-conflicting transactions proceed to a log position
    /// (Paxos-CP); conflicting ones abort immediately. Physical updates
    /// carry the version the client read, so write-write conflicts are
    /// caught here; commutative updates never version-conflict — only
    /// their integrity constraints can reject them.
    fn admissible(&self, q: &QueuedTxn) -> bool {
        q.updates.iter().all(|u| self.store.validate(u).is_ok())
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, MegaMsg>) {
        while self.inflight.is_none() {
            let Some(q) = self.queue.pop_front() else {
                return;
            };
            if !self.admissible(&q) {
                self.stats.aborted += 1;
                ctx.send(
                    q.client,
                    MegaMsg::CommitResp {
                        txn: q.txn,
                        committed: false,
                    },
                );
                continue;
            }
            let pos = self.log_pos;
            self.log_pos += 1;
            for &r in &self.replicas {
                ctx.send(r, MegaMsg::LogAccept { pos, txn: q.txn });
            }
            self.inflight = Some(InFlight {
                txn: q.txn,
                client: q.client,
                updates: q.updates,
                // The master's own (local) log replica acks implicitly.
                acks: 1,
            });
        }
    }
}

impl Process<MegaMsg> for MegaMaster {
    fn on_message(&mut self, from: NodeId, msg: MegaMsg, ctx: &mut Ctx<'_, MegaMsg>) {
        match msg {
            MegaMsg::CommitReq {
                txn,
                updates,
                read_versions,
            } => {
                // `read_versions` documents the client's read snapshot; the
                // write-write check rides on the physical updates' vread.
                let _ = read_versions;
                self.queue.push_back(QueuedTxn {
                    txn,
                    client: from,
                    updates,
                });
                self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
                self.pump(ctx);
            }
            MegaMsg::LogAck { pos } => {
                let Some(inflight) = &mut self.inflight else {
                    return;
                };
                if pos + 1 != self.log_pos {
                    return; // Stale ack for an older position.
                }
                inflight.acks += 1;
                if inflight.acks < self.classic_quorum {
                    return;
                }
                // Position decided: apply authoritatively, bump committed
                // versions, fan out the apply, answer the client.
                let done = self.inflight.take().expect("checked");
                for u in &done.updates {
                    self.store.apply(u);
                }
                for &r in &self.replicas {
                    ctx.send(
                        r,
                        MegaMsg::Apply {
                            pos: self.log_pos - 1,
                            updates: done.updates.clone(),
                        },
                    );
                }
                self.stats.committed += 1;
                ctx.send(
                    done.client,
                    MegaMsg::CommitResp {
                        txn: done.txn,
                        committed: true,
                    },
                );
                self.pump(ctx);
            }
            MegaMsg::ReadReq { req, key } => {
                let (version, value) = match self.store.read(&key) {
                    Some((v, row)) => (v, Some(row)),
                    None => (self.store.version_of(&key), None),
                };
                ctx.send(
                    from,
                    MegaMsg::ReadResp {
                        req,
                        key,
                        version,
                        value,
                    },
                );
            }
            _ => {}
        }
    }
}

/// A finished Megastore* transaction (client side).
#[derive(Debug, Clone, Copy)]
pub struct MegaDone {
    /// Transaction id.
    pub txn: TxnId,
    /// Whether the master committed it.
    pub committed: bool,
    /// When the client sent the commit request.
    pub started: SimTime,
}

/// Client-side tracking for Megastore* commits.
pub struct MegaClient {
    master: NodeId,
    next_seq: u64,
    pending: HashMap<TxnId, SimTime>,
}

impl MegaClient {
    /// Creates a client of `master`.
    pub fn new(master: NodeId) -> Self {
        Self {
            master,
            next_seq: 0,
            pending: HashMap::new(),
        }
    }

    /// Sends a commit request; empty write-sets commit immediately.
    pub fn commit(
        &mut self,
        updates: Vec<RecordUpdate>,
        read_versions: Vec<(Key, Version)>,
        ctx: &mut Ctx<'_, MegaMsg>,
    ) -> (TxnId, Option<MegaDone>) {
        let txn = TxnId::new(ctx.self_id, self.next_seq);
        self.next_seq += 1;
        if updates.is_empty() {
            return (
                txn,
                Some(MegaDone {
                    txn,
                    committed: true,
                    started: ctx.now,
                }),
            );
        }
        self.pending.insert(txn, ctx.now);
        ctx.send(
            self.master,
            MegaMsg::CommitReq {
                txn,
                updates,
                read_versions,
            },
        );
        (txn, None)
    }

    /// Feeds a master response.
    pub fn on_message(&mut self, msg: &MegaMsg) -> Option<MegaDone> {
        let MegaMsg::CommitResp { txn, committed } = msg else {
            return None;
        };
        let started = self.pending.remove(txn)?;
        Some(MegaDone {
            txn: *txn,
            committed: *committed,
            started,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, DcId, PhysicalUpdate, SimDuration, TableId, UpdateOp};
    use mdcc_sim::{NetworkModel, World, WorldConfig};
    use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
    use std::sync::Arc;

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new().with(
                TableSchema::new(TableId(1), "item")
                    .with_constraint(AttrConstraint::at_least("stock", 0)),
            ),
        )
    }

    struct Client {
        mega: MegaClient,
        batches: Vec<Vec<RecordUpdate>>,
        next: usize,
        done: Vec<(MegaDone, SimTime)>,
    }

    impl Client {
        fn issue(&mut self, ctx: &mut Ctx<'_, MegaMsg>) {
            if self.next >= self.batches.len() {
                return;
            }
            let batch = self.batches[self.next].clone();
            self.next += 1;
            let reads = batch.iter().map(|u| (u.key.clone(), Version(1))).collect();
            let (_, done) = self.mega.commit(batch, reads, ctx);
            if let Some(d) = done {
                self.done.push((d, ctx.now));
                self.issue(ctx);
            }
        }
    }

    impl Process<MegaMsg> for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_, MegaMsg>) {
            self.issue(ctx);
        }
        fn on_message(&mut self, _from: NodeId, msg: MegaMsg, ctx: &mut Ctx<'_, MegaMsg>) {
            if let Some(d) = self.mega.on_message(&msg) {
                self.done.push((d, ctx.now));
                self.issue(ctx);
            }
        }
    }

    /// Master in DC0, replicas in DC1–4, client in DC0 (the paper's
    /// favourable Megastore* placement).
    fn build(
        batches: Vec<Vec<Vec<RecordUpdate>>>,
    ) -> (World<MegaMsg>, NodeId, Vec<NodeId>, Vec<NodeId>) {
        let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
        let mut world = World::new(
            net,
            WorldConfig {
                seed: 5,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                ..WorldConfig::default()
            },
        );
        let replica_ids: Vec<NodeId> = (1..5u8)
            .map(|dc| {
                let mut r = MegaReplica::new(BaselineStore::new(catalog()));
                r.store_mut().load(key("a"), Row::new().with("stock", 10));
                world.spawn(DcId(dc), Box::new(r))
            })
            .collect();
        let mut master_store = BaselineStore::new(catalog());
        master_store.load(key("a"), Row::new().with("stock", 10));
        let master = world.spawn(
            DcId(0),
            Box::new(MegaMaster::new(master_store, replica_ids.clone(), 3)),
        );
        let clients: Vec<NodeId> = batches
            .into_iter()
            .map(|b| {
                world.spawn(
                    DcId(0),
                    Box::new(Client {
                        mega: MegaClient::new(master),
                        batches: b,
                        next: 0,
                        done: Vec::new(),
                    }),
                )
            })
            .collect();
        world.run_for(SimDuration::from_secs(30));
        (world, master, replica_ids, clients)
    }

    fn dec(by: i64) -> Vec<RecordUpdate> {
        vec![RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -by)),
        )]
    }

    #[test]
    fn single_commit_takes_one_quorum_round() {
        let (world, master, _, clients) = build(vec![vec![dec(1)]]);
        let c = world.get::<Client>(clients[0]).unwrap();
        let (done, at) = c.done[0];
        assert!(done.committed);
        // Client → local master (~1 ms) + quorum of 3 (master + 2 remote
        // acks at 100 ms RTT) + reply ≈ 100 ms.
        assert!((95..=130).contains(&at.as_millis()), "{at}");
        let m = world.get::<MegaMaster>(master).unwrap();
        assert_eq!(m.stats().committed, 1);
    }

    #[test]
    fn transactions_serialize_one_log_position_at_a_time() {
        // Ten clients, one txn each: commits spaced by a full quorum
        // round each because only one position is in flight.
        let batches = (0..10).map(|_| vec![dec(1)]).collect();
        let (world, master, _, clients) = build(batches);
        let mut times: Vec<u64> = clients
            .iter()
            .map(|c| world.get::<Client>(*c).unwrap().done[0].1.as_millis())
            .collect();
        times.sort_unstable();
        let m = world.get::<MegaMaster>(master).unwrap();
        assert_eq!(m.stats().committed, 10);
        // The last commit waits ~10 serialized quorum rounds.
        assert!(
            times[9] >= 9 * 100,
            "serialization must stack latencies, got {times:?}"
        );
        assert!(m.stats().max_queue >= 5, "queue must have built up");
    }

    #[test]
    fn conflicting_write_aborts_at_serialization_point() {
        // Two physical writes against the same version: the second is a
        // write-write conflict once the first commits.
        let w = |v: i64| {
            vec![RecordUpdate::new(
                key("a"),
                UpdateOp::Physical(PhysicalUpdate::write(
                    Version(1),
                    Row::new().with("stock", v),
                )),
            )]
        };
        let (world, master, _, clients) = build(vec![vec![w(1)], vec![w(2)]]);
        let outcomes: Vec<bool> = clients
            .iter()
            .map(|c| world.get::<Client>(*c).unwrap().done[0].0.committed)
            .collect();
        assert_eq!(outcomes.iter().filter(|c| **c).count(), 1);
        let m = world.get::<MegaMaster>(master).unwrap();
        assert_eq!(m.stats().committed, 1);
        assert_eq!(m.stats().aborted, 1);
    }

    #[test]
    fn replicas_apply_decided_positions() {
        let (world, _, replicas, _) = build(vec![vec![dec(4)]]);
        for r in replicas {
            let rep = world.get::<MegaReplica>(r).unwrap();
            assert_eq!(
                rep.store().read(&key("a")).unwrap().1.get_int("stock"),
                Some(6)
            );
        }
    }

    #[test]
    fn constraint_violations_abort() {
        let (world, master, _, clients) = build(vec![vec![dec(11)]]);
        let c = world.get::<Client>(clients[0]).unwrap();
        assert!(!c.done[0].0.committed);
        let m = world.get::<MegaMaster>(master).unwrap();
        assert_eq!(m.stats().aborted, 1);
    }
}

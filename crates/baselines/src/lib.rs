//! The replica-management baselines the paper compares MDCC against
//! (§5.2):
//!
//! * [`qw`] — **Quorum Writes** (QW-k): the eventually-consistent
//!   standard; writes go to all replicas, the client acks after `k`
//!   responses, reads hit the local replica. No isolation, no atomicity,
//!   no transactions.
//! * [`twopc`] — **Two-Phase Commit**: prepare locks on *all* replicas of
//!   every record, then commit/abort. Two wide-area round trips, waits
//!   for the slowest data center, not resilient to node failure.
//! * [`megastore`] — **Megastore\***: the paper's own re-implementation
//!   of Megastore's replication protocol — a single entity group whose
//!   commit log positions are agreed by Multi-Paxos, one transaction at
//!   a time, improved (as in the paper) with Paxos-CP's non-conflicting
//!   commits, with master and clients co-located in one data center.
//!
//! All three share [`store::BaselineStore`], a plain versioned record map
//! without Paxos state.

pub mod megastore;
pub mod qw;
pub mod store;
pub mod twopc;
pub mod wire;

pub use store::BaselineStore;

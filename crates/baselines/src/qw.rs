//! Quorum Writes (QW-k): the eventually consistent baseline (§5.2).
//!
//! "Simply sending all updates to all involved storage nodes then waiting
//! for responses from quorum nodes." Writes carry no version checks, no
//! constraints, no transaction boundary — a write batch acks when every
//! update has `k` replica acknowledgements. Reads use a read quorum of 1
//! (the local replica), the fastest read configuration.

use std::collections::HashMap;
use std::sync::Arc;

use mdcc_common::{Key, NodeId, Placement, RecordUpdate, Row, SimTime, Version};
use mdcc_sim::{Ctx, Process};

use crate::store::BaselineStore;

/// Quorum-writes protocol messages.
#[derive(Debug, Clone)]
pub enum QwMsg {
    /// Apply one update (no checks).
    Put {
        /// Write-batch id, echoed in the ack.
        req: u64,
        /// The update.
        update: RecordUpdate,
    },
    /// A replica applied the update.
    PutAck {
        /// Echoed batch id.
        req: u64,
        /// Key the ack is for.
        key: Key,
    },
    /// Local committed read.
    ReadReq {
        /// Request id.
        req: u64,
        /// Key to read.
        key: Key,
    },
    /// Read response.
    ReadResp {
        /// Echoed request id.
        req: u64,
        /// Key read.
        key: Key,
        /// Version at the replica.
        version: Version,
        /// Value at the replica.
        value: Option<Row>,
    },
    /// Client pacing timer (harness use).
    ClientTick,
}

/// A quorum-writes storage replica.
pub struct QwStorage {
    store: BaselineStore,
}

impl QwStorage {
    /// Creates a replica over `store`.
    pub fn new(store: BaselineStore) -> Self {
        Self { store }
    }

    /// Bulk-load access.
    pub fn store_mut(&mut self) -> &mut BaselineStore {
        &mut self.store
    }

    /// Read access (tests/metrics).
    pub fn store(&self) -> &BaselineStore {
        &self.store
    }
}

impl Process<QwMsg> for QwStorage {
    fn on_message(&mut self, from: NodeId, msg: QwMsg, ctx: &mut Ctx<'_, QwMsg>) {
        match msg {
            QwMsg::Put { req, update } => {
                let key = update.key.clone();
                self.store.apply(&update);
                ctx.send(from, QwMsg::PutAck { req, key });
            }
            QwMsg::ReadReq { req, key } => {
                let (version, value) = match self.store.read(&key) {
                    Some((v, row)) => (v, Some(row)),
                    None => (self.store.version_of(&key), None),
                };
                ctx.send(
                    from,
                    QwMsg::ReadResp {
                        req,
                        key,
                        version,
                        value,
                    },
                );
            }
            _ => {}
        }
    }
}

/// One in-flight write batch at the client.
#[derive(Debug)]
struct PendingWrite {
    started: SimTime,
    needed: usize,
    acks: HashMap<Key, usize>,
    keys: Vec<Key>,
}

/// Client-side quorum-writes coordinator ("W of N" writes, reads local).
pub struct QwWriter {
    placement: Arc<dyn Placement>,
    write_quorum: usize,
    next_req: u64,
    pending: HashMap<u64, PendingWrite>,
}

/// A completed write batch.
#[derive(Debug, Clone, Copy)]
pub struct QwDone {
    /// Batch id.
    pub req: u64,
    /// When the batch was issued.
    pub started: SimTime,
}

impl QwWriter {
    /// Creates a writer waiting for `write_quorum` acks per key.
    pub fn new(placement: Arc<dyn Placement>, write_quorum: usize) -> Self {
        Self {
            placement,
            write_quorum,
            next_req: 0,
            pending: HashMap::new(),
        }
    }

    /// Sends a write batch to every replica of every key. Empty batches
    /// complete immediately.
    pub fn write(
        &mut self,
        updates: Vec<RecordUpdate>,
        ctx: &mut Ctx<'_, QwMsg>,
    ) -> (u64, Option<QwDone>) {
        let req = self.next_req;
        self.next_req += 1;
        if updates.is_empty() {
            return (
                req,
                Some(QwDone {
                    req,
                    started: ctx.now,
                }),
            );
        }
        let keys: Vec<Key> = updates.iter().map(|u| u.key.clone()).collect();
        for update in updates {
            for replica in self.placement.replicas(&update.key) {
                ctx.send(
                    replica,
                    QwMsg::Put {
                        req,
                        update: update.clone(),
                    },
                );
            }
        }
        self.pending.insert(
            req,
            PendingWrite {
                started: ctx.now,
                needed: self.write_quorum,
                acks: HashMap::new(),
                keys,
            },
        );
        (req, None)
    }

    /// Feeds an ack; returns the batch completion when every key reached
    /// the write quorum.
    pub fn on_ack(&mut self, req: u64, key: Key) -> Option<QwDone> {
        let pending = self.pending.get_mut(&req)?;
        *pending.acks.entry(key).or_insert(0) += 1;
        let done = pending
            .keys
            .iter()
            .all(|k| pending.acks.get(k).copied().unwrap_or(0) >= pending.needed);
        if done {
            let p = self.pending.remove(&req).expect("present");
            Some(QwDone {
                req,
                started: p.started,
            })
        } else {
            None
        }
    }

    /// In-flight batches.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::placement::MasterPolicy;
    use mdcc_common::{
        CommutativeUpdate, DcId, ProtocolConfig, SimDuration, StaticPlacement, TableId, UpdateOp,
    };
    use mdcc_sim::{NetworkModel, World, WorldConfig};
    use mdcc_storage::Catalog;

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    /// Minimal QW client process for the tests.
    struct Client {
        writer: QwWriter,
        batch: Vec<RecordUpdate>,
        done_at: Option<SimTime>,
    }

    impl Process<QwMsg> for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_, QwMsg>) {
            let batch = self.batch.clone();
            let (_, done) = self.writer.write(batch, ctx);
            if done.is_some() {
                self.done_at = Some(ctx.now);
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: QwMsg, ctx: &mut Ctx<'_, QwMsg>) {
            if let QwMsg::PutAck { req, key } = msg {
                if self.writer.on_ack(req, key).is_some() {
                    self.done_at = Some(ctx.now);
                }
            }
        }
    }

    fn run(write_quorum: usize) -> (World<QwMsg>, Vec<NodeId>, NodeId) {
        let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
        let mut world = World::new(
            net,
            WorldConfig {
                seed: 1,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                ..WorldConfig::default()
            },
        );
        let catalog = Arc::new(Catalog::new());
        let storage: Vec<NodeId> = (0..5u8)
            .map(|dc| {
                let mut s = QwStorage::new(BaselineStore::new(catalog.clone()));
                s.store_mut().load(key("a"), Row::new().with("stock", 10));
                world.spawn(DcId(dc), Box::new(s))
            })
            .collect();
        let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
        let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
        let _ = ProtocolConfig::default();
        let client = Client {
            writer: QwWriter::new(placement, write_quorum),
            batch: vec![RecordUpdate::new(
                key("a"),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
            )],
            done_at: None,
        };
        let client_id = world.spawn(DcId(0), Box::new(client));
        world.run_for(SimDuration::from_secs(5));
        (world, storage, client_id)
    }

    #[test]
    fn qw3_acks_after_three_replicas() {
        let (world, storage, client) = run(3);
        let done = world.get::<Client>(client).unwrap().done_at.expect("done");
        // Uniform latencies: local ack ~1 ms, remote ~100 ms. The third
        // ack arrives after one remote round trip.
        assert!((95..=110).contains(&done.as_millis()), "{done}");
        // All replicas eventually applied (eventual consistency).
        for n in storage {
            let s = world.get::<QwStorage>(n).unwrap();
            assert_eq!(
                s.store().read(&key("a")).unwrap().1.get_int("stock"),
                Some(9)
            );
        }
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut world: World<QwMsg> = World::new(net, WorldConfig::default());
        let matrix = vec![vec![NodeId(0)]];
        let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
        let mut writer = QwWriter::new(placement, 3);
        // Drive by hand through a scratch context.
        let mut effects = Vec::new();
        let mut next_timer = 0;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId(9),
            &mut rng,
            &mut effects,
            &mut next_timer,
        );
        let (_, done) = writer.write(Vec::new(), &mut ctx);
        assert!(done.is_some());
        assert_eq!(writer.in_flight(), 0);
        let _ = &mut world;
    }

    #[test]
    fn acks_are_counted_per_key() {
        let matrix = vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(2)]];
        let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
        let mut writer = QwWriter::new(placement, 2);
        let mut effects = Vec::new();
        let mut next_timer = 0;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId(9),
            &mut rng,
            &mut effects,
            &mut next_timer,
        );
        let updates = vec![
            RecordUpdate::new(
                key("a"),
                UpdateOp::Commutative(CommutativeUpdate::delta("x", 1)),
            ),
            RecordUpdate::new(
                key("b"),
                UpdateOp::Commutative(CommutativeUpdate::delta("x", 1)),
            ),
        ];
        let (req, done) = writer.write(updates, &mut ctx);
        assert!(done.is_none());
        assert!(writer.on_ack(req, key("a")).is_none());
        assert!(
            writer.on_ack(req, key("a")).is_none(),
            "a reached quorum, b did not"
        );
        assert!(writer.on_ack(req, key("b")).is_none());
        assert!(
            writer.on_ack(req, key("b")).is_some(),
            "both reached quorum"
        );
    }
}

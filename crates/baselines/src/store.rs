//! A plain versioned record store shared by the baseline protocols.

use std::collections::HashMap;
use std::sync::Arc;

use mdcc_common::{Key, RecordUpdate, Row, UpdateOp, Version};
use mdcc_storage::Catalog;

/// Why a baseline validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineReject {
    /// Version check failed (write-write conflict).
    StaleRead,
    /// Insert of an existing record.
    AlreadyExists,
    /// Record missing for an update/delta.
    NotFound,
    /// An integrity constraint would be violated.
    Constraint,
}

/// Versioned rows plus schema constraints — no consensus state.
#[derive(Debug)]
pub struct BaselineStore {
    catalog: Arc<Catalog>,
    records: HashMap<Key, (Version, Option<Row>)>,
}

impl BaselineStore {
    /// An empty store for `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self {
            catalog,
            records: HashMap::new(),
        }
    }

    /// Bulk-loads a record at version 1.
    pub fn load(&mut self, key: Key, row: Row) {
        self.records.insert(key, (Version(1), Some(row)));
    }

    /// Committed read.
    pub fn read(&self, key: &Key) -> Option<(Version, Row)> {
        match self.records.get(key) {
            Some((v, Some(row))) => Some((*v, row.clone())),
            _ => None,
        }
    }

    /// The version of a key (zero if never written).
    pub fn version_of(&self, key: &Key) -> Version {
        self.records
            .get(key)
            .map(|(v, _)| *v)
            .unwrap_or(Version::ZERO)
    }

    /// Number of materialized records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Validates `update` against the current state (used by protocols
    /// that check before applying: 2PC prepare, Megastore* serialization
    /// point).
    pub fn validate(&self, update: &RecordUpdate) -> Result<(), BaselineReject> {
        let current = self.records.get(&update.key);
        match &update.op {
            UpdateOp::Physical(p) => match p.vread {
                None => match current {
                    Some((_, Some(_))) => Err(BaselineReject::AlreadyExists),
                    _ => Ok(()),
                },
                Some(vread) => match current {
                    Some((v, Some(_))) if *v == vread => Ok(()),
                    Some(_) | None => Err(BaselineReject::StaleRead),
                },
            },
            UpdateOp::ReadGuard(vread) => match current {
                Some((v, Some(_))) if v == vread => Ok(()),
                _ => Err(BaselineReject::StaleRead),
            },
            UpdateOp::Commutative(c) => {
                let Some((_, Some(row))) = current else {
                    return Err(BaselineReject::NotFound);
                };
                for constraint in self.catalog.constraints_for(&update.key).iter() {
                    let delta = c.delta_for(&constraint.attr);
                    let new = row.get_int(&constraint.attr).unwrap_or(0) + delta;
                    if constraint.min.is_some_and(|m| new < m)
                        || constraint.max.is_some_and(|m| new > m)
                    {
                        return Err(BaselineReject::Constraint);
                    }
                }
                Ok(())
            }
        }
    }

    /// Applies `update` unconditionally (quorum-writes semantics, or a
    /// protocol that validated beforehand). Bumps the version.
    pub fn apply(&mut self, update: &RecordUpdate) {
        let entry = self
            .records
            .entry(update.key.clone())
            .or_insert((Version::ZERO, None));
        match &update.op {
            UpdateOp::Physical(p) => {
                entry.1 = p.value.clone();
            }
            UpdateOp::Commutative(c) => {
                let mut row = entry.1.take().unwrap_or_default();
                for (attr, delta) in &c.deltas {
                    row.apply_delta(attr, *delta);
                }
                entry.1 = Some(row);
            }
            UpdateOp::ReadGuard(_) => {
                // Validation-only: no state change, no version bump.
                return;
            }
        }
        entry.0 = entry.0.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, PhysicalUpdate, TableId};
    use mdcc_storage::AttrConstraint;
    use mdcc_storage::TableSchema;

    fn store() -> BaselineStore {
        let catalog = Catalog::new().with(
            TableSchema::new(TableId(1), "item")
                .with_constraint(AttrConstraint::at_least("stock", 0)),
        );
        BaselineStore::new(Arc::new(catalog))
    }

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    #[test]
    fn load_read_version() {
        let mut s = store();
        s.load(key("a"), Row::new().with("stock", 5));
        let (v, row) = s.read(&key("a")).unwrap();
        assert_eq!(v, Version(1));
        assert_eq!(row.get_int("stock"), Some(5));
        assert_eq!(s.version_of(&key("nope")), Version::ZERO);
    }

    #[test]
    fn validate_physical_versions() {
        let mut s = store();
        s.load(key("a"), Row::new().with("stock", 5));
        let fresh = RecordUpdate::new(
            key("a"),
            UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new())),
        );
        let stale = RecordUpdate::new(
            key("a"),
            UpdateOp::Physical(PhysicalUpdate::write(Version(0), Row::new())),
        );
        assert_eq!(s.validate(&fresh), Ok(()));
        assert_eq!(s.validate(&stale), Err(BaselineReject::StaleRead));
        let dup_insert = RecordUpdate::new(
            key("a"),
            UpdateOp::Physical(PhysicalUpdate::insert(Row::new())),
        );
        assert_eq!(s.validate(&dup_insert), Err(BaselineReject::AlreadyExists));
    }

    #[test]
    fn validate_constraints() {
        let mut s = store();
        s.load(key("a"), Row::new().with("stock", 2));
        let ok = RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -2)),
        );
        let too_much = RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -3)),
        );
        assert_eq!(s.validate(&ok), Ok(()));
        assert_eq!(s.validate(&too_much), Err(BaselineReject::Constraint));
        let ghost = RecordUpdate::new(
            key("ghost"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        assert_eq!(s.validate(&ghost), Err(BaselineReject::NotFound));
    }

    #[test]
    fn apply_bumps_versions_and_values() {
        let mut s = store();
        s.load(key("a"), Row::new().with("stock", 5));
        s.apply(&RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -2)),
        ));
        let (v, row) = s.read(&key("a")).unwrap();
        assert_eq!(v, Version(2));
        assert_eq!(row.get_int("stock"), Some(3));
        // Quorum-writes semantics: apply ignores validation (can violate
        // constraints — the whole point of the comparison).
        s.apply(&RecordUpdate::new(
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -10)),
        ));
        assert_eq!(s.read(&key("a")).unwrap().1.get_int("stock"), Some(-7));
    }
}

//! End-to-end protocol tests: full MDCC commits across a simulated
//! five-data-center deployment.

use std::sync::Arc;

use mdcc_common::{
    CommutativeUpdate, DcId, Key, NodeId, PhysicalUpdate, ProtocolConfig, RecordUpdate, Row,
    SimDuration, SimTime, TableId, UpdateOp, Version,
};
use mdcc_core::placement::MasterPolicy;
use mdcc_core::placement::Placement;
use mdcc_core::{
    Msg, StaticPlacement, StorageNodeProcess, TmConfig, TmEvent, TransactionManager, TxnCompletion,
};
use mdcc_paxos::{AttrConstraint, TxnOutcome};
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore, TableSchema};

const ITEMS: TableId = TableId(1);

fn key(pk: &str) -> Key {
    Key::new(ITEMS, pk)
}

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

/// A scripted client: runs its transactions one after another and records
/// completions.
struct TestClient {
    tm: TransactionManager,
    plan: Vec<Vec<RecordUpdate>>,
    next: usize,
    completions: Vec<TxnCompletion>,
}

impl TestClient {
    fn new(cfg: TmConfig, placement: Arc<StaticPlacement>, plan: Vec<Vec<RecordUpdate>>) -> Self {
        Self {
            tm: TransactionManager::new(cfg, placement),
            plan,
            next: 0,
            completions: Vec::new(),
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.next >= self.plan.len() {
            return;
        }
        let updates = self.plan[self.next].clone();
        self.next += 1;
        let (_, done) = self.tm.commit(updates, ctx);
        if let Some(done) = done {
            self.completions.push(done);
            self.issue_next(ctx);
        }
    }

    fn handle(&mut self, events: Vec<TmEvent>, ctx: &mut Ctx<'_, Msg>) {
        for e in events {
            if let TmEvent::Completed(c) = e {
                self.completions.push(c);
                self.issue_next(ctx);
            }
        }
    }
}

impl Process<Msg> for TestClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.issue_next(ctx);
    }
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let events = self.tm.on_message(from, msg, ctx);
        self.handle(events, ctx);
    }
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let events = self.tm.on_timer(msg, ctx);
        self.handle(events, ctx);
    }
}

/// Five DCs, one storage node each, uniform 100 ms inter-DC RTT.
struct TestCluster {
    world: World<Msg>,
    storage: Vec<NodeId>,
    placement: Arc<StaticPlacement>,
}

fn build_cluster(seed: u64, master_policy: MasterPolicy) -> TestCluster {
    let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
    let mut world = World::new(
        net,
        WorldConfig {
            seed,
            service_time: SimDuration::from_micros(10),
            service_ns_per_byte: 0,
            ..WorldConfig::default()
        },
    );
    // Storage node ids are assigned in spawn order: 0..5.
    let storage: Vec<NodeId> = (0..5).map(NodeId).collect();
    let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix, master_policy);
    for dc in 0..5u8 {
        let store = RecordStore::new(ProtocolConfig::default(), catalog());
        let node = StorageNodeProcess::new(
            ProtocolConfig::default(),
            store,
            placement.clone() as Arc<dyn Placement>,
            true,
        );
        let id = world.spawn(DcId(dc), Box::new(node));
        assert_eq!(id, storage[dc as usize]);
    }
    TestCluster {
        world,
        storage,
        placement,
    }
}

fn load_everywhere(cluster: &mut TestCluster, key: Key, row: Row) {
    for &node in &cluster.storage {
        cluster
            .world
            .get_mut::<StorageNodeProcess>(node)
            .unwrap()
            .store_mut()
            .load(key.clone(), row.clone());
    }
}

fn spawn_client(cluster: &mut TestCluster, dc: u8, plan: Vec<Vec<RecordUpdate>>) -> NodeId {
    let cfg = TmConfig {
        protocol: ProtocolConfig::default(),
        my_dc: DcId(dc),
        assume_classic: false,
    };
    let client = TestClient::new(cfg, cluster.placement.clone(), plan);
    cluster.world.spawn(DcId(dc), Box::new(client))
}

fn stock_at(cluster: &World<Msg>, node: NodeId, key: &Key) -> Option<i64> {
    cluster
        .get::<StorageNodeProcess>(node)
        .unwrap()
        .store()
        .read_committed(key)
        .map(|(_, row)| row.get_int("stock").unwrap())
}

fn decrement(key: Key, by: i64) -> RecordUpdate {
    RecordUpdate::new(
        key,
        UpdateOp::Commutative(CommutativeUpdate::delta("stock", -by)),
    )
}

#[test]
fn single_commutative_txn_commits_in_one_fast_round() {
    let mut c = build_cluster(1, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("i1"), Row::new().with("stock", 10));
    let client = spawn_client(&mut c, 0, vec![vec![decrement(key("i1"), 3)]]);
    c.world.run_for(SimDuration::from_secs(10));
    let completions = &c.world.get::<TestClient>(client).unwrap().completions;
    assert_eq!(completions.len(), 1);
    let done = &completions[0];
    assert_eq!(done.outcome, TxnOutcome::Committed);
    assert!(done.fast_path, "no master involved");
    // One wide-area round trip: ~100 ms plus intra-DC chatter.
    let latency = (done.finished - done.started).as_millis();
    assert!(
        (95..160).contains(&latency),
        "fast commit should take one round trip, got {latency} ms"
    );
    // Visibility propagated everywhere.
    for &n in &c.storage {
        assert_eq!(stock_at(&c.world, n, &key("i1")), Some(7), "node {n}");
    }
}

#[test]
fn conflicting_physical_writes_no_lost_updates() {
    let mut c = build_cluster(2, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("acct"), Row::new().with("stock", 100));
    // Both clients read version 1 and race a physical write.
    let w1 = RecordUpdate::new(
        key("acct"),
        UpdateOp::Physical(PhysicalUpdate::write(
            Version(1),
            Row::new().with("stock", 1),
        )),
    );
    let w2 = RecordUpdate::new(
        key("acct"),
        UpdateOp::Physical(PhysicalUpdate::write(
            Version(1),
            Row::new().with("stock", 2),
        )),
    );
    let c1 = spawn_client(&mut c, 0, vec![vec![w1]]);
    let c2 = spawn_client(&mut c, 2, vec![vec![w2]]);
    c.world.run_for(SimDuration::from_secs(30));
    let d1 = &c.world.get::<TestClient>(c1).unwrap().completions;
    let d2 = &c.world.get::<TestClient>(c2).unwrap().completions;
    assert_eq!(d1.len(), 1);
    assert_eq!(d2.len(), 1);
    let committed: Vec<i64> = [(&d1[0], 1i64), (&d2[0], 2i64)]
        .iter()
        .filter(|(d, _)| d.outcome == TxnOutcome::Committed)
        .map(|(_, v)| *v)
        .collect();
    assert!(
        committed.len() <= 1,
        "write-write conflict must not let both commit"
    );
    // All replicas converge to the committed value (or keep 100).
    let expect = committed.first().copied().unwrap_or(100);
    for &n in &c.storage {
        assert_eq!(stock_at(&c.world, n, &key("acct")), Some(expect));
    }
}

#[test]
fn constraint_never_violated_under_contention() {
    // Five concurrent decrements of 1 against stock 4: demarcation admits
    // at most 3 through fast ballots (Figure 2) and recovery may admit a
    // 4th, but stock must never go negative.
    let mut c = build_cluster(3, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("hot"), Row::new().with("stock", 4));
    let clients: Vec<NodeId> = (0..5u8)
        .map(|dc| spawn_client(&mut c, dc, vec![vec![decrement(key("hot"), 1)]]))
        .collect();
    c.world.run_for(SimDuration::from_secs(60));
    let mut committed = 0;
    let mut aborted = 0;
    for &cl in &clients {
        for d in &c.world.get::<TestClient>(cl).unwrap().completions {
            match d.outcome {
                TxnOutcome::Committed => committed += 1,
                TxnOutcome::Aborted => aborted += 1,
            }
        }
    }
    assert_eq!(committed + aborted, 5, "every txn must resolve");
    assert!(committed <= 4, "stock 4 admits at most 4 decrements");
    assert!(committed >= 1, "contention must not starve everyone");
    // Every replica converges to the same non-negative stock.
    let values: Vec<i64> = c
        .storage
        .iter()
        .map(|&n| stock_at(&c.world, n, &key("hot")).unwrap())
        .collect();
    assert!(
        values.iter().all(|v| *v == values[0]),
        "divergence: {values:?}"
    );
    assert_eq!(values[0], 4 - committed as i64);
    assert!(values[0] >= 0, "constraint violated: {values:?}");
}

#[test]
fn sequential_txns_from_all_dcs_commit_fast() {
    let mut c = build_cluster(4, MasterPolicy::HashedPerRecord);
    for i in 0..5 {
        load_everywhere(&mut c, key(&format!("i{i}")), Row::new().with("stock", 50));
    }
    let clients: Vec<NodeId> = (0..5u8)
        .map(|dc| {
            let plan = (0..4)
                .map(|j| vec![decrement(key(&format!("i{}", (dc as i64 + j) % 5)), 1)])
                .collect();
            spawn_client(&mut c, dc, plan)
        })
        .collect();
    c.world.run_for(SimDuration::from_secs(30));
    let mut total = 0;
    for &cl in &clients {
        let completions = &c.world.get::<TestClient>(cl).unwrap().completions;
        total += completions.len();
        for d in completions {
            assert_eq!(d.outcome, TxnOutcome::Committed);
        }
    }
    assert_eq!(total, 20);
}

#[test]
fn dc_failure_is_masked_by_quorums() {
    let mut c = build_cluster(5, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("i1"), Row::new().with("stock", 100));
    // Fail a non-client DC before the transaction starts.
    c.world.fail_dc(DcId(4));
    let client = spawn_client(&mut c, 0, vec![vec![decrement(key("i1"), 1)]]);
    c.world.run_for(SimDuration::from_secs(20));
    let completions = &c.world.get::<TestClient>(client).unwrap().completions;
    assert_eq!(completions.len(), 1);
    assert_eq!(completions[0].outcome, TxnOutcome::Committed);
    // The four live replicas converge.
    for &n in &c.storage[..4] {
        assert_eq!(stock_at(&c.world, n, &key("i1")), Some(99));
    }
}

#[test]
fn two_dc_failures_fall_back_to_classic_and_still_commit() {
    let mut c = build_cluster(6, MasterPolicy::FixedDc(DcId(0)));
    load_everywhere(&mut c, key("i1"), Row::new().with("stock", 100));
    c.world.fail_dc(DcId(3));
    c.world.fail_dc(DcId(4));
    let client = spawn_client(&mut c, 0, vec![vec![decrement(key("i1"), 1)]]);
    c.world.run_for(SimDuration::from_secs(60));
    let completions = &c.world.get::<TestClient>(client).unwrap().completions;
    assert_eq!(completions.len(), 1, "classic fallback must commit");
    assert_eq!(completions[0].outcome, TxnOutcome::Committed);
    assert!(!completions[0].fast_path, "a fast quorum was impossible");
    for &n in &c.storage[..3] {
        assert_eq!(stock_at(&c.world, n, &key("i1")), Some(99));
    }
}

#[test]
fn coordinator_failure_resolves_via_dangling_recovery() {
    let mut c = build_cluster(7, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("i1"), Row::new().with("stock", 10));
    let client = spawn_client(&mut c, 0, vec![vec![decrement(key("i1"), 2)]]);
    // Let the proposals reach the acceptors, then kill the coordinator
    // before any vote returns (one-way latency is 50 ms).
    c.world.run_until(SimTime::from_millis(60));
    c.world.crash_node(client);
    // Dangling timeout (5 s) + recovery rounds.
    c.world.run_for(SimDuration::from_secs(60));
    // The storage nodes must have resolved the orphaned option on their
    // own — and all to the same outcome.
    let stocks: Vec<i64> = c
        .storage
        .iter()
        .map(|&n| stock_at(&c.world, n, &key("i1")).unwrap())
        .collect();
    assert!(
        stocks.iter().all(|s| *s == stocks[0]),
        "replicas diverged after recovery: {stocks:?}"
    );
    assert!(
        stocks[0] == 8 || stocks[0] == 10,
        "outcome must be all-or-nothing, got {stocks:?}"
    );
    // No replica still holds the option as pending.
    for &n in &c.storage {
        assert_eq!(
            c.world
                .get::<StorageNodeProcess>(n)
                .unwrap()
                .store()
                .pending_len(),
            0,
            "node {n} still has pending options"
        );
    }
}

#[test]
fn multi_record_transaction_is_atomic() {
    let mut c = build_cluster(8, MasterPolicy::HashedPerRecord);
    load_everywhere(&mut c, key("a"), Row::new().with("stock", 5));
    load_everywhere(&mut c, key("b"), Row::new().with("stock", 0));
    // Txn decrements a by 1 and b by 1; b has stock 0 so its option is
    // rejected → the whole transaction must abort, including a's part.
    let updates = vec![decrement(key("a"), 1), decrement(key("b"), 1)];
    let client = spawn_client(&mut c, 1, vec![updates]);
    c.world.run_for(SimDuration::from_secs(30));
    let completions = &c.world.get::<TestClient>(client).unwrap().completions;
    assert_eq!(completions.len(), 1);
    assert_eq!(completions[0].outcome, TxnOutcome::Aborted);
    for &n in &c.storage {
        assert_eq!(
            stock_at(&c.world, n, &key("a")),
            Some(5),
            "a must be untouched"
        );
        assert_eq!(stock_at(&c.world, n, &key("b")), Some(0));
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| -> Vec<(TxnOutcome, u64)> {
        let mut c = build_cluster(seed, MasterPolicy::HashedPerRecord);
        load_everywhere(&mut c, key("hot"), Row::new().with("stock", 6));
        let clients: Vec<NodeId> = (0..5u8)
            .map(|dc| spawn_client(&mut c, dc, vec![vec![decrement(key("hot"), 1)]]))
            .collect();
        c.world.run_for(SimDuration::from_secs(30));
        clients
            .iter()
            .flat_map(|&cl| {
                c.world
                    .get::<TestClient>(cl)
                    .unwrap()
                    .completions
                    .iter()
                    .map(|d| (d.outcome, (d.finished - d.started).as_micros()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert_eq!(run(42), run(42), "same seed, same execution");
}

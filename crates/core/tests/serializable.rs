//! Serializability via read-set validation (§4.4) — the paper's
//! "easily extended to also consider read-sets" future-work feature.
//!
//! Read guards are options like any other: accepted only while the read
//! version is current and no write is pending, they ride fast ballots, so
//! a serializable transaction still commits in one wide-area round trip
//! when uncontended. The classic write-skew anomaly — allowed under read
//! committed — must be blocked.

use std::sync::Arc;

use mdcc_common::placement::MasterPolicy;
use mdcc_common::{
    DcId, Key, NodeId, PhysicalUpdate, ProtocolConfig, RecordUpdate, Row, SimDuration,
    StaticPlacement, TableId, UpdateOp, Version,
};
use mdcc_core::placement::Placement;
use mdcc_core::{Msg, StorageNodeProcess, TmConfig, TmEvent, TransactionManager, TxnCompletion};
use mdcc_paxos::TxnOutcome;
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore};

const T: TableId = TableId(1);

fn key(pk: &str) -> Key {
    Key::new(T, pk)
}

/// A client that issues one serializable transaction: read `reads` (at
/// the versions given), write `writes`.
struct SerClient {
    tm: TransactionManager,
    reads: Vec<(Key, Version)>,
    writes: Vec<RecordUpdate>,
    pub completions: Vec<TxnCompletion>,
}

impl Process<Msg> for SerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (_, done) = self
            .tm
            .commit_serializable(self.writes.clone(), self.reads.clone(), ctx);
        assert!(done.is_none());
    }
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        for e in self.tm.on_message(from, msg, ctx) {
            if let TmEvent::Completed(c) = e {
                self.completions.push(c);
            }
        }
    }
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        for e in self.tm.on_timer(msg, ctx) {
            if let TmEvent::Completed(c) = e {
                self.completions.push(c);
            }
        }
    }
}

struct Cluster {
    world: World<Msg>,
    storage: Vec<NodeId>,
    placement: Arc<StaticPlacement>,
}

fn build(seed: u64) -> Cluster {
    let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
    let mut world = World::new(
        net,
        WorldConfig {
            seed,
            service_time: SimDuration::from_micros(10),
            service_ns_per_byte: 0,
            ..WorldConfig::default()
        },
    );
    let storage: Vec<NodeId> = (0..5).map(NodeId).collect();
    let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
    let catalog = Arc::new(Catalog::new());
    for dc in 0..5u8 {
        let store = RecordStore::new(ProtocolConfig::default(), catalog.clone());
        let node = StorageNodeProcess::new(
            ProtocolConfig::default(),
            store,
            placement.clone() as Arc<dyn Placement>,
            true,
        );
        world.spawn(DcId(dc), Box::new(node));
    }
    Cluster {
        world,
        storage,
        placement,
    }
}

fn load(c: &mut Cluster, k: &str, v: i64) {
    for &n in &c.storage {
        c.world
            .get_mut::<StorageNodeProcess>(n)
            .unwrap()
            .store_mut()
            .load(key(k), Row::new().with("v", v));
    }
}

fn client(
    c: &mut Cluster,
    dc: u8,
    reads: Vec<(Key, Version)>,
    writes: Vec<RecordUpdate>,
) -> NodeId {
    let tm = TransactionManager::new(
        TmConfig {
            protocol: ProtocolConfig::default(),
            my_dc: DcId(dc),
            assume_classic: false,
        },
        c.placement.clone() as Arc<dyn Placement>,
    );
    c.world.spawn(
        DcId(dc),
        Box::new(SerClient {
            tm,
            reads,
            writes,
            completions: vec![],
        }),
    )
}

fn write(k: &str, v: i64) -> RecordUpdate {
    RecordUpdate::new(
        key(k),
        UpdateOp::Physical(PhysicalUpdate::write(Version(1), Row::new().with("v", v))),
    )
}

fn value_at(c: &World<Msg>, n: NodeId, k: &str) -> Option<i64> {
    c.get::<StorageNodeProcess>(n)
        .unwrap()
        .store()
        .read_committed(&key(k))
        .and_then(|(_, row)| row.get_int("v"))
}

#[test]
fn write_skew_is_prevented() {
    // The textbook anomaly: T1 reads Y, writes X; T2 reads X, writes Y.
    // Under read committed both commit (no write-write conflict); under
    // serializability at most one may.
    let mut c = build(1);
    load(&mut c, "x", 0);
    load(&mut c, "y", 0);
    let t1 = client(&mut c, 0, vec![(key("y"), Version(1))], vec![write("x", 1)]);
    let t2 = client(&mut c, 2, vec![(key("x"), Version(1))], vec![write("y", 1)]);
    c.world.run_for(SimDuration::from_secs(30));
    let d1 = &c.world.get::<SerClient>(t1).unwrap().completions;
    let d2 = &c.world.get::<SerClient>(t2).unwrap().completions;
    assert_eq!(d1.len(), 1);
    assert_eq!(d2.len(), 1);
    let both = (d1[0].outcome == TxnOutcome::Committed) && (d2[0].outcome == TxnOutcome::Committed);
    assert!(!both, "write skew: both committed");
    // And the surviving state is one of the two serial outcomes.
    let x = value_at(&c.world, c.storage[0], "x").unwrap();
    let y = value_at(&c.world, c.storage[0], "y").unwrap();
    assert!(
        (x, y) == (1, 0) || (x, y) == (0, 1) || (x, y) == (0, 0),
        "non-serializable state ({x},{y})"
    );
}

#[test]
fn stale_read_guard_aborts_the_transaction() {
    // T1 writes x (bumping its version); T2 then validates a read of x at
    // the old version and must abort.
    let mut c = build(2);
    load(&mut c, "x", 0);
    load(&mut c, "z", 0);
    let t1 = client(&mut c, 0, vec![], vec![write("x", 7)]);
    c.world.run_for(SimDuration::from_secs(5));
    assert_eq!(
        c.world.get::<SerClient>(t1).unwrap().completions[0].outcome,
        TxnOutcome::Committed
    );
    // x is now at version 2; T2 read it at version 1.
    let t2 = client(&mut c, 3, vec![(key("x"), Version(1))], vec![write("z", 9)]);
    c.world.run_for(SimDuration::from_secs(10));
    let d2 = &c.world.get::<SerClient>(t2).unwrap().completions;
    assert_eq!(d2[0].outcome, TxnOutcome::Aborted);
    assert_eq!(
        value_at(&c.world, c.storage[0], "z"),
        Some(0),
        "z untouched"
    );
}

#[test]
fn read_guards_do_not_block_each_other() {
    // Shared locks: two transactions validating the same read while
    // writing different records must both commit.
    let mut c = build(3);
    load(&mut c, "shared", 5);
    load(&mut c, "a", 0);
    load(&mut c, "b", 0);
    let t1 = client(
        &mut c,
        0,
        vec![(key("shared"), Version(1))],
        vec![write("a", 1)],
    );
    let t2 = client(
        &mut c,
        2,
        vec![(key("shared"), Version(1))],
        vec![write("b", 1)],
    );
    c.world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        c.world.get::<SerClient>(t1).unwrap().completions[0].outcome,
        TxnOutcome::Committed
    );
    assert_eq!(
        c.world.get::<SerClient>(t2).unwrap().completions[0].outcome,
        TxnOutcome::Committed
    );
}

#[test]
fn serializable_commit_is_still_one_round_trip() {
    let mut c = build(4);
    load(&mut c, "r", 1);
    load(&mut c, "w", 1);
    let t = client(&mut c, 1, vec![(key("r"), Version(1))], vec![write("w", 2)]);
    c.world.run_for(SimDuration::from_secs(10));
    let done = &c.world.get::<SerClient>(t).unwrap().completions[0];
    assert_eq!(done.outcome, TxnOutcome::Committed);
    assert!(done.fast_path, "guards ride fast ballots");
    let latency = (done.finished - done.started).as_millis();
    assert!(
        (95..160).contains(&latency),
        "one round trip expected, got {latency} ms"
    );
}

#[test]
fn guard_does_not_consume_the_version() {
    // A committed guard must not bump the record's version: later readers
    // still validate against the same version.
    let mut c = build(5);
    load(&mut c, "r", 1);
    load(&mut c, "w", 1);
    let t1 = client(&mut c, 0, vec![(key("r"), Version(1))], vec![write("w", 2)]);
    c.world.run_for(SimDuration::from_secs(5));
    assert_eq!(
        c.world.get::<SerClient>(t1).unwrap().completions[0].outcome,
        TxnOutcome::Committed
    );
    // r unchanged at version 1: a second guard at version 1 still works.
    load(&mut c, "w2", 1);
    let t2 = client(
        &mut c,
        2,
        vec![(key("r"), Version(1))],
        vec![write("w2", 3)],
    );
    c.world.run_for(SimDuration::from_secs(10));
    assert_eq!(
        c.world.get::<SerClient>(t2).unwrap().completions[0].outcome,
        TxnOutcome::Committed
    );
}

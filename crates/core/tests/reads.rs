//! Read-consistency tests (§4.2): local read-committed versus up-to-date
//! quorum reads.

use std::sync::Arc;

use mdcc_common::placement::MasterPolicy;
use mdcc_common::{
    CommutativeUpdate, DcId, Key, NodeId, ProtocolConfig, RecordUpdate, Row, SimDuration,
    StaticPlacement, TableId, UpdateOp, Version,
};
use mdcc_core::placement::Placement;
use mdcc_core::{Msg, ReadConsistency, StorageNodeProcess, TmConfig, TmEvent, TransactionManager};
use mdcc_paxos::AttrConstraint;
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore, TableSchema};

const ITEMS: TableId = TableId(1);

fn key(pk: &str) -> Key {
    Key::new(ITEMS, pk)
}

/// Scripted client: write a record, then read it back with the requested
/// consistency, recording what it saw.
struct WriteThenRead {
    tm: TransactionManager,
    consistency: ReadConsistency,
    /// Delay between learning the commit and issuing the read.
    read_delay: SimDuration,
    state: State,
    pub observed: Option<(Version, Option<i64>)>,
}

enum State {
    Idle,
    Wrote,
    Reading,
}

impl Process<Msg> for WriteThenRead {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let update = RecordUpdate::new(
            key("x"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -5)),
        );
        let (_, done) = self.tm.commit(vec![update], ctx);
        assert!(done.is_none());
        self.state = State::Wrote;
    }
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        for e in self.tm.on_message(from, msg, ctx) {
            match e {
                TmEvent::Completed(_) => {
                    if matches!(self.state, State::Wrote) {
                        self.state = State::Reading;
                        // Delay the read via a self-timer (ClientTick).
                        ctx.set_timer(self.read_delay, Msg::ClientTick);
                    }
                }
                TmEvent::ReadDone { values, .. } => {
                    let (_, version, row) = &values[0];
                    self.observed = Some((*version, row.as_ref().and_then(|r| r.get_int("stock"))));
                }
            }
        }
    }
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if matches!(msg, Msg::ClientTick) {
            self.tm.read(vec![key("x")], self.consistency, ctx);
            return;
        }
        for e in self.tm.on_timer(msg, ctx) {
            if let TmEvent::ReadDone { values, .. } = e {
                let (_, version, row) = &values[0];
                self.observed = Some((*version, row.as_ref().and_then(|r| r.get_int("stock"))));
            }
        }
    }
}

fn build(consistency: ReadConsistency, read_delay: SimDuration) -> (World<Msg>, NodeId) {
    let catalog = Arc::new(Catalog::new().with(
        TableSchema::new(ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ));
    // Uniform latency, no jitter: visibility messages land at all
    // replicas 50 ms after the commit point.
    let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
    let mut world = World::new(
        net,
        WorldConfig {
            seed: 5,
            service_time: SimDuration::from_micros(10),
            service_ns_per_byte: 0,
            ..WorldConfig::default()
        },
    );
    let storage: Vec<NodeId> = (0..5).map(NodeId).collect();
    let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
    for dc in 0..5u8 {
        let store = RecordStore::new(ProtocolConfig::default(), catalog.clone());
        let node = StorageNodeProcess::new(
            ProtocolConfig::default(),
            store,
            placement.clone() as Arc<dyn Placement>,
            true,
        );
        world.spawn(DcId(dc), Box::new(node));
    }
    for &n in &storage {
        world
            .get_mut::<StorageNodeProcess>(n)
            .unwrap()
            .store_mut()
            .load(key("x"), Row::new().with("stock", 100));
    }
    let tm = TransactionManager::new(
        TmConfig {
            protocol: ProtocolConfig::default(),
            my_dc: DcId(0),
            assume_classic: false,
        },
        placement as Arc<dyn Placement>,
    );
    let client = world.spawn(
        DcId(0),
        Box::new(WriteThenRead {
            tm,
            consistency,
            read_delay,
            state: State::Idle,
            observed: None,
        }),
    );
    (world, client)
}

#[test]
fn local_reads_return_committed_data_eventually() {
    // A generous delay lets the visibility land: the local replica serves
    // the new value.
    let (mut world, client) = build(ReadConsistency::Local, SimDuration::from_secs(2));
    world.run_for(SimDuration::from_secs(10));
    let observed = world.get::<WriteThenRead>(client).unwrap().observed;
    assert_eq!(observed, Some((Version(1), Some(95))));
}

#[test]
fn local_reads_never_see_uncommitted_options() {
    // Read immediately after the commit point: the local replica has the
    // option pending but unresolved — it must serve the OLD committed
    // value, not the uncommitted delta (§4.1).
    let (mut world, client) = build(ReadConsistency::Local, SimDuration::ZERO);
    world.run_for(SimDuration::from_secs(10));
    let observed = world.get::<WriteThenRead>(client).unwrap().observed;
    let (_, value) = observed.expect("read completed");
    assert!(
        value == Some(100) || value == Some(95),
        "dirty or phantom value: {value:?}"
    );
}

#[test]
fn up_to_date_reads_see_the_write_immediately() {
    // The up-to-date read queries a classic quorum and picks the highest
    // version; even right after the commit point some replica already
    // resolved the option... or not — but the result must never be a
    // *dirty* value, and with a small delay it must be the new one.
    let (mut world, client) = build(ReadConsistency::UpToDate, SimDuration::from_millis(200));
    world.run_for(SimDuration::from_secs(10));
    let observed = world.get::<WriteThenRead>(client).unwrap().observed;
    assert_eq!(observed, Some((Version(1), Some(95))));
}

#[test]
fn reads_of_missing_records_report_version_zero() {
    let (mut world, _) = build(ReadConsistency::Local, SimDuration::from_secs(1));
    // Drive a separate read of a key that does not exist via a throwaway
    // client embedded in the same world is overkill; instead assert the
    // store-level contract directly.
    world.run_for(SimDuration::from_secs(5));
    let node: &StorageNodeProcess = world.get(NodeId(0)).unwrap();
    assert!(node.store().read_committed(&key("ghost")).is_none());
    assert_eq!(node.store().version_of(&key("ghost")), Version(0));
}

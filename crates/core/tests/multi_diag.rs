//! Focused diagnosis of Multi (assume-classic) mode under contention.
use mdcc_common::placement::MasterPolicy;
use mdcc_common::{
    CommutativeUpdate, DcId, Key, NodeId, ProtocolConfig, RecordUpdate, Row, SimDuration,
    StaticPlacement, TableId, UpdateOp,
};
use mdcc_core::placement::Placement;
use mdcc_core::{Msg, StorageNodeProcess, TmConfig, TmEvent, TransactionManager, TxnCompletion};
use mdcc_paxos::AttrConstraint;
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore, TableSchema};
use rand::Rng;
use std::sync::Arc;

const ITEMS: TableId = TableId(1);
fn key(i: u64) -> Key {
    Key::new(ITEMS, format!("i{i}"))
}

struct LoopClient {
    tm: TransactionManager,
    pool: u64,
    pub completions: Vec<TxnCompletion>,
}
impl LoopClient {
    fn issue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut items = vec![];
        while items.len() < 3 {
            let i = ctx.rng.gen_range(0..self.pool);
            if !items.contains(&i) {
                items.push(i);
            }
        }
        let updates = items
            .iter()
            .map(|i| {
                RecordUpdate::new(
                    key(*i),
                    UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
                )
            })
            .collect();
        let (_, done) = self.tm.commit(updates, ctx);
        assert!(done.is_none());
    }
}
impl Process<Msg> for LoopClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.issue(ctx);
    }
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        for e in self.tm.on_message(from, msg, ctx) {
            if let TmEvent::Completed(c) = e {
                self.completions.push(c);
                self.issue(ctx);
            }
        }
    }
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        for e in self.tm.on_timer(msg, ctx) {
            if let TmEvent::Completed(c) = e {
                self.completions.push(c);
                self.issue(ctx);
            }
        }
    }
}

#[test]
fn multi_mode_contended() {
    let net = NetworkModel::uniform(5, 100.0, 1.0).with_jitter(0.0);
    let mut world = World::new(
        net,
        WorldConfig {
            seed: 1,
            service_time: SimDuration::from_micros(10),
            service_ns_per_byte: 0,
            ..WorldConfig::default()
        },
    );
    let storage: Vec<NodeId> = (0..5).map(NodeId).collect();
    let matrix: Vec<Vec<NodeId>> = storage.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix, MasterPolicy::HashedPerRecord);
    let catalog = Arc::new(Catalog::new().with(
        TableSchema::new(ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ));
    for dc in 0..5u8 {
        let store = RecordStore::new(ProtocolConfig::default(), catalog.clone());
        let node = StorageNodeProcess::new(
            ProtocolConfig::default(),
            store,
            placement.clone() as Arc<dyn Placement>,
            false,
        );
        world.spawn(DcId(dc), Box::new(node));
    }
    const POOL: u64 = 10;
    for &n in &storage {
        for i in 0..POOL {
            world
                .get_mut::<StorageNodeProcess>(n)
                .unwrap()
                .store_mut()
                .load(key(i), Row::new().with("stock", 100_000));
        }
    }
    let mut clients = vec![];
    for c in 0..10u8 {
        let tm = TransactionManager::new(
            TmConfig {
                protocol: ProtocolConfig::default(),
                my_dc: DcId(c % 5),
                assume_classic: true,
            },
            placement.clone() as Arc<dyn Placement>,
        );
        clients.push(world.spawn(
            DcId(c % 5),
            Box::new(LoopClient {
                tm,
                pool: POOL,
                completions: vec![],
            }),
        ));
    }
    world.run_for(SimDuration::from_secs(60));
    let mut total = 0;
    for &c in &clients {
        let cl = world.get::<LoopClient>(c).unwrap();
        total += cl.completions.len();
        eprintln!(
            "client {c}: {} completions, in_flight={}, stats={:?}",
            cl.completions.len(),
            cl.tm.in_flight(),
            cl.tm.stats()
        );
    }
    for &n in &storage {
        let node = world.get::<StorageNodeProcess>(n).unwrap();
        let leaders = node.leader_debug();
        if !leaders.is_empty() {
            for (k, leading, establishing, inflight, qlen) in leaders {
                eprintln!("node {n} leader {k}: leading={leading} establishing={establishing} inflight={inflight} queue={qlen} version={:?} pending={}",
                    node.store().with_record(&k, |r| r.version()), node.store().pending_len());
            }
        }
    }
    eprintln!("total completions: {total}");
    assert!(total > 400, "only {total} completions in 60s");
}

//! The MDCC commit protocol, mounted on the simulator.
//!
//! This crate turns the sans-IO machines of `mdcc-paxos` into simulated
//! processes and adds the transaction layer of the paper:
//!
//! * [`msg::Msg`] — every message exchanged between app servers and
//!   storage nodes;
//! * [`placement::Placement`] — record → replica group / master mapping
//!   (range partitioning per data center, §2);
//! * [`node::StorageNodeProcess`] — a storage node: per-record acceptors,
//!   per-record leaders (masters), dangling-transaction recovery;
//! * [`tm::TransactionManager`] — the stateless "DB library" embedded in
//!   app servers: optimistic execution, parallel option proposal, the
//!   learn-then-commit rule, visibility fan-out and reads (§3.2, §4).

pub mod msg;
pub mod node;
pub mod tm;
pub mod wire;

/// Re-export of the placement layer (now in `mdcc-common`).
pub use mdcc_common::placement;

pub use msg::Msg;
pub use node::StorageNodeProcess;
pub use placement::{Placement, StaticPlacement};
pub use tm::{ReadConsistency, TmConfig, TmEvent, TransactionManager, TxnCompletion, TxnStats};

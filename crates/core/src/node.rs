//! The storage-node process: acceptors, masters and dangling recovery.
//!
//! One `StorageNodeProcess` serves every record of its shard within its
//! data center. It plays three roles:
//!
//! * **acceptor** for fast proposals, Phase1a/Phase2a and visibility
//!   messages, delegating to [`mdcc_storage::RecordStore`];
//! * **master (leader)** for records whose classic ballots it owns,
//!   delegating to [`mdcc_paxos::LeaderRecord`];
//! * **recovery coordinator** for dangling transactions (§3.2.3): options
//!   outstanding past the timeout are reconstructed by quorum-reading
//!   every key in the option's write-set and resolved deterministically.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mdcc_common::{DcId, Key, NodeId, ProtocolConfig, SimDuration, TxnId};
use mdcc_mastership::{
    record_id, Action as MsAction, Ballot as MsBallot, LeaseAudit, LeaseTable, Mastership,
    MastershipStats, MsMsg, OverrideRun,
};
use mdcc_paxos::acceptor::{ClassicAccept, FastPropose, Phase2b};
use mdcc_paxos::leader::{LeaderAction, LeaderConfig};
use mdcc_paxos::{LeaderRecord, LearnOutcome, Learner, OptionStatus, TxnOutcome};
use mdcc_recovery::{wal, write_checkpoint, RecoveryInfo, WalRecord};
use mdcc_sim::{Ctx, Process};
use mdcc_storage::RecordStore;
use mdcc_trace::{Phase, TraceHandle};

use crate::msg::Msg;
use crate::placement::Placement;

/// Counters a storage node keeps about itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Fast proposals voted on.
    pub fast_votes: u64,
    /// Classic Phase2a proposals voted on.
    pub classic_votes: u64,
    /// Fast proposals bounced because a classic ballot was in force.
    pub not_fast_bounces: u64,
    /// Instance-full bounces.
    pub instance_full: u64,
    /// Collision/limit recoveries this node led.
    pub recoveries_led: u64,
    /// Dangling transactions this node resolved.
    pub dangling_resolved: u64,
    /// Durable checkpoints written (snapshot + WAL compaction).
    pub checkpoints: u64,
    /// Anti-entropy sync rounds initiated after a restart.
    pub sync_rounds: u64,
    /// Records whose state changed through peer sync.
    pub sync_adoptions: u64,
    /// `CstructPull` read-repair requests this node answered with a
    /// full cstruct (delta-vote divergence repair).
    pub repair_served: u64,
    /// Committed visibilities that arrived for options this node never
    /// accepted (bare outcomes): each triggers a targeted per-key
    /// anti-entropy pull so the missed execution is installed from a
    /// peer instead of silently diverging the value.
    pub missed_commit_pulls: u64,
}

/// One in-flight dangling-transaction reconstruction.
#[derive(Debug)]
struct RecoveryTask {
    keys: Arc<[Key]>,
    learners: HashMap<Key, Learner>,
    decided: HashMap<Key, OptionStatus>,
    recovering_keys: HashSet<Key>,
    /// Retry sweeps performed; after a few rounds of "nobody has seen the
    /// option at the current instance" the transaction is resolved as
    /// aborted. Sound because recovery only starts `dangling_timeout`
    /// (seconds) after acceptance while message delays are sub-second —
    /// the same synchrony assumption the paper's timeout-based recovery
    /// makes (§3.2.3).
    retries: u32,
}

/// Retry sweeps before an unseen option is declared dead.
const RECOVERY_ABANDON_RETRIES: u32 = 3;

/// The vote an acceptor gives for a record it has never materialized.
fn absent_vote() -> Phase2b {
    Phase2b {
        ballot: mdcc_paxos::Ballot::INITIAL_FAST,
        version: mdcc_common::Version::ZERO,
        cstruct: mdcc_paxos::CStruct::new(),
        epoch: 0,
    }
}

/// A storage node (one per shard per data center).
pub struct StorageNodeProcess {
    cfg: ProtocolConfig,
    store: RecordStore,
    placement: Arc<dyn Placement>,
    leaders: HashMap<Key, LeaderRecord>,
    /// `false` reproduces the *Multi* configuration: masters never hand
    /// records back to fast ballots.
    allow_fast: bool,
    recoveries: HashMap<TxnId, RecoveryTask>,
    sweep_interval: SimDuration,
    /// When `true` the node write-ahead-logs every state-changing input
    /// to its simulated disk and checkpoints periodically.
    durable: bool,
    /// Set when this process was rebuilt from disk after a crash; such
    /// nodes run periodic anti-entropy rounds against peer replicas.
    recovered: Option<RecoveryInfo>,
    /// Rotating index into the peer-replica list for sync rounds.
    sync_cursor: usize,
    /// Transactions already redirected back to the fast path once
    /// (GoFast); a re-bounced proposal is accepted for classic leading
    /// instead of ping-ponging. Entries clear on resolution.
    redirected_fast: HashSet<TxnId>,
    /// Transactions already forwarded once to a record-override target;
    /// a proposal that comes back (the target is deposed, crashed, or
    /// bouncing) retires the override and is led locally instead of
    /// ping-ponging between holder and target forever.
    override_forwarded: HashSet<TxnId>,
    /// Per-record, per-destination delta cursors: each tracks how much
    /// of which cstruct epoch that destination has already been sent, so
    /// every vote ships only the entry suffix the destination is
    /// missing. Volatile on purpose: losing the cursors after a crash
    /// just re-sends full votes, which receivers absorb by resetting
    /// their shadows. Bounded by evicting the least-recently-touched
    /// half past [`VOTE_CURSORS_CAP`].
    vote_cursors: HashMap<Key, CursorEntry>,
    /// Monotone touch clock stamping [`CursorEntry::touched`].
    vote_cursor_clock: u64,
    /// `stats.sync_adoptions` as of the previous sync sweep, plus the
    /// number of consecutive sweeps that adopted nothing — sweeping
    /// stops once a full peer rotation stays quiet (convergence).
    last_sync_adoptions: u64,
    sync_idle_rounds: u32,
    stats: NodeStats,
    /// Shared trace collector for leader-ballot and visibility spans.
    tracer: Option<TraceHandle>,
    /// This node's data center, for span attribution (set with the
    /// tracer; protocol logic never reads it).
    my_dc: DcId,
    /// Dynamic-mastership layer (leases + ballot leader election),
    /// constructed in `on_start` when `cfg.mastership.enabled`. `None`
    /// reproduces static placement byte-identically: no extra timers,
    /// messages or state.
    mastership: Option<Mastership>,
    /// Shared lease-tenure collector handed to the mastership layer
    /// (consistency audits assert no overlapping tenures).
    lease_audit: Option<LeaseAudit>,
    /// Lease-carried Phase1 (`lease_phase1`): shard-level promise
    /// floors installed whenever this node *granted* a lease. The
    /// granted ballot doubles as the Phase1-promised classic ballot for
    /// every record in the shard, enforced lazily on the acceptor right
    /// before it judges a proposal — so the holder's first Phase2a for
    /// a cold record is immediately valid and a deposed holder's stale
    /// ballot Nacks without any per-record Phase1 exchange.
    lease_floors: HashMap<u32, MsBallot>,
    /// Per-record override ballots for hot keys whose classic ballot
    /// diverged from the shard lease (contested records, collision
    /// recovery led elsewhere). Bounded per shard by
    /// `lease_record_overrides`; handed to the successor on migration.
    lease_overrides: HashMap<u32, LeaseTable>,
}

/// Bound on the fast-redirect memo: entries normally clear on
/// resolution, but a transaction whose coordinator dies right after the
/// redirect never resolves here; past the cap the memo resets (which at
/// worst re-allows one redirect per stale transaction).
const REDIRECTED_FAST_CAP: usize = 4096;

/// Bound on the per-record delta-cursor map. Past the cap the
/// least-recently-touched half is evicted — records still voting keep
/// their cursors, so one hot node crossing the cap no longer forces
/// full-vote re-priming for every record at once (an evicted record
/// re-sends at worst one full vote per destination).
const VOTE_CURSORS_CAP: usize = 16384;

/// One record's delta cursors plus its last-touch stamp (LRU eviction).
#[derive(Debug, Default)]
struct CursorEntry {
    touched: u64,
    by_dest: HashMap<NodeId, mdcc_paxos::DeltaCursor>,
}

/// Evicts the least-recently-touched half of a cursor map: entries at
/// or below the median touch stamp go. Stamps are unique (a monotone
/// clock), so this removes at least half deterministically regardless
/// of map iteration order.
fn evict_lru_half(cursors: &mut HashMap<Key, CursorEntry>) {
    let mut stamps: Vec<u64> = cursors.values().map(|e| e.touched).collect();
    stamps.sort_unstable();
    let cutoff = stamps[stamps.len() / 2];
    cursors.retain(|_, e| e.touched > cutoff);
}

/// Retries of a missed-commit peer pull (rotating target peers) before
/// the node gives up and waits for the next instance close to repair
/// it via snapshot adoption.
const MISSED_PULL_RETRIES: u32 = 3;

impl StorageNodeProcess {
    /// Creates a storage node over `store`.
    pub fn new(
        cfg: ProtocolConfig,
        store: RecordStore,
        placement: Arc<dyn Placement>,
        allow_fast: bool,
    ) -> Self {
        let sweep_interval = cfg.dangling_timeout / 2;
        Self {
            cfg,
            store,
            placement,
            leaders: HashMap::new(),
            allow_fast,
            recoveries: HashMap::new(),
            sweep_interval,
            durable: false,
            recovered: None,
            sync_cursor: 0,
            redirected_fast: HashSet::new(),
            override_forwarded: HashSet::new(),
            vote_cursors: HashMap::new(),
            vote_cursor_clock: 0,
            last_sync_adoptions: 0,
            sync_idle_rounds: 0,
            stats: NodeStats::default(),
            tracer: None,
            my_dc: DcId(0),
            mastership: None,
            lease_audit: None,
            lease_floors: HashMap::new(),
            lease_overrides: HashMap::new(),
        }
    }

    /// Attaches the run's shared lease audit; must be set before spawn
    /// so `on_start` hands it to the mastership layer.
    pub fn set_lease_audit(&mut self, audit: LeaseAudit) {
        self.lease_audit = Some(audit);
    }

    /// Mastership counters, if the dynamic-mastership layer is active.
    pub fn mastership_stats(&self) -> Option<MastershipStats> {
        self.mastership.as_ref().map(|m| m.stats())
    }

    /// Whether lease-carried Phase1 is in force on this node.
    fn lease_phase1_on(&self) -> bool {
        self.cfg.mastership.enabled && self.cfg.mastership.lease_phase1
    }

    /// Installs lease floors and per-record overrides recovered from
    /// the WAL tail (see [`mdcc_recovery::recovered_leases`]) into this
    /// node's *enforcement* tables only. The mastership layer's restart
    /// quarantine is untouched: recovered floors keep fencing deposed
    /// ballots, they never let this node serve.
    pub fn install_recovered_leases(&mut self, leases: mdcc_recovery::RecoveredLeases) {
        if !self.lease_phase1_on() {
            return;
        }
        for (shard, (n, pid)) in leases.floors {
            let b = MsBallot::new(n, pid);
            let e = self.lease_floors.entry(shard).or_insert(b);
            if b > *e {
                *e = b;
            }
        }
        let cap = self.cfg.mastership.lease_record_overrides;
        if cap == 0 {
            return;
        }
        for ((shard, record), (n, pid)) in leases.overrides {
            self.lease_overrides
                .entry(shard)
                .or_insert_with(|| LeaseTable::new(cap))
                .raise(record, MsBallot::new(n, pid));
        }
    }

    /// Lazily enforces the lease-promise floor on one record's acceptor
    /// state before it judges a proposal: the effective floor is the
    /// max of the shard-level lease ballot and any per-record override.
    /// A raise is mirrored into the WAL as the Phase1a it stands in
    /// for, so crash replay reproduces the exact same Nacks.
    fn enforce_floor(&mut self, key: &Key, ctx: &mut Ctx<'_, Msg>) {
        if !self.lease_phase1_on() {
            return;
        }
        let shard = self.placement.shard_id(key);
        let mut best = self.lease_floors.get(&shard).copied();
        if let Some(table) = self.lease_overrides.get_mut(&shard) {
            if let Some(b) = table.override_of(record_id(key.pk.as_bytes())) {
                best = Some(best.map_or(b, |f| f.max(b)));
            }
        }
        let Some(msb) = best else { return };
        let ballot = mdcc_paxos::Ballot::lease(msb.n, msb.node());
        if self.store.raise_promise(key, ballot) {
            self.wal_append(
                &WalRecord::Phase1a {
                    key: key.clone(),
                    ballot,
                },
                ctx,
            );
        }
    }

    /// Remembers a per-record divergence from the shard lease: a
    /// classic ballot above the lease floor is in force for this record
    /// (contested takeover, collision recovery led elsewhere). Future
    /// routing and promise enforcement honor it record-granularly.
    fn note_record_override(
        &mut self,
        key: &Key,
        promised: mdcc_paxos::Ballot,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if !self.lease_phase1_on() || promised.is_fast() {
            return;
        }
        if self.cfg.mastership.lease_record_overrides == 0 {
            return;
        }
        let shard = self.placement.shard_id(key);
        let msb = MsBallot::new(promised.round, promised.proposer.0 as u64);
        if self.lease_floors.get(&shard).is_some_and(|f| msb <= *f) {
            return; // Within the shard lease: no divergence to record.
        }
        let record = record_id(key.pk.as_bytes());
        let cap = self.cfg.mastership.lease_record_overrides;
        let table = self
            .lease_overrides
            .entry(shard)
            .or_insert_with(|| LeaseTable::new(cap));
        if table.raise(record, msb) {
            self.wal_append(
                &WalRecord::LeaseOverride {
                    shard,
                    record,
                    n: msb.n,
                    pid: msb.pid,
                },
                ctx,
            );
        }
    }

    /// Where one record's classic traffic should go when it diverges
    /// from the shard lease this node is serving: the override ballot's
    /// proposer, if it outranks the shard floor and is another node.
    fn record_override_target(&mut self, key: &Key, me: NodeId) -> Option<NodeId> {
        if !self.lease_phase1_on() {
            return None;
        }
        let shard = self.placement.shard_id(key);
        let over = self
            .lease_overrides
            .get_mut(&shard)?
            .override_of(record_id(key.pk.as_bytes()))?;
        if self.lease_floors.get(&shard).is_some_and(|f| over <= *f) {
            return None;
        }
        (over.node() != me).then(|| over.node())
    }

    /// Installs a predecessor's per-record override runs (shipped on
    /// migration so hot-key promises survive the handoff).
    fn install_override_runs(&mut self, shard: u32, runs: &[OverrideRun], ctx: &mut Ctx<'_, Msg>) {
        let cap = self.cfg.mastership.lease_record_overrides;
        if !self.lease_phase1_on() || cap == 0 {
            return;
        }
        let mut raised: Vec<(u64, MsBallot)> = Vec::new();
        let table = self
            .lease_overrides
            .entry(shard)
            .or_insert_with(|| LeaseTable::new(cap));
        for run in runs {
            for i in 0..u64::from(run.len) {
                let record = run.start.wrapping_add(i);
                if table.raise(record, run.ballot) {
                    raised.push((record, run.ballot));
                }
            }
        }
        for (record, b) in raised {
            self.wal_append(
                &WalRecord::LeaseOverride {
                    shard,
                    record,
                    n: b.n,
                    pid: b.pid,
                },
                ctx,
            );
        }
    }

    /// Attaches the run's trace collector. `my_dc` is this node's data
    /// center (spans carry it; the world is not reachable from here).
    pub fn set_tracer(&mut self, tracer: TraceHandle, my_dc: DcId) {
        self.tracer = Some(tracer);
        self.my_dc = my_dc;
    }

    /// Creates a storage node whose store was rebuilt from its disk
    /// (checkpoint + WAL replay). The node is durable, and `on_start`
    /// additionally kicks off anti-entropy sync rounds so the node
    /// catches up on whatever committed while it was down.
    pub fn from_recovery(
        cfg: ProtocolConfig,
        store: RecordStore,
        placement: Arc<dyn Placement>,
        allow_fast: bool,
        info: RecoveryInfo,
    ) -> Self {
        let mut node = Self::new(cfg, store, placement, allow_fast);
        node.durable = true;
        node.recovered = Some(info);
        node
    }

    /// Turns on write-ahead logging + periodic checkpoints. Must be set
    /// before the node is spawned (the WAL must cover every input).
    pub fn enable_durability(&mut self) {
        self.durable = true;
    }

    /// What the restart replay cost, if this node was rebuilt from disk.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovered
    }

    /// Read access to the underlying store (tests, metrics).
    pub fn store(&self) -> &RecordStore {
        &self.store
    }

    /// Mutable store access (bulk loading before the simulation starts).
    pub fn store_mut(&mut self) -> &mut RecordStore {
        &mut self.store
    }

    /// This node's counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Write-ahead-logs one command, if durability is on and the world
    /// attached a disk.
    fn wal_append(&mut self, record: &WalRecord, ctx: &mut Ctx<'_, Msg>) {
        if !self.durable {
            return;
        }
        if let Some(disk) = ctx.disk() {
            wal::append(disk, record);
        }
    }

    /// The peer replicas of this node's shard (every key this store
    /// holds shares one replica group).
    fn peer_replicas(&self, ctx: &Ctx<'_, Msg>) -> Vec<NodeId> {
        let Some(key) = self.store.keys().into_iter().next() else {
            return Vec::new();
        };
        self.peer_replicas_of(&key, ctx)
    }

    /// The other replicas of one record.
    fn peer_replicas_of(&self, key: &Key, ctx: &Ctx<'_, Msg>) -> Vec<NodeId> {
        self.placement
            .replicas(key)
            .into_iter()
            .filter(|r| *r != ctx.self_id)
            .collect()
    }

    /// Sends one anti-entropy request to the next peer in rotation.
    ///
    /// Batched mode (the default) opens a merkle-style round: the peer
    /// answers with range digests, this node pulls only divergent
    /// ranges, and state ships in multi-record chunks. Legacy mode asks
    /// for the full per-key `SyncKey` flood.
    fn run_sync_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let peers = self.peer_replicas(ctx);
        if peers.is_empty() {
            return;
        }
        let target = peers[self.sync_cursor % peers.len()];
        self.sync_cursor += 1;
        self.stats.sync_rounds += 1;
        if self.cfg.sync_batching {
            ctx.send(target, Msg::SyncDigestReq);
        } else {
            ctx.send(target, Msg::SyncReq);
        }
    }

    /// Applies one record's worth of peer sync state — shared by the
    /// legacy `SyncKey` path and the batched `SyncChunk` path.
    fn apply_sync_item(
        &mut self,
        key: Key,
        snapshot: mdcc_paxos::RecordSnapshot,
        resolved: Vec<(mdcc_paxos::TxnOption, mdcc_paxos::Resolution)>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if !self.store.sync_relevant(&key, &snapshot, &resolved) {
            return;
        }
        self.wal_append(
            &WalRecord::Sync {
                at: ctx.now,
                key: key.clone(),
                snapshot: snapshot.clone(),
                resolved: resolved.clone(),
            },
            ctx,
        );
        let before = self.store.version_of(&key);
        if self
            .store
            .sync_from_peer(&key, &snapshot, &resolved, ctx.now)
        {
            self.stats.sync_adoptions += 1;
        }
        if self.store.version_of(&key) != before {
            self.notify_leader_advance(&key, ctx);
        }
    }

    /// Leader state per record this node masters (debugging/tests):
    /// `(key, leading, establishing, inflight, queue length)`.
    pub fn leader_debug(&self) -> Vec<(Key, bool, bool, bool, usize)> {
        let mut v: Vec<_> = self
            .leaders
            .iter()
            .map(|(k, l)| {
                (
                    k.clone(),
                    l.is_leading(),
                    l.is_establishing(),
                    l.is_inflight(),
                    l.queue_len(),
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Leads one classic proposal locally: redirect it back to the fast
    /// path when the record reopened fast (at most once per txn), else
    /// enqueue it on this node's leader for the record. Shared by the
    /// static `ProposeToMaster` path and the lease-holder path.
    fn lead_classic(&mut self, from: NodeId, opt: mdcc_paxos::TxnOption, ctx: &mut Ctx<'_, Msg>) {
        let key = opt.key.clone();
        // Stale retry of a settled transaction: answer with the
        // recorded outcome, exactly as the fast path does. Once every
        // replica has resolved the transaction (e.g. storage-side
        // dangling recovery finished while the coordinator was
        // partitioned away), re-leading appends nothing new and the
        // delta-vote fan-out skips its coordinator as settled
        // business — without this reply the retrying TM never hears
        // back and the transaction wedges at the coordinator forever.
        if let Some(outcome) = self
            .store
            .with_record(&key, |r| r.settled_outcome(opt.txn))
            .flatten()
        {
            ctx.send(
                opt.txn.coordinator,
                Msg::AlreadyResolved {
                    key,
                    txn: opt.txn,
                    outcome,
                },
            );
            return;
        }
        // If the record is actually in fast mode and fast ballots
        // are allowed, redirect the TM back to the fast path —
        // but at most once per transaction. Under message loss
        // the replicas' ballot modes can diverge (this record
        // reopened fast, another replica never heard the reopen
        // and still bounces NotFast), and honoring the redirect
        // every time ping-pongs the proposal between fast and
        // classic forever. The second arrival takes mastership:
        // the classic round re-synchronizes every replica.
        let leading = self
            .leaders
            .get(&key)
            .map(|l| l.is_leading())
            .unwrap_or(false);
        let record_fast = self
            .store
            .with_record(&key, |r| r.promised().is_fast())
            .unwrap_or(true);
        if self.redirected_fast.len() > REDIRECTED_FAST_CAP {
            self.redirected_fast.clear();
        }
        if self.allow_fast && !leading && record_fast && self.redirected_fast.insert(opt.txn) {
            ctx.send(from, Msg::GoFast { key, opt });
            return;
        }
        // A fresh lease holder starts its classic ballots above the
        // election ballot so its Phase1a outranks the predecessor's —
        // and, with lease-carried Phase1 on, skips Phase1 entirely for
        // cold records: the granted lease ballot is already the promise
        // floor on a grant quorum of acceptors, so the first Phase2a at
        // that ballot is immediately valid (one WAN round trip).
        let mut skipped_phase1 = false;
        if let Some(ms) = &self.mastership {
            let shard = self.placement.shard_id(&key);
            if let Some(floor) = ms.ballot_floor(shard) {
                let self_id = ctx.self_id;
                let ballot = mdcc_paxos::Ballot::lease(floor, self_id);
                // Only worth attempting when the local replica (this
                // node is one of the record's acceptors) says a
                // pipelined append at the lease ballot could actually
                // land: the record is already in this ballot's stream,
                // or it is cold AND the lease ballot clears the local
                // promise. A record warm under a predecessor's ballot
                // would bounce off the warm-record guard, and one whose
                // promise is a deposed holder's higher classic ballot
                // would be Nacked outright — either way the wasted WAN
                // round trip (and the spurious record override the Nack
                // would raise) costs more than running Phase1 up front.
                let locally_cold = self
                    .store
                    .with_record(&key, |r| {
                        r.accepted_ballot() == Some(ballot)
                            || (r.cstruct().is_empty() && r.promised() <= ballot)
                    })
                    .unwrap_or(true);
                if self.cfg.mastership.lease_phase1
                    && ms.is_serving(shard, ctx.now)
                    && locally_cold
                    && self.leader_for(&key, ctx).assume_leadership(ballot)
                {
                    skipped_phase1 = true;
                } else {
                    self.leader_for(&key, ctx).observe_ballot(ballot);
                }
            }
        }
        if skipped_phase1 {
            if let Some(ms) = self.mastership.as_mut() {
                ms.note_phase1_skipped();
            }
        }
        let actions = self.leader_for(&key, ctx).enqueue(opt);
        self.run_leader_actions(&key, actions, ctx);
    }

    /// Emits the mastership layer's queued sends as wrapped messages
    /// and absorbs its host-level effects: lease grants raise this
    /// node's promise floor, migrations ship the override table to the
    /// successor. Both effects are gated on `lease_phase1` so the off
    /// switch stays byte-identical to plain shard leases.
    fn flush_ms_actions(&mut self, out: Vec<MsAction>, ctx: &mut Ctx<'_, Msg>) {
        for action in out {
            match action {
                MsAction::Send { to, msg } => ctx.send(to, Msg::Mastership(msg)),
                MsAction::FloorRaised { shard, ballot } => {
                    if !self.lease_phase1_on() {
                        continue;
                    }
                    let rose = self
                        .lease_floors
                        .get(&shard)
                        .is_none_or(|cur| ballot > *cur);
                    if rose {
                        self.lease_floors.insert(shard, ballot);
                        self.wal_append(
                            &WalRecord::LeaseFloor {
                                shard,
                                n: ballot.n,
                                pid: ballot.pid,
                            },
                            ctx,
                        );
                    }
                }
                MsAction::Relinquished { shard, to } => {
                    if !self.lease_phase1_on() {
                        continue;
                    }
                    // Hand the per-record override table to the
                    // successor so hot-key promises survive migration.
                    if let Some(table) = self.lease_overrides.get(&shard) {
                        let runs = table.runs();
                        if !runs.is_empty() {
                            ctx.send(to, Msg::Mastership(MsMsg::Overrides { shard, runs }));
                        }
                    }
                }
            }
        }
    }

    fn leader_for(&mut self, key: &Key, ctx: &Ctx<'_, Msg>) -> &mut LeaderRecord {
        let snapshot = self
            .store
            .with_record(key, |r| r.snapshot())
            .unwrap_or_else(mdcc_paxos::RecordSnapshot::absent);
        let cfg = LeaderConfig {
            n: self.cfg.replication,
            qc: self.cfg.classic_quorum,
            qf: self.cfg.fast_quorum,
            gamma: self.cfg.gamma,
            allow_fast: self.allow_fast,
            max_instance_options: self.cfg.max_instance_options,
        };
        let self_id = ctx.self_id;
        self.leaders
            .entry(key.clone())
            .or_insert_with(|| LeaderRecord::new(cfg, self_id, snapshot))
    }

    fn run_leader_actions(
        &mut self,
        key: &Key,
        actions: Vec<LeaderAction>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let replicas = self.placement.replicas(key);
        for action in actions {
            match action {
                LeaderAction::Phase1a(ballot) => {
                    self.stats.recoveries_led += 1;
                    // A per-record Phase1 round run while this node
                    // serves the shard's lease — the two-round-trip
                    // first-touch cliff `lease_phase1` removes (the
                    // fig11 cold-key drill asserts this stays zero
                    // when the optimization is on).
                    let shard = self.placement.shard_id(key);
                    if let Some(ms) = self.mastership.as_mut() {
                        if ms.is_serving(shard, ctx.now) {
                            ms.note_phase1_covered();
                        }
                    }
                    if let Some(tracer) = &self.tracer {
                        // Ballot acquisition: closes when a Phase1b
                        // quorum makes this node the record's leader.
                        tracer.begin(
                            ctx.self_id,
                            self.my_dc,
                            None,
                            Some(key.clone()),
                            Phase::Phase1,
                            ctx.now,
                        );
                    }
                    for &r in &replicas {
                        ctx.send(
                            r,
                            Msg::P1a {
                                key: key.clone(),
                                ballot,
                            },
                        );
                    }
                }
                LeaderAction::Phase2a(payload) => {
                    if let Some(tracer) = &self.tracer {
                        // Classic instance round: closes when the local
                        // acceptor observes the instance advance.
                        tracer.begin(
                            ctx.self_id,
                            self.my_dc,
                            None,
                            Some(key.clone()),
                            Phase::Phase2a,
                            ctx.now,
                        );
                    }
                    for &r in &replicas {
                        ctx.send(
                            r,
                            Msg::P2a {
                                key: key.clone(),
                                payload: Box::new(payload.clone()),
                            },
                        );
                    }
                }
                LeaderAction::RedirectFast(opt) => {
                    // The record reopened fast mode while this option was
                    // queued: hand it back to its coordinator.
                    ctx.send(
                        opt.txn.coordinator,
                        Msg::GoFast {
                            key: key.clone(),
                            opt,
                        },
                    );
                }
            }
        }
    }

    /// Fans a vote out to the proposer (`also`) and to the coordinator of
    /// every option in the cstruct, so recovery-adopted options reach
    /// their transaction managers (learners).
    ///
    /// With `delta_votes` on (the default) the fan-out narrows to the
    /// proposer plus coordinators that can still learn something
    /// (entries this node has an outcome for are settled business at
    /// their coordinator — it produced the Visibility, and stale retries
    /// get `AlreadyResolved`), and each destination receives only the
    /// entry suffix its per-destination [`mdcc_paxos::DeltaCursor`] says
    /// it is missing, plus a digest of the full cstruct. First-contact
    /// destinations get the full vote (nothing to fold into yet);
    /// receivers whose shadows cannot fold a delta (loss, reordering)
    /// come back with a `CstructPull`.
    ///
    /// Legacy mode (`delta_votes = false`) preserves the PR 2 baseline:
    /// the full cstruct to the proposer and every interested
    /// coordinator.
    fn fan_out_vote(&mut self, key: &Key, vote: Phase2b, also: NodeId, ctx: &mut Ctx<'_, Msg>) {
        if !self.cfg.delta_votes {
            let mut sent = HashSet::new();
            sent.insert(also);
            ctx.send(
                also,
                Msg::Vote {
                    key: key.clone(),
                    vote: vote.clone(),
                },
            );
            for entry in vote.cstruct.entries() {
                let coord = entry.opt.txn.coordinator;
                if sent.insert(coord) {
                    ctx.send(
                        coord,
                        Msg::Vote {
                            key: key.clone(),
                            vote: vote.clone(),
                        },
                    );
                }
            }
            return;
        }
        if self.vote_cursors.len() > VOTE_CURSORS_CAP {
            evict_lru_half(&mut self.vote_cursors);
        }
        let mut targets = vec![also];
        if let Some(coords) = self
            .store
            .with_record(key, |rec| rec.learning_coordinators())
        {
            for coord in coords {
                if !targets.contains(&coord) {
                    targets.push(coord);
                }
            }
        }
        // One digest (one cstruct serialization) covers every
        // destination's delta.
        let digest = vote.cstruct.digest();
        self.vote_cursor_clock += 1;
        let entry = self.vote_cursors.entry(key.clone()).or_default();
        entry.touched = self.vote_cursor_clock;
        let cursors = &mut entry.by_dest;
        for to in targets {
            match cursors.entry(to).or_default().position(&vote) {
                Some(from_seq) => ctx.send(
                    to,
                    Msg::VoteDelta {
                        key: key.clone(),
                        delta: mdcc_paxos::DeltaVote::extract_with_digest(&vote, from_seq, digest),
                    },
                ),
                None => ctx.send(
                    to,
                    Msg::Vote {
                        key: key.clone(),
                        vote: vote.clone(),
                    },
                ),
            }
        }
    }

    /// Notifies the co-located leader (if any) that the local acceptor
    /// advanced past its instance.
    fn notify_leader_advance(&mut self, key: &Key, ctx: &mut Ctx<'_, Msg>) {
        let Some(snapshot) = self.store.with_record(key, |r| r.snapshot()) else {
            return;
        };
        if let Some(leader) = self.leaders.get_mut(key) {
            let actions = leader.on_advance(snapshot);
            self.run_leader_actions(key, actions, ctx);
            if let Some(tracer) = &self.tracer {
                // The acceptor advanced past the instance the 2a round
                // targeted; a no-op if no phase2a span is open.
                tracer.end(
                    ctx.self_id,
                    None,
                    Some(key.clone()),
                    Phase::Phase2a,
                    ctx.now,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Dangling-transaction recovery.
    // ------------------------------------------------------------------

    fn start_dangling_recovery(&mut self, txn: TxnId, keys: Arc<[Key]>, ctx: &mut Ctx<'_, Msg>) {
        if self.recoveries.contains_key(&txn) {
            return;
        }
        let mut learners = HashMap::new();
        for key in keys.iter() {
            learners.insert(
                key.clone(),
                Learner::new(
                    self.cfg.replication,
                    self.cfg.classic_quorum,
                    self.cfg.fast_quorum,
                    txn,
                ),
            );
            for r in self.placement.replicas(key) {
                ctx.send(
                    r,
                    Msg::QueryStatus {
                        txn,
                        key: key.clone(),
                    },
                );
            }
        }
        self.recoveries.insert(
            txn,
            RecoveryTask {
                keys,
                learners,
                decided: HashMap::new(),
                recovering_keys: HashSet::new(),
                retries: 0,
            },
        );
        ctx.set_timer(self.cfg.learn_timeout, Msg::RecoveryRetry { txn });
    }

    fn finish_recovery(&mut self, txn: TxnId, outcome: TxnOutcome, ctx: &mut Ctx<'_, Msg>) {
        let Some(task) = self.recoveries.remove(&txn) else {
            return;
        };
        self.stats.dangling_resolved += 1;
        for key in task.keys.iter() {
            let learned_accepted = task
                .decided
                .get(key)
                .map(|s| s.is_accepted())
                .unwrap_or(outcome == TxnOutcome::Committed);
            // This node applies its own verdict directly: routing the
            // self-notification through the (lossy) network risks the
            // one message whose loss leaves the recovery coordinator
            // itself dangling after everyone else has moved on.
            for r in self.placement.replicas(key) {
                if r == ctx.self_id {
                    continue;
                }
                ctx.send(
                    r,
                    Msg::Visibility {
                        txn,
                        key: key.clone(),
                        outcome,
                        learned_accepted,
                    },
                );
            }
            if self.placement.replicas(key).contains(&ctx.self_id) {
                self.apply_visibility_local(txn, key.clone(), outcome, learned_accepted, ctx);
            }
        }
    }

    /// Applies one transaction outcome to one record on this node —
    /// the body of the `Visibility` message handler, also invoked
    /// directly when this node is itself a replica of a record whose
    /// recovery it just finished.
    fn apply_visibility_local(
        &mut self,
        txn: TxnId,
        key: Key,
        outcome: TxnOutcome,
        learned_accepted: bool,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        self.wal_append(
            &WalRecord::Visibility {
                at: ctx.now,
                key: key.clone(),
                txn,
                outcome,
                learned_accepted,
            },
            ctx,
        );
        // A visibility also settles any recovery we were running.
        if self.recoveries.contains_key(&txn) {
            self.finish_recovery(txn, outcome, ctx);
        }
        self.redirected_fast.remove(&txn);
        self.override_forwarded.remove(&txn);
        // A committed option this node never accepted (bounced
        // proposal, divergent ballot mode) lands as a bare
        // outcome: the update cannot execute here and the value
        // silently falls behind every peer that held the entry.
        // Detect it and read-repair the key from a peer replica
        // (the peer ships its committed snapshot plus resolved
        // options; `install_learned` executes what was missed).
        let missed = outcome == TxnOutcome::Committed
            && learned_accepted
            && self
                .store
                .with_record(&key, |r| r.would_miss_execution(txn))
                .unwrap_or(true);
        let advanced = self
            .store
            .apply_visibility(&key, txn, outcome, learned_accepted, ctx.now);
        if let Some(tracer) = &self.tracer {
            // Stretch the coordinator's visibility span to this
            // replica's application time; the harvest closes it
            // at the last replica reached.
            tracer.extend(txn.coordinator, Some(txn), None, Phase::Visibility, ctx.now);
        }
        if advanced {
            self.notify_leader_advance(&key, ctx);
        }
        if missed {
            self.pull_missed_commit(key, txn, 0, ctx);
        }
    }

    /// Read-repairs a committed option whose execution this node missed
    /// (a Visibility landed as a bare outcome): pull the key's sync
    /// payload from a peer replica and re-check on a timer, rotating
    /// peers, until the execution is installed or the attempts run out.
    /// The timer also covers the race where the pull overtakes the
    /// peer's own Visibility.
    fn pull_missed_commit(&mut self, key: Key, txn: TxnId, attempt: u32, ctx: &mut Ctx<'_, Msg>) {
        let peers = self.peer_replicas_of(&key, ctx);
        if peers.is_empty() {
            return;
        }
        if attempt == 0 {
            // Count divergence events, not retry attempts.
            self.stats.missed_commit_pulls += 1;
        }
        let target = peers[(txn.seq as usize + attempt as usize) % peers.len()];
        ctx.send(
            target,
            Msg::SyncRangePull {
                ranges: vec![(key.clone(), key.clone())],
            },
        );
        if attempt < MISSED_PULL_RETRIES {
            ctx.set_timer(
                self.cfg.learn_timeout,
                Msg::MissedPull {
                    key,
                    txn,
                    attempt: attempt + 1,
                },
            );
        }
    }

    fn recovery_check_done(&mut self, txn: TxnId, ctx: &mut Ctx<'_, Msg>) {
        let Some(task) = self.recoveries.get(&txn) else {
            return;
        };
        if task.decided.len() < task.keys.len() {
            return;
        }
        // Deterministic outcome rule — identical to the coordinator's:
        // commit iff every option was learned accepted.
        let all_accepted = task.decided.values().all(|s| s.is_accepted());
        let outcome = if all_accepted {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Aborted
        };
        self.finish_recovery(txn, outcome, ctx);
    }
}

impl Process<Msg> for StorageNodeProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.sweep_interval, Msg::DanglingSweep);
        if self.durable {
            ctx.set_timer(self.cfg.checkpoint_interval, Msg::CheckpointTick);
        }
        if self.recovered.is_some() {
            // Catch up on state missed while down: one round now, then
            // periodic rounds (the final ones, after traffic quiesces,
            // guarantee convergence with never-crashed replicas).
            self.run_sync_round(ctx);
            ctx.set_timer(self.cfg.recovery_sync_interval, Msg::SyncSweep);
        }
        if self.cfg.mastership.enabled {
            // Host the lease/election layer for every shard this node
            // replicates. The node's DC is its acceptor position in the
            // replica group (one replica per DC, in DcId order).
            let mut shards = Vec::new();
            let mut my_dc = DcId(0);
            for shard in 0..self.placement.shard_count() {
                let replicas = self.placement.shard_replicas(shard);
                if let Some(idx) = replicas.iter().position(|n| *n == ctx.self_id) {
                    my_dc = DcId(idx as u8);
                    shards.push((shard, replicas));
                }
            }
            if !shards.is_empty() {
                let recovered_at = self.recovered.is_some().then_some(ctx.now);
                let mut ms = Mastership::new(
                    self.cfg.mastership.clone(),
                    ctx.self_id,
                    my_dc,
                    shards,
                    recovered_at,
                );
                if let Some(audit) = &self.lease_audit {
                    ms.set_audit(audit.clone());
                }
                self.mastership = Some(ms);
                // Stagger first ticks by node id so heartbeats across
                // nodes do not land on the same instants.
                let stagger = SimDuration::from_micros((ctx.self_id.0 as u64 % 17) * 313);
                ctx.set_timer(
                    self.cfg.mastership.heartbeat_interval + stagger,
                    Msg::MsTick,
                );
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Propose(opt) => {
                let key = opt.key.clone();
                let txn = opt.txn;
                self.wal_append(
                    &WalRecord::FastPropose {
                        at: ctx.now,
                        opt: opt.clone(),
                    },
                    ctx,
                );
                match self.store.fast_propose(opt.clone(), ctx.now) {
                    FastPropose::Vote(vote) => {
                        self.stats.fast_votes += 1;
                        self.fan_out_vote(&key, vote, from, ctx);
                    }
                    FastPropose::NotFast { promised } => {
                        self.stats.not_fast_bounces += 1;
                        ctx.send(from, Msg::NotFast { key, opt, promised });
                    }
                    FastPropose::InstanceFull => {
                        self.stats.instance_full += 1;
                        ctx.send(from, Msg::InstanceFull { key, opt });
                    }
                    FastPropose::AlreadyResolved(outcome) => {
                        ctx.send(from, Msg::AlreadyResolved { key, txn, outcome });
                    }
                }
            }
            Msg::ProposeToMaster(opt) => {
                self.lead_classic(from, opt, ctx);
            }
            Msg::ProposeMastered { origin_dc, opt } => {
                let shard = self.placement.shard_id(&opt.key);
                let (serving, holder) = match &self.mastership {
                    Some(ms) => (ms.is_serving(shard, ctx.now), ms.holder(shard, ctx.now)),
                    None => (false, None),
                };
                if serving {
                    // Record-level override: this record's classic
                    // traffic belongs elsewhere even though we hold the
                    // shard lease. Forward and teach the coordinator
                    // the record-granular route.
                    if let Some(node) = self.record_override_target(&opt.key, ctx.self_id) {
                        if self.override_forwarded.len() > REDIRECTED_FAST_CAP {
                            self.override_forwarded.clear();
                        }
                        if self.override_forwarded.insert(opt.txn) {
                            if let Some(ms) = self.mastership.as_mut() {
                                ms.note_forwarded();
                            }
                            ctx.send(
                                opt.txn.coordinator,
                                Msg::RecordHint {
                                    key: opt.key.clone(),
                                    node,
                                },
                            );
                            ctx.send(node, Msg::ProposeMastered { origin_dc, opt });
                            return;
                        }
                        // Forwarded once already and the proposal came
                        // back: the target is deposed, crashed, or not
                        // serving this record anymore. Retire the
                        // override (routing only — acceptor promises
                        // still arbitrate) and lead locally; classic
                        // ballots outrank any stale promise. Re-teach
                        // the coordinator so future traffic for this
                        // record routes here directly.
                        if let Some(table) = self.lease_overrides.get_mut(&shard) {
                            table.remove(record_id(opt.key.pk.as_bytes()));
                        }
                        ctx.send(
                            opt.txn.coordinator,
                            Msg::RecordHint {
                                key: opt.key.clone(),
                                node: ctx.self_id,
                            },
                        );
                    }
                    if let Some(ms) = self.mastership.as_mut() {
                        ms.note_served(shard, origin_dc);
                    }
                    self.lead_classic(from, opt, ctx);
                } else if let Some(node) = holder.filter(|n| *n != ctx.self_id) {
                    // Not the holder, but we know who is: forward the
                    // proposal and teach the coordinator the route.
                    if let Some(ms) = self.mastership.as_mut() {
                        ms.note_forwarded();
                    }
                    ctx.send(opt.txn.coordinator, Msg::MasterHint { shard, node });
                    ctx.send(node, Msg::ProposeMastered { origin_dc, opt });
                } else {
                    // No live lease this node knows of (election still in
                    // progress, or mastership disabled here): lead
                    // classically. Safe regardless of leases — classic
                    // Paxos ballots arbitrate — and keeps writes
                    // available through election windows.
                    self.lead_classic(from, opt, ctx);
                }
            }
            Msg::MasterHint { .. } | Msg::RecordHint { .. } => {
                // TM-side routing hints; nothing for a storage node.
            }
            Msg::Mastership(inner) => {
                if let MsMsg::Overrides { shard, runs } = inner {
                    // Host-level payload: a migrating predecessor ships
                    // its per-record override table to this successor.
                    self.install_override_runs(shard, &runs, ctx);
                    return;
                }
                let mut out = Vec::new();
                if let Some(ms) = self.mastership.as_mut() {
                    ms.on_msg(from, inner, ctx.now, &mut out);
                }
                self.flush_ms_actions(out, ctx);
            }
            Msg::StartRecovery { key } => {
                let actions = self.leader_for(&key, ctx).start_recovery();
                self.run_leader_actions(&key, actions, ctx);
            }
            Msg::P1a { key, ballot } => {
                self.enforce_floor(&key, ctx);
                self.wal_append(
                    &WalRecord::Phase1a {
                        key: key.clone(),
                        ballot,
                    },
                    ctx,
                );
                let payload = self.store.phase1a(&key, ballot);
                ctx.send(from, Msg::P1b { key, payload });
            }
            Msg::P1b { key, payload } => {
                let Some(idx) = self.placement.acceptor_index(&key, from) else {
                    return;
                };
                if let Some(leader) = self.leaders.get_mut(&key) {
                    let actions = leader.on_phase1b(idx, payload);
                    self.run_leader_actions(&key, actions, ctx);
                    let leading = self
                        .leaders
                        .get(&key)
                        .map(|l| l.is_leading())
                        .unwrap_or(false);
                    if leading {
                        if let Some(tracer) = &self.tracer {
                            tracer.end(ctx.self_id, None, Some(key), Phase::Phase1, ctx.now);
                        }
                    }
                }
            }
            Msg::P2a { key, payload } => {
                self.enforce_floor(&key, ctx);
                // Lease-carried-Phase1 warm guard: a pipelined append
                // (`safe = None`) from a ballot this record has not
                // accepted yet, landing on a non-empty current-instance
                // cstruct, would fork that ballot's serialized stream —
                // acceptors in the stream hold the leader's entries,
                // this one would hold strays from a deposed leader, and
                // the learner's quorum-GLB can never converge across
                // the fork. Classic Phase1 prevents this by re-basing
                // every acceptor with a proved-safe cstruct; a lease
                // holder that skipped Phase1 never sent one, so the
                // warm record bounces the append and the holder falls
                // back to a full Phase1 round. Cold records (empty
                // cstruct — the first-touch case the optimization
                // exists for) are unaffected. Nothing is logged or
                // mutated here, so crash replay cannot diverge.
                if self.lease_phase1_on()
                    && payload.safe.is_none()
                    && self
                        .store
                        .with_record(&key, |r| {
                            r.accepted_ballot() != Some(payload.ballot) && !r.cstruct().is_empty()
                        })
                        .unwrap_or(false)
                {
                    let promised = self
                        .store
                        .with_record(&key, |r| r.promised())
                        .unwrap_or(payload.ballot)
                        .max(payload.ballot);
                    ctx.send(from, Msg::P2aNack { key, promised });
                    return;
                }
                self.wal_append(
                    &WalRecord::ClassicAccept {
                        at: ctx.now,
                        key: key.clone(),
                        payload: payload.clone(),
                    },
                    ctx,
                );
                let before = self.store.version_of(&key);
                match self.store.classic_accept(&key, *payload, ctx.now) {
                    ClassicAccept::Vote(vote) => {
                        self.stats.classic_votes += 1;
                        self.fan_out_vote(&key, vote, from, ctx);
                    }
                    ClassicAccept::Nack { promised } => {
                        ctx.send(
                            from,
                            Msg::P2aNack {
                                key: key.clone(),
                                promised,
                            },
                        );
                    }
                    ClassicAccept::Stale { snapshot } => {
                        ctx.send(
                            from,
                            Msg::P2aStale {
                                key: key.clone(),
                                snapshot,
                            },
                        );
                    }
                }
                if self.store.version_of(&key) != before {
                    self.notify_leader_advance(&key, ctx);
                }
            }
            Msg::P2aNack { key, promised } => {
                self.note_record_override(&key, promised, ctx);
                if let Some(leader) = self.leaders.get_mut(&key) {
                    let actions = leader.on_nack(promised);
                    self.run_leader_actions(&key, actions, ctx);
                }
            }
            Msg::P2aStale { key, snapshot } => {
                if let Some(leader) = self.leaders.get_mut(&key) {
                    let actions = leader.on_stale(snapshot);
                    self.run_leader_actions(&key, actions, ctx);
                }
            }
            Msg::Visibility {
                txn,
                key,
                outcome,
                learned_accepted,
            } => {
                self.apply_visibility_local(txn, key, outcome, learned_accepted, ctx);
            }
            Msg::SyncReq => {
                // A restarted peer wants to catch up: ship the committed
                // snapshot plus the resolved options of the current
                // instance for every record we hold.
                for key in self.store.keys() {
                    let Some((snapshot, resolved)) = self
                        .store
                        .with_record(&key, |rec| (rec.snapshot(), rec.sync_payload()))
                    else {
                        continue;
                    };
                    ctx.send(
                        from,
                        Msg::SyncKey {
                            key,
                            snapshot,
                            resolved,
                        },
                    );
                }
            }
            Msg::SyncKey {
                key,
                snapshot,
                resolved,
            } => {
                self.apply_sync_item(key, snapshot, resolved, ctx);
            }
            Msg::SyncDigestReq => {
                // A restarted peer opens a merkle round: advertise range
                // digests of everything we hold; full state only ships
                // for ranges the peer finds divergent.
                let ranges = self.store.sync_ranges(self.cfg.sync_chunk_keys);
                if !ranges.is_empty() {
                    ctx.send(from, Msg::SyncDigest { ranges });
                }
            }
            Msg::SyncDigest { ranges } => {
                // Compare the advertised ranges against local state in
                // one pass and pull only the ones whose digests differ.
                let divergent = self.store.divergent_ranges(&ranges);
                if !divergent.is_empty() {
                    ctx.send(from, Msg::SyncRangePull { ranges: divergent });
                }
            }
            Msg::SyncRangePull { ranges } => {
                for (lo, hi) in ranges {
                    let items = self.store.sync_items_in(&lo, &hi);
                    for chunk in items.chunks(self.cfg.sync_chunk_keys.max(1)) {
                        ctx.send(
                            from,
                            Msg::SyncChunk {
                                items: chunk.to_vec(),
                            },
                        );
                    }
                }
            }
            Msg::SyncChunk { items } => {
                for item in items {
                    self.apply_sync_item(item.key, item.snapshot, item.resolved, ctx);
                }
            }
            Msg::ReadReq { req, key } => {
                let (version, value) = match self.store.read_committed(&key) {
                    Some((v, row)) => (v, Some(row)),
                    None => (self.store.version_of(&key), None),
                };
                ctx.send(
                    from,
                    Msg::ReadResp {
                        req,
                        key,
                        version,
                        value,
                    },
                );
            }
            Msg::CstructPull { key } => {
                // A receiver's shadow view diverged (lost delta, missed
                // epoch): read-repair with the full current vote.
                self.stats.repair_served += 1;
                let vote = self
                    .store
                    .with_record(&key, |rec| rec.phase2b())
                    .unwrap_or_else(absent_vote);
                ctx.send(from, Msg::CstructFull { key, vote });
            }
            Msg::QueryStatus { txn, key } => {
                let (vote, outcome) = self
                    .store
                    .with_record(&key, |rec| (rec.phase2b(), rec.outcome_of(txn)))
                    .unwrap_or_else(|| (absent_vote(), None));
                ctx.send(
                    from,
                    Msg::StatusResp {
                        txn,
                        key,
                        vote,
                        outcome,
                    },
                );
            }
            Msg::StatusResp {
                txn,
                key,
                vote,
                outcome,
            } => {
                if let Some(outcome) = outcome {
                    // Someone already knows the verdict: just propagate it.
                    if self.recoveries.contains_key(&txn) {
                        self.finish_recovery(txn, outcome, ctx);
                    }
                    return;
                }
                let Some(idx) = self.placement.acceptor_index(&key, from) else {
                    return;
                };
                let Some(task) = self.recoveries.get_mut(&txn) else {
                    return;
                };
                let Some(learner) = task.learners.get_mut(&key) else {
                    return;
                };
                match learner.on_vote(idx, vote) {
                    LearnOutcome::Learned(status) => {
                        task.decided.insert(key, status);
                        self.recovery_check_done(txn, ctx);
                    }
                    LearnOutcome::Collision => {
                        if task.recovering_keys.insert(key.clone()) {
                            let master = self.placement.master(&key);
                            ctx.send(master, Msg::StartRecovery { key });
                        }
                    }
                    LearnOutcome::Undecided => {}
                }
            }
            Msg::NotFast { .. }
            | Msg::InstanceFull { .. }
            | Msg::AlreadyResolved { .. }
            | Msg::GoFast { .. }
            | Msg::Vote { .. }
            | Msg::VoteDelta { .. }
            | Msg::CstructFull { .. }
            | Msg::ReadResp { .. } => {
                // TM-side messages; a storage node can receive them only
                // if it acted as a recovery coordinator whose task is
                // already finished — ignore.
            }
            Msg::LearnTimeout { .. }
            | Msg::ReadRetry { .. }
            | Msg::DanglingSweep
            | Msg::RecoveryRetry { .. }
            | Msg::MissedPull { .. }
            | Msg::CheckpointTick
            | Msg::SyncSweep
            | Msg::ClientTick
            | Msg::MsTick => {
                // Timer payloads arrive via on_timer, not as messages.
            }
        }
    }

    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::DanglingSweep => {
                let dangling = self.store.dangling(ctx.now);
                for p in dangling {
                    self.start_dangling_recovery(p.txn, p.peers, ctx);
                }
                ctx.set_timer(self.sweep_interval, Msg::DanglingSweep);
            }
            Msg::RecoveryRetry { txn } => {
                let Some(task) = self.recoveries.get_mut(&txn) else {
                    return;
                };
                task.retries += 1;
                let give_up = task.retries >= RECOVERY_ABANDON_RETRIES;
                let n = self.cfg.replication;
                // Re-query undecided keys; re-trigger master recovery for
                // keys that still cannot be learned; after enough rounds,
                // declare options nobody holds as dead (see RecoveryTask).
                let mut undecided: Vec<Key> = Vec::new();
                for k in task.keys.iter() {
                    if task.decided.contains_key(k) {
                        continue;
                    }
                    let learner = &task.learners[k];
                    if give_up && learner.responses() == n && !learner.seen_at_latest() {
                        task.decided.insert(
                            k.clone(),
                            OptionStatus::Rejected(mdcc_common::error::AbortReason::Resolved),
                        );
                    } else {
                        undecided.push(k.clone());
                    }
                }
                let attempt = task.retries;
                for key in undecided {
                    for r in self.placement.replicas(&key) {
                        ctx.send(
                            r,
                            Msg::QueryStatus {
                                txn,
                                key: key.clone(),
                            },
                        );
                    }
                    // Rotate the recovery leader in case the default
                    // master's data center is down (§3.2.3); stay on one
                    // target for a few sweeps to avoid dueling leaders.
                    let replicas = self.placement.replicas(&key);
                    let start = self.placement.master_dc(&key).0 as usize;
                    let target = replicas[(start + attempt as usize / 3) % replicas.len()];
                    ctx.send(target, Msg::StartRecovery { key });
                }
                self.recovery_check_done(txn, ctx);
                if self.recoveries.contains_key(&txn) {
                    ctx.set_timer(self.cfg.learn_timeout, Msg::RecoveryRetry { txn });
                }
            }
            Msg::MissedPull { key, txn, attempt } => {
                let still_missing = self
                    .store
                    .with_record(&key, |r| r.missing_execution(txn))
                    .unwrap_or(true);
                if still_missing {
                    self.pull_missed_commit(key, txn, attempt, ctx);
                }
            }
            Msg::CheckpointTick if self.durable => {
                if let Some(disk) = ctx.disk() {
                    write_checkpoint(disk, &self.store);
                    self.stats.checkpoints += 1;
                }
                // A checkpoint truncates the WAL; re-append the live
                // lease floors and overrides in deterministic order so
                // the tail alone always carries the full lease state
                // (`mdcc_recovery::recovered_leases` reads only it).
                let mut floors: Vec<(u32, MsBallot)> =
                    self.lease_floors.iter().map(|(s, b)| (*s, *b)).collect();
                floors.sort_unstable_by_key(|(s, _)| *s);
                for (shard, b) in floors {
                    self.wal_append(
                        &WalRecord::LeaseFloor {
                            shard,
                            n: b.n,
                            pid: b.pid,
                        },
                        ctx,
                    );
                }
                let mut shards: Vec<u32> = self.lease_overrides.keys().copied().collect();
                shards.sort_unstable();
                for shard in shards {
                    let entries = self
                        .lease_overrides
                        .get(&shard)
                        .map(|t| t.iter_sorted())
                        .unwrap_or_default();
                    for (record, b) in entries {
                        self.wal_append(
                            &WalRecord::LeaseOverride {
                                shard,
                                record,
                                n: b.n,
                                pid: b.pid,
                            },
                            ctx,
                        );
                    }
                }
                ctx.set_timer(self.cfg.checkpoint_interval, Msg::CheckpointTick);
            }
            Msg::MsTick => {
                let mut out = Vec::new();
                let Some(ms) = self.mastership.as_mut() else {
                    return;
                };
                let next = ms.on_tick(ctx.now, &mut out);
                self.flush_ms_actions(out, ctx);
                ctx.set_timer(next, Msg::MsTick);
            }
            Msg::SyncSweep => {
                if self.stats.sync_adoptions == self.last_sync_adoptions {
                    self.sync_idle_rounds += 1;
                } else {
                    self.last_sync_adoptions = self.stats.sync_adoptions;
                    self.sync_idle_rounds = 0;
                }
                // Stop only after strictly more quiet rounds than there
                // are peers: a full rotation — including at least one
                // live, never-crashed replica — found nothing to repair.
                if self.sync_idle_rounds > self.cfg.replication as u32 {
                    return;
                }
                self.run_sync_round(ctx);
                ctx.set_timer(self.cfg.recovery_sync_interval, Msg::SyncSweep);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::TableId;

    #[test]
    fn cursor_eviction_keeps_the_recently_touched_half() {
        let mut cursors: HashMap<Key, CursorEntry> = HashMap::new();
        for i in 0..101u64 {
            cursors.insert(
                Key::new(TableId(1), format!("k{i}")),
                CursorEntry {
                    touched: i + 1,
                    by_dest: HashMap::new(),
                },
            );
        }
        evict_lru_half(&mut cursors);
        assert_eq!(cursors.len(), 50, "at least half evicted");
        // Exactly the most recently touched entries survive.
        assert!(cursors.values().all(|e| e.touched > 51));
        assert!(cursors.contains_key(&Key::new(TableId(1), "k100")));
        assert!(!cursors.contains_key(&Key::new(TableId(1), "k0")));
    }
}

//! Byte-accurate wire encoding of [`Msg`].
//!
//! The simulator charges transmission delay, link queueing and per-byte
//! service cost for [`NetMessage::wire_bytes`], so every protocol
//! message must know its canonical encoded size. The encoding reuses the
//! shared wire layer ([`mdcc_common::wire`]) that also defines the WAL
//! and checkpoint formats — one set of bytes for disk and network.
//!
//! Traffic-class mapping (drives the byte breakdown in experiment
//! reports): reads are [`TrafficClass::Read`], all anti-entropy sync
//! traffic is [`TrafficClass::Sync`], everything else — proposals,
//! votes, Phase1/2, visibility, recovery — is [`TrafficClass::Protocol`].

use mdcc_common::wire::{err, frame, wire_len, Dec, Enc, Wire, WireResult, FRAME_OVERHEAD};
use mdcc_common::{Key, TxnId};
use mdcc_paxos::acceptor::{Phase1b, Phase2a, Phase2b, RecordSnapshot};
use mdcc_paxos::{Ballot, DeltaVote, TxnOutcome};
use mdcc_sim::{NetMessage, TrafficClass};

use crate::msg::Msg;

impl Wire for Msg {
    fn encode(&self, out: &mut Enc) {
        match self {
            Msg::Propose(opt) => {
                out.u8(0);
                opt.encode(out);
            }
            Msg::ProposeToMaster(opt) => {
                out.u8(1);
                opt.encode(out);
            }
            Msg::Visibility {
                txn,
                key,
                outcome,
                learned_accepted,
            } => {
                out.u8(2);
                txn.encode(out);
                key.encode(out);
                outcome.encode(out);
                out.bool(*learned_accepted);
            }
            Msg::StartRecovery { key } => {
                out.u8(3);
                key.encode(out);
            }
            Msg::Vote { key, vote } => {
                out.u8(4);
                key.encode(out);
                vote.encode(out);
            }
            Msg::NotFast { key, opt, promised } => {
                out.u8(5);
                key.encode(out);
                opt.encode(out);
                promised.encode(out);
            }
            Msg::InstanceFull { key, opt } => {
                out.u8(6);
                key.encode(out);
                opt.encode(out);
            }
            Msg::AlreadyResolved { key, txn, outcome } => {
                out.u8(7);
                key.encode(out);
                txn.encode(out);
                outcome.encode(out);
            }
            Msg::GoFast { key, opt } => {
                out.u8(8);
                key.encode(out);
                opt.encode(out);
            }
            Msg::P1a { key, ballot } => {
                out.u8(9);
                key.encode(out);
                ballot.encode(out);
            }
            Msg::P1b { key, payload } => {
                out.u8(10);
                key.encode(out);
                payload.encode(out);
            }
            Msg::P2a { key, payload } => {
                out.u8(11);
                key.encode(out);
                payload.as_ref().encode(out);
            }
            Msg::P2aNack { key, promised } => {
                out.u8(12);
                key.encode(out);
                promised.encode(out);
            }
            Msg::P2aStale { key, snapshot } => {
                out.u8(13);
                key.encode(out);
                snapshot.encode(out);
            }
            Msg::ReadReq { req, key } => {
                out.u8(14);
                out.u64(*req);
                key.encode(out);
            }
            Msg::ReadResp {
                req,
                key,
                version,
                value,
            } => {
                out.u8(15);
                out.u64(*req);
                key.encode(out);
                version.encode(out);
                value.encode(out);
            }
            Msg::QueryStatus { txn, key } => {
                out.u8(16);
                txn.encode(out);
                key.encode(out);
            }
            Msg::StatusResp {
                txn,
                key,
                vote,
                outcome,
            } => {
                out.u8(17);
                txn.encode(out);
                key.encode(out);
                vote.encode(out);
                outcome.encode(out);
            }
            Msg::SyncReq => out.u8(18),
            Msg::SyncKey {
                key,
                snapshot,
                resolved,
            } => {
                out.u8(19);
                key.encode(out);
                snapshot.encode(out);
                resolved.encode(out);
            }
            Msg::SyncDigestReq => out.u8(20),
            Msg::SyncDigest { ranges } => {
                out.u8(21);
                ranges.encode(out);
            }
            Msg::SyncRangePull { ranges } => {
                out.u8(22);
                ranges.encode(out);
            }
            Msg::SyncChunk { items } => {
                out.u8(23);
                items.encode(out);
            }
            Msg::LearnTimeout { txn } => {
                out.u8(24);
                txn.encode(out);
            }
            Msg::ReadRetry { token } => {
                out.u8(25);
                out.u64(*token);
            }
            Msg::DanglingSweep => out.u8(26),
            Msg::RecoveryRetry { txn } => {
                out.u8(27);
                txn.encode(out);
            }
            Msg::CheckpointTick => out.u8(28),
            Msg::SyncSweep => out.u8(29),
            Msg::ClientTick => out.u8(30),
            Msg::VoteDelta { key, delta } => {
                out.u8(31);
                key.encode(out);
                delta.encode(out);
            }
            Msg::CstructPull { key } => {
                out.u8(32);
                key.encode(out);
            }
            Msg::CstructFull { key, vote } => {
                out.u8(33);
                key.encode(out);
                vote.encode(out);
            }
            Msg::MissedPull { key, txn, attempt } => {
                out.u8(34);
                key.encode(out);
                txn.encode(out);
                out.u32(*attempt);
            }
            Msg::Mastership(inner) => {
                out.u8(35);
                inner.encode(out);
            }
            Msg::ProposeMastered { origin_dc, opt } => {
                out.u8(36);
                origin_dc.encode(out);
                opt.encode(out);
            }
            Msg::MasterHint { shard, node } => {
                out.u8(37);
                out.u32(*shard);
                node.encode(out);
            }
            Msg::MsTick => out.u8(38),
            Msg::RecordHint { key, node } => {
                out.u8(39);
                key.encode(out);
                node.encode(out);
            }
        }
    }

    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(match inp.u8()? {
            0 => Msg::Propose(Wire::decode(inp)?),
            1 => Msg::ProposeToMaster(Wire::decode(inp)?),
            2 => Msg::Visibility {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                outcome: TxnOutcome::decode(inp)?,
                learned_accepted: inp.bool()?,
            },
            3 => Msg::StartRecovery {
                key: Key::decode(inp)?,
            },
            4 => Msg::Vote {
                key: Key::decode(inp)?,
                vote: Phase2b::decode(inp)?,
            },
            5 => Msg::NotFast {
                key: Key::decode(inp)?,
                opt: Wire::decode(inp)?,
                promised: Ballot::decode(inp)?,
            },
            6 => Msg::InstanceFull {
                key: Key::decode(inp)?,
                opt: Wire::decode(inp)?,
            },
            7 => Msg::AlreadyResolved {
                key: Key::decode(inp)?,
                txn: TxnId::decode(inp)?,
                outcome: TxnOutcome::decode(inp)?,
            },
            8 => Msg::GoFast {
                key: Key::decode(inp)?,
                opt: Wire::decode(inp)?,
            },
            9 => Msg::P1a {
                key: Key::decode(inp)?,
                ballot: Ballot::decode(inp)?,
            },
            10 => Msg::P1b {
                key: Key::decode(inp)?,
                payload: Phase1b::decode(inp)?,
            },
            11 => Msg::P2a {
                key: Key::decode(inp)?,
                payload: Box::new(Phase2a::decode(inp)?),
            },
            12 => Msg::P2aNack {
                key: Key::decode(inp)?,
                promised: Ballot::decode(inp)?,
            },
            13 => Msg::P2aStale {
                key: Key::decode(inp)?,
                snapshot: RecordSnapshot::decode(inp)?,
            },
            14 => Msg::ReadReq {
                req: inp.u64()?,
                key: Key::decode(inp)?,
            },
            15 => Msg::ReadResp {
                req: inp.u64()?,
                key: Key::decode(inp)?,
                version: Wire::decode(inp)?,
                value: Option::decode(inp)?,
            },
            16 => Msg::QueryStatus {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
            },
            17 => Msg::StatusResp {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                vote: Phase2b::decode(inp)?,
                outcome: Option::decode(inp)?,
            },
            18 => Msg::SyncReq,
            19 => Msg::SyncKey {
                key: Key::decode(inp)?,
                snapshot: RecordSnapshot::decode(inp)?,
                resolved: Vec::decode(inp)?,
            },
            20 => Msg::SyncDigestReq,
            21 => Msg::SyncDigest {
                ranges: Vec::decode(inp)?,
            },
            22 => Msg::SyncRangePull {
                ranges: Vec::decode(inp)?,
            },
            23 => Msg::SyncChunk {
                items: Vec::decode(inp)?,
            },
            24 => Msg::LearnTimeout {
                txn: TxnId::decode(inp)?,
            },
            25 => Msg::ReadRetry { token: inp.u64()? },
            26 => Msg::DanglingSweep,
            27 => Msg::RecoveryRetry {
                txn: TxnId::decode(inp)?,
            },
            28 => Msg::CheckpointTick,
            29 => Msg::SyncSweep,
            30 => Msg::ClientTick,
            31 => Msg::VoteDelta {
                key: Key::decode(inp)?,
                delta: DeltaVote::decode(inp)?,
            },
            32 => Msg::CstructPull {
                key: Key::decode(inp)?,
            },
            33 => Msg::CstructFull {
                key: Key::decode(inp)?,
                vote: Phase2b::decode(inp)?,
            },
            34 => Msg::MissedPull {
                key: Key::decode(inp)?,
                txn: TxnId::decode(inp)?,
                attempt: inp.u32()?,
            },
            35 => Msg::Mastership(Wire::decode(inp)?),
            36 => Msg::ProposeMastered {
                origin_dc: Wire::decode(inp)?,
                opt: Wire::decode(inp)?,
            },
            37 => Msg::MasterHint {
                shard: inp.u32()?,
                node: Wire::decode(inp)?,
            },
            38 => Msg::MsTick,
            39 => Msg::RecordHint {
                key: Key::decode(inp)?,
                node: Wire::decode(inp)?,
            },
            _ => return err("msg tag"),
        })
    }
}

impl NetMessage for Msg {
    /// Framed size of the message's canonical encoding — what the
    /// message occupies on the simulated wire. Sized through the codec's
    /// thread-local scratch buffer: this runs once per send, so it must
    /// not allocate.
    fn wire_bytes(&self) -> usize {
        wire_len(self) + FRAME_OVERHEAD
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            Msg::ReadReq { .. } | Msg::ReadResp { .. } => TrafficClass::Read,
            Msg::SyncReq
            | Msg::SyncKey { .. }
            | Msg::SyncDigestReq
            | Msg::SyncDigest { .. }
            | Msg::SyncRangePull { .. }
            | Msg::SyncChunk { .. } => TrafficClass::Sync,
            Msg::CstructPull { .. } | Msg::CstructFull { .. } => TrafficClass::Repair,
            _ => TrafficClass::Protocol,
        }
    }
}

/// Frames one message exactly as [`NetMessage::wire_bytes`] accounts it
/// (tests and tooling).
pub fn frame_msg(msg: &Msg) -> Vec<u8> {
    frame(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::wire::{from_bytes, to_bytes};
    use mdcc_common::{CommutativeUpdate, DcId, NodeId, Row, TableId, UpdateOp, Version};
    use mdcc_mastership::{Ballot as MsBallot, HolderHint, MsMsg, OverrideRun};
    use mdcc_paxos::{CStruct, OptionStatus, Resolution, TxnOption};
    use mdcc_storage::{SyncItem, SyncRange};

    fn full_vote(cstruct: CStruct) -> Phase2b {
        Phase2b {
            ballot: Ballot::INITIAL_FAST,
            version: Version(1),
            cstruct,
            epoch: 0,
        }
    }

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    fn opt(seq: u64) -> TxnOption {
        TxnOption::solo(
            TxnId::new(NodeId(3), seq),
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        )
    }

    fn samples() -> Vec<Msg> {
        let mut cstruct = CStruct::new();
        cstruct.append(opt(4), OptionStatus::Accepted);
        let snapshot = RecordSnapshot {
            version: Version(3),
            value: Some(Row::new().with("stock", 7)),
            folded: vec![TxnId::new(NodeId(1), 9)],
        };
        vec![
            Msg::Propose(opt(1)),
            Msg::ProposeToMaster(opt(2)),
            Msg::Visibility {
                txn: TxnId::new(NodeId(0), 5),
                key: key("a"),
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
            Msg::StartRecovery { key: key("b") },
            Msg::Vote {
                key: key("a"),
                vote: Phase2b {
                    ballot: Ballot::INITIAL_FAST,
                    version: Version(2),
                    cstruct: cstruct.clone(),
                    epoch: 1,
                },
            },
            Msg::VoteDelta {
                key: key("a"),
                delta: DeltaVote {
                    ballot: Ballot::INITIAL_FAST,
                    version: Version(2),
                    epoch: 1,
                    from_seq: 1,
                    entries: cstruct.entries().cloned().collect(),
                    digest: cstruct.digest(),
                    full_len: 2,
                },
            },
            Msg::CstructPull { key: key("a") },
            Msg::CstructFull {
                key: key("a"),
                vote: Phase2b {
                    ballot: Ballot::INITIAL_FAST,
                    version: Version(2),
                    cstruct: cstruct.clone(),
                    epoch: 4,
                },
            },
            Msg::NotFast {
                key: key("a"),
                opt: opt(3),
                promised: Ballot::classic(1, NodeId(2)),
            },
            Msg::InstanceFull {
                key: key("a"),
                opt: opt(9),
            },
            Msg::AlreadyResolved {
                key: key("a"),
                txn: TxnId::new(NodeId(0), 1),
                outcome: TxnOutcome::Aborted,
            },
            Msg::GoFast {
                key: key("a"),
                opt: opt(8),
            },
            Msg::P1a {
                key: key("a"),
                ballot: Ballot::classic(4, NodeId(1)),
            },
            Msg::P1b {
                key: key("a"),
                payload: Phase1b {
                    promised: Ballot::classic(4, NodeId(1)),
                    accepted: Some((Ballot::fast(1, NodeId(0)), cstruct.clone())),
                    snapshot: snapshot.clone(),
                },
            },
            Msg::P2a {
                key: key("a"),
                payload: Box::new(Phase2a {
                    ballot: Ballot::classic(4, NodeId(1)),
                    version: Version(3),
                    snapshot: snapshot.clone(),
                    safe: Some(cstruct.clone()),
                    new_options: vec![opt(11)],
                    close_instance: true,
                    reopen_fast: Some(Ballot::fast(5, NodeId(1))),
                }),
            },
            Msg::P2aNack {
                key: key("a"),
                promised: Ballot::classic(9, NodeId(0)),
            },
            Msg::P2aStale {
                key: key("a"),
                snapshot: snapshot.clone(),
            },
            Msg::ReadReq {
                req: 7,
                key: key("c"),
            },
            Msg::ReadResp {
                req: 7,
                key: key("c"),
                version: Version(1),
                value: Some(Row::new().with("stock", 4)),
            },
            Msg::QueryStatus {
                txn: TxnId::new(NodeId(2), 2),
                key: key("a"),
            },
            Msg::StatusResp {
                txn: TxnId::new(NodeId(2), 2),
                key: key("a"),
                vote: Phase2b {
                    ballot: Ballot::INITIAL_FAST,
                    version: Version(0),
                    cstruct: CStruct::new(),
                    epoch: 0,
                },
                outcome: Some(TxnOutcome::Committed),
            },
            Msg::SyncReq,
            Msg::SyncKey {
                key: key("a"),
                snapshot: snapshot.clone(),
                resolved: vec![(
                    opt(12),
                    Resolution {
                        outcome: TxnOutcome::Committed,
                        learned_accepted: true,
                    },
                )],
            },
            Msg::SyncDigestReq,
            Msg::SyncDigest {
                ranges: vec![SyncRange {
                    lo: key("a"),
                    hi: key("m"),
                    digest: 0xDEAD_BEEF,
                }],
            },
            Msg::SyncRangePull {
                ranges: vec![(key("a"), key("m"))],
            },
            Msg::SyncChunk {
                items: vec![SyncItem {
                    key: key("a"),
                    snapshot,
                    resolved: vec![(
                        opt(13),
                        Resolution {
                            outcome: TxnOutcome::Aborted,
                            learned_accepted: false,
                        },
                    )],
                }],
            },
            Msg::LearnTimeout {
                txn: TxnId::new(NodeId(0), 3),
            },
            Msg::MissedPull {
                key: key("a"),
                txn: TxnId::new(NodeId(0), 6),
                attempt: 2,
            },
            Msg::ReadRetry { token: 42 },
            Msg::DanglingSweep,
            Msg::RecoveryRetry {
                txn: TxnId::new(NodeId(0), 3),
            },
            Msg::CheckpointTick,
            Msg::SyncSweep,
            Msg::ClientTick,
            Msg::Mastership(MsMsg::HbReq { shard: 3, round: 7 }),
            Msg::Mastership(MsMsg::HbReply {
                shard: 3,
                round: 7,
                ballot: MsBallot::new(2, 4),
                holder: Some(HolderHint {
                    ballot: MsBallot::new(2, 4),
                    node: NodeId(4),
                    expiry: mdcc_common::SimTime::ZERO + mdcc_common::SimDuration::from_millis(500),
                }),
            }),
            Msg::Mastership(MsMsg::Acquire {
                shard: 1,
                ballot: MsBallot::new(3, 2),
                expiry: mdcc_common::SimTime::ZERO + mdcc_common::SimDuration::from_millis(900),
                relinquished: Some(MsBallot::new(2, 0)),
            }),
            Msg::Mastership(MsMsg::Grant {
                shard: 1,
                ballot: MsBallot::new(3, 2),
                expiry: mdcc_common::SimTime::ZERO + mdcc_common::SimDuration::from_millis(900),
                prev: Some((
                    MsBallot::new(2, 0),
                    mdcc_common::SimTime::ZERO + mdcc_common::SimDuration::from_millis(650),
                )),
            }),
            Msg::Mastership(MsMsg::Reject {
                shard: 1,
                max: MsBallot::new(5, 4),
            }),
            Msg::Mastership(MsMsg::Handoff {
                shard: 2,
                ballot: MsBallot::new(4, 1),
                relinquished: MsBallot::new(3, 0),
            }),
            Msg::ProposeMastered {
                origin_dc: DcId(2),
                opt: opt(14),
            },
            Msg::MasterHint {
                shard: 4,
                node: NodeId(12),
            },
            Msg::MsTick,
            Msg::Mastership(MsMsg::Overrides {
                shard: 2,
                runs: vec![
                    OverrideRun {
                        start: 10,
                        len: 3,
                        ballot: MsBallot::new(4, 1),
                    },
                    OverrideRun {
                        start: 0xdead_beef_cafe,
                        len: 1,
                        ballot: MsBallot::new(5, 2),
                    },
                ],
            }),
            Msg::RecordHint {
                key: key("hot"),
                node: NodeId(9),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in samples() {
            let bytes = to_bytes(&msg);
            let back: Msg = from_bytes(&bytes).expect("decode");
            assert_eq!(
                format!("{back:?}"),
                format!("{msg:?}"),
                "round trip mismatch"
            );
        }
    }

    #[test]
    fn wire_bytes_is_framed_encoding_len() {
        for msg in samples() {
            assert_eq!(msg.wire_bytes(), to_bytes(&msg).len() + FRAME_OVERHEAD);
            assert_eq!(msg.wire_bytes(), frame_msg(&msg).len());
        }
    }

    #[test]
    fn traffic_classes_partition_the_schema() {
        assert_eq!(
            Msg::ReadReq {
                req: 0,
                key: key("a")
            }
            .traffic_class(),
            TrafficClass::Read
        );
        assert_eq!(Msg::SyncDigestReq.traffic_class(), TrafficClass::Sync);
        assert_eq!(Msg::SyncReq.traffic_class(), TrafficClass::Sync);
        assert_eq!(Msg::Propose(opt(1)).traffic_class(), TrafficClass::Protocol);
        assert_eq!(
            Msg::CstructPull { key: key("a") }.traffic_class(),
            TrafficClass::Repair
        );
        assert_eq!(
            Msg::CstructFull {
                key: key("a"),
                vote: full_vote(CStruct::new()),
            }
            .traffic_class(),
            TrafficClass::Repair
        );
        assert_eq!(
            Msg::VoteDelta {
                key: key("a"),
                delta: DeltaVote::extract(&full_vote(CStruct::new()), 0),
            }
            .traffic_class(),
            TrafficClass::Protocol,
            "delta votes are commit-protocol traffic, not repair"
        );
        assert_eq!(
            Msg::Visibility {
                txn: TxnId::new(NodeId(0), 0),
                key: key("a"),
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            }
            .traffic_class(),
            TrafficClass::Protocol
        );
        assert_eq!(
            Msg::Mastership(MsMsg::HbReq { shard: 0, round: 1 }).traffic_class(),
            TrafficClass::Protocol,
            "lease/election plane is protocol traffic"
        );
        assert_eq!(
            Msg::ProposeMastered {
                origin_dc: DcId(0),
                opt: opt(1),
            }
            .traffic_class(),
            TrafficClass::Protocol
        );
    }

    #[test]
    fn a_delta_vote_is_much_smaller_than_a_full_vote() {
        // A hot commutative instance with many concurrent options: the
        // full vote re-ships every entry, the delta only the newest one.
        let mut cstruct = CStruct::new();
        for i in 0..32 {
            cstruct.append(opt(i), OptionStatus::Accepted);
        }
        let vote = full_vote(cstruct);
        let full = Msg::Vote {
            key: key("a"),
            vote: vote.clone(),
        };
        // All but the newest entry were already sent to this peer.
        let delta = Msg::VoteDelta {
            key: key("a"),
            delta: DeltaVote::extract(&vote, 31),
        };
        assert!(
            delta.wire_bytes() * 10 < full.wire_bytes(),
            "delta vote must be at least 10x smaller: {} vs {}",
            delta.wire_bytes(),
            full.wire_bytes()
        );
    }

    #[test]
    fn a_vote_is_much_smaller_than_a_sync_chunk() {
        let vote = Msg::Vote {
            key: key("a"),
            vote: full_vote(CStruct::new()),
        };
        let chunk = Msg::SyncChunk {
            items: (0..32)
                .map(|i| SyncItem {
                    key: key(&format!("k{i}")),
                    snapshot: RecordSnapshot {
                        version: Version(2),
                        value: Some(Row::new().with("stock", i)),
                        folded: Vec::new(),
                    },
                    resolved: Vec::new(),
                })
                .collect(),
        };
        assert!(
            chunk.wire_bytes() > 10 * vote.wire_bytes(),
            "sized transport must distinguish {} from {}",
            vote.wire_bytes(),
            chunk.wire_bytes()
        );
    }
}

//! Protocol messages between app servers (TMs) and storage nodes.
//!
//! Every variant has a byte-accurate wire encoding (see
//! [`crate::wire`]); the simulator charges transmission delay, link
//! queueing and per-byte service cost for exactly those bytes.

use mdcc_common::{DcId, Key, NodeId, Row, TxnId, Version};
use mdcc_mastership::MsMsg;
use mdcc_paxos::acceptor::{Phase1b, Phase2a, Phase2b, RecordSnapshot};
use mdcc_paxos::{Ballot, DeltaVote, Resolution, TxnOption, TxnOutcome};
use mdcc_storage::{SyncItem, SyncRange};

/// Everything that travels between MDCC processes (and, via self-timers,
/// within them).
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Proposals (TM → storage nodes).
    // ------------------------------------------------------------------
    /// Fast-path proposal straight to an acceptor (Algorithm 1, line 13).
    Propose(TxnOption),
    /// Classic-path proposal to the record's master (line 11).
    ProposeToMaster(TxnOption),
    /// Outcome fan-out once the coordinator learned all options
    /// (the Visibility/Learned message of §3.2.1).
    Visibility {
        /// Resolved transaction.
        txn: TxnId,
        /// Record this copy of the message is for.
        key: Key,
        /// Commit or abort.
        outcome: TxnOutcome,
        /// Whether this record's option was *learned* as accepted — the
        /// authoritative status that drives version accounting on nodes
        /// whose local vote was in the minority.
        learned_accepted: bool,
    },
    /// Ask the (potential) master to run collision recovery for a record
    /// (Algorithm 1, lines 19 and 26).
    StartRecovery {
        /// Record to recover.
        key: Key,
    },

    // ------------------------------------------------------------------
    // Acceptor responses (storage node → learners/TM).
    // ------------------------------------------------------------------
    /// Phase2b vote (fast or classic) carrying the full cstruct, fanned
    /// out to the proposer and to the coordinators of every option in
    /// the cstruct. The legacy vote format
    /// (`ProtocolConfig::delta_votes = false`).
    Vote {
        /// Record voted on.
        key: Key,
        /// The vote.
        vote: Phase2b,
    },
    /// Phase2b vote shipped as a per-option delta plus a cstruct digest
    /// (`ProtocolConfig::delta_votes = true`): only the options appended
    /// since the acceptor's previous vote travel; receivers fold them
    /// into per-acceptor shadow views and pull the full cstruct only on
    /// digest mismatch.
    VoteDelta {
        /// Record voted on.
        key: Key,
        /// The delta vote.
        delta: DeltaVote,
    },
    /// Read-repair request: a receiver's shadow view diverged from this
    /// acceptor's cstruct (lost delta, missed epoch, reordering); ship
    /// the full structure.
    CstructPull {
        /// Record whose cstruct diverged.
        key: Key,
    },
    /// Read-repair response: the acceptor's full current vote, which
    /// resets the requester's shadow view.
    CstructFull {
        /// Record concerned.
        key: Key,
        /// Full-cstruct vote.
        vote: Phase2b,
    },
    /// The record is under a classic ballot; retry via its master.
    NotFast {
        /// Record concerned.
        key: Key,
        /// The option that was bounced.
        opt: TxnOption,
        /// The classic ballot in force — its proposer is the master.
        promised: Ballot,
    },
    /// The record's instance is full; the proposer should request
    /// recovery so the master closes and re-bases it.
    InstanceFull {
        /// Record concerned.
        key: Key,
        /// The bounced option (re-proposed after recovery).
        opt: TxnOption,
    },
    /// The proposed transaction was already resolved earlier (the
    /// proposal is a stale retry); here is its outcome.
    AlreadyResolved {
        /// Record concerned.
        key: Key,
        /// Transaction in question.
        txn: TxnId,
        /// Its decided outcome.
        outcome: TxnOutcome,
    },
    /// The master reports the record is back in fast mode; the TM should
    /// drop its classic-mode cache entry and re-propose directly.
    GoFast {
        /// Record concerned.
        key: Key,
        /// The bounced option.
        opt: TxnOption,
    },

    // ------------------------------------------------------------------
    // Leader ↔ acceptors (classic ballots).
    // ------------------------------------------------------------------
    /// Phase1a broadcast.
    P1a {
        /// Record concerned.
        key: Key,
        /// New classic ballot.
        ballot: Ballot,
    },
    /// Phase1b response.
    P1b {
        /// Record concerned.
        key: Key,
        /// Promise payload.
        payload: Phase1b,
    },
    /// Phase2a broadcast.
    P2a {
        /// Record concerned.
        key: Key,
        /// Proposal payload.
        payload: Box<Phase2a>,
    },
    /// Phase2a refused: ballot too old.
    P2aNack {
        /// Record concerned.
        key: Key,
        /// The acceptor's promise.
        promised: Ballot,
    },
    /// Phase2a refused: the leader's snapshot lags this acceptor.
    P2aStale {
        /// Record concerned.
        key: Key,
        /// Newer committed state for leader catch-up.
        snapshot: RecordSnapshot,
    },

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------
    /// Read the committed value of a record.
    ReadReq {
        /// Request id, echoed in the response.
        req: u64,
        /// Record to read.
        key: Key,
    },
    /// Read response.
    ReadResp {
        /// Echoed request id.
        req: u64,
        /// Record read.
        key: Key,
        /// Committed version (zero for never-written records).
        version: Version,
        /// Committed value, if the record exists.
        value: Option<Row>,
    },

    // ------------------------------------------------------------------
    // Dangling-transaction recovery (storage node → storage nodes).
    // ------------------------------------------------------------------
    /// Ask a replica for the status of one transaction's option on one
    /// record (quorum read of the instance state, §3.2.3).
    QueryStatus {
        /// Transaction being reconstructed.
        txn: TxnId,
        /// Record queried.
        key: Key,
    },
    /// Response: the replica's current vote plus, if it already knows it,
    /// the transaction outcome.
    StatusResp {
        /// Transaction being reconstructed.
        txn: TxnId,
        /// Record queried.
        key: Key,
        /// The replica's current vote for the record's instance.
        vote: Phase2b,
        /// Outcome if this replica already learned it.
        outcome: Option<TxnOutcome>,
    },

    // ------------------------------------------------------------------
    // Crash recovery: restart-time peer sync (storage ↔ storage).
    // ------------------------------------------------------------------
    /// A restarted storage node asks a peer replica for the committed
    /// state of everything the peer holds (anti-entropy catch-up for
    /// updates missed while the node was down, §3.2.3).
    SyncReq,
    /// One record of a peer's sync response: its committed snapshot plus
    /// the already-resolved options of its current instance (each option
    /// "includes all necessary information to reconstruct the state").
    SyncKey {
        /// Record concerned.
        key: Key,
        /// The peer's committed state for the record.
        snapshot: RecordSnapshot,
        /// Resolved options of the peer's current instance.
        resolved: Vec<(TxnOption, Resolution)>,
    },
    /// A restarted node opens a batched (merkle-style) sync round: the
    /// peer answers with digests of its key ranges instead of flooding
    /// full state per key.
    SyncDigestReq,
    /// Range digests of everything the sender holds; the receiver
    /// compares each range against its own state and pulls only the
    /// divergent ones.
    SyncDigest {
        /// One digest per chunk of the sender's sorted key space.
        ranges: Vec<SyncRange>,
    },
    /// Ship full sync payloads for these divergent key ranges.
    SyncRangePull {
        /// `(lo, hi)` inclusive bounds, as advertised in `SyncDigest`.
        ranges: Vec<(Key, Key)>,
    },
    /// A batched chunk of per-record sync payloads — the bulk carrier
    /// that replaces a flood of `SyncKey` messages.
    SyncChunk {
        /// At most `sync_chunk_keys` records' worth of state.
        items: Vec<SyncItem>,
    },

    // ------------------------------------------------------------------
    // Self-timers.
    // ------------------------------------------------------------------
    /// TM: the learn timeout of a transaction fired.
    LearnTimeout {
        /// Transaction still unresolved.
        txn: TxnId,
    },
    /// TM: a read batch is still incomplete; re-issue the missing reads.
    ReadRetry {
        /// Token of the stalled read batch.
        token: u64,
    },
    /// Storage node: periodic dangling-transaction sweep.
    DanglingSweep,
    /// Storage node: a recovery attempt stalled; retry it.
    RecoveryRetry {
        /// Transaction being recovered.
        txn: TxnId,
    },
    /// Storage node: re-check a committed option whose execution this
    /// node missed (bare outcome) and pull it from the next peer if the
    /// earlier repair did not land.
    MissedPull {
        /// Record whose execution is missing.
        key: Key,
        /// The committed transaction.
        txn: TxnId,
        /// Retry attempt (rotates the target peer).
        attempt: u32,
    },
    /// Storage node: periodic durable checkpoint (snapshot + WAL
    /// compaction).
    CheckpointTick,
    /// Storage node: periodic anti-entropy round after a restart.
    SyncSweep,
    /// Client processes: issue the next transaction (used by harness
    /// clients; carried here so every process shares one message type).
    ClientTick,

    // ------------------------------------------------------------------
    // Dynamic mastership (lease/election plane + mastered proposals).
    // ------------------------------------------------------------------
    /// Lease/election-plane message between the replicas of one shard
    /// (heartbeats, acquires, grants, handoffs — see `mdcc_mastership`).
    Mastership(MsMsg),
    /// Classic-path proposal routed to the shard's *lease holder* instead
    /// of the static per-record master. Carries the requesting data
    /// center so the holder can observe access locality and migrate.
    ProposeMastered {
        /// Data center the issuing TM lives in.
        origin_dc: DcId,
        /// The proposal itself.
        opt: TxnOption,
    },
    /// A node that is not (or no longer) the lease holder redirects the
    /// proposer: route this shard's classic traffic to `node`.
    MasterHint {
        /// Shard concerned.
        shard: u32,
        /// Current lease holder as far as the sender knows.
        node: NodeId,
    },
    /// Storage node: mastership heartbeat/lease timer.
    MsTick,
    /// Record-granular routing hint: the shard's lease holder tells a
    /// coordinator that *this record's* classic traffic belongs to
    /// `node` (a per-record override diverging from the shard-level
    /// lease — see `lease_record_overrides`).
    RecordHint {
        /// Record concerned.
        key: Key,
        /// Where this record's classic proposals should go.
        node: NodeId,
    },
}

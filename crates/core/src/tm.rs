//! The transaction manager — the paper's stateless "DB library" (§2).
//!
//! Embedded in an app-server process, the TM implements the optimistic
//! commit protocol of §3.2:
//!
//! 1. the application executes reads (local read-committed by default,
//!    up-to-date quorum reads on request, §4.2) and collects a write-set;
//! 2. at commit, the TM proposes one option per record — directly to the
//!    acceptors when the record is (believed) fast, via the record's
//!    master otherwise;
//! 3. it learns each option from Phase2b quorums; **it may not abort a
//!    proposed transaction** — on learn failure it can only trigger
//!    recovery and keep waiting (the key difference from 2PC, §3.2.1);
//! 4. commit iff every option is learned accepted; the outcome fans out
//!    asynchronously as Visibility messages and does not add latency.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use mdcc_common::error::AbortReason;
use mdcc_common::{
    DcId, Key, NodeId, ProtocolConfig, RecordUpdate, Row, SimTime, TxnId, Version, WriteSet,
};
use mdcc_paxos::{
    FoldOutcome, LearnOutcome, Learner, OptionStatus, ShadowView, TxnOption, TxnOutcome,
};
use mdcc_sim::event::TimerId;
use mdcc_sim::Ctx;
use mdcc_trace::{Phase, TraceHandle};

use crate::msg::Msg;
use crate::placement::Placement;

/// Read consistency levels (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Read the local replica's committed value — may be stale, never
    /// dirty (read committed, §4.1).
    Local,
    /// Read a classic quorum and return the highest committed version.
    UpToDate,
}

/// TM configuration.
#[derive(Debug, Clone)]
pub struct TmConfig {
    /// Protocol parameters (quorums, timeouts).
    pub protocol: ProtocolConfig,
    /// The data center this app server runs in (local reads).
    pub my_dc: DcId,
    /// Always propose via the record's master — the *Multi*
    /// configuration of §5.3.1. When `false` (MDCC default) records are
    /// assumed fast until a master says otherwise.
    pub assume_classic: bool,
}

/// Aggregate TM counters (the ingredients of Figures 5–7).
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Transactions whose every option was learned from fast quorums.
    pub fast_commits: u64,
    /// Collisions observed (recovery requests sent).
    pub collisions: u64,
    /// Learn timeouts fired.
    pub timeouts: u64,
    /// Proposals bounced from fast to classic mode.
    pub classic_redirects: u64,
    /// Delta-vote divergences repaired: `CstructPull` round trips this
    /// TM issued because a shadow view's digest mismatched.
    pub repair_pulls: u64,
}

/// The result of one finished transaction, handed to the client process.
#[derive(Debug, Clone)]
pub struct TxnCompletion {
    /// The transaction.
    pub txn: TxnId,
    /// Commit or abort.
    pub outcome: TxnOutcome,
    /// When `commit` was called.
    pub started: SimTime,
    /// When the last option was learned (the commit point).
    pub finished: SimTime,
    /// For aborts: the first rejection reason.
    pub abort_reason: Option<AbortReason>,
    /// Every option was learned via fast ballots (no master involved).
    pub fast_path: bool,
}

/// Events the TM reports to its hosting process.
#[derive(Debug, Clone)]
pub enum TmEvent {
    /// A commit attempt finished.
    Completed(TxnCompletion),
    /// A read issued with [`TransactionManager::read`] finished.
    ReadDone {
        /// Token returned by `read`.
        token: u64,
        /// Per-key results: committed version and value.
        values: Vec<(Key, Version, Option<Row>)>,
    },
}

// Iteration order of these maps drives message emission order, so they
// must be deterministic (`BTreeMap`) for reproducible simulations.
#[derive(Debug)]
struct ActiveTxn {
    started: SimTime,
    options: BTreeMap<Key, TxnOption>,
    learners: BTreeMap<Key, Learner>,
    decided: BTreeMap<Key, OptionStatus>,
    all_fast: bool,
    timer: TimerId,
    recovery_sent: HashSet<Key>,
    retries: u32,
}

#[derive(Debug)]
struct ReadTask {
    token: u64,
    consistency: ReadConsistency,
    needed: usize,
    /// Per-key responses, keyed by responder so retry re-broadcasts
    /// cannot count one replica twice toward an up-to-date quorum.
    responses: HashMap<Key, Vec<(NodeId, Version, Option<Row>)>>,
    keys: Vec<Key>,
    /// Re-issue timer: a read request or response lost to the network
    /// (or to a crashed replica) must not stall the client forever.
    timer: TimerId,
    retries: u32,
}

/// The per-app-server transaction manager.
pub struct TransactionManager {
    cfg: TmConfig,
    placement: Arc<dyn Placement>,
    next_seq: u64,
    next_read: u64,
    active: BTreeMap<TxnId, ActiveTxn>,
    reads: HashMap<u64, ReadTask>,
    /// Records believed to be under a classic ballot, with their master.
    classic_cache: HashMap<Key, NodeId>,
    /// Dynamic mastership: believed lease holder per shard, learned from
    /// `MasterHint` redirects. Only consulted when
    /// `protocol.mastership.enabled`.
    lease_cache: HashMap<u32, NodeId>,
    /// Record-granular routes learned from `RecordHint` redirects:
    /// records whose classic traffic diverges from the shard lease
    /// (per-record lease overrides). Consulted before `lease_cache`;
    /// bounded by [`RECORD_ROUTES_CAP`] (a dropped route costs one
    /// forward hop through the shard holder).
    record_cache: HashMap<Key, NodeId>,
    /// Per-record, per-acceptor shadow views reconstructing each
    /// acceptor's cstruct from delta votes. Bounded by
    /// [`SHADOW_KEYS_CAP`]; a dropped shadow merely costs one
    /// `CstructPull` repair round trip on the record's next delta vote.
    shadows: HashMap<Key, Vec<ShadowView>>,
    stats: TxnStats,
    /// Shared trace collector; spans are recorded only when attached
    /// (and enabled), so the default TM pays one `Option` test.
    tracer: Option<TraceHandle>,
}

/// Records whose shadow views this TM retains before the map resets.
/// Eviction is safe — the next delta vote for an evicted record fails to
/// fold and read-repairs with a full cstruct — so the cap only trades
/// repair round trips for memory.
const SHADOW_KEYS_CAP: usize = 4096;

/// Record-granular route entries this TM retains before the map resets.
/// Eviction is safe — the shard holder re-forwards and re-teaches the
/// route on the record's next proposal.
const RECORD_ROUTES_CAP: usize = 4096;

impl TransactionManager {
    /// Creates a TM for the app server in `cfg.my_dc`.
    pub fn new(cfg: TmConfig, placement: Arc<dyn Placement>) -> Self {
        Self {
            cfg,
            placement,
            next_seq: 0,
            next_read: 0,
            active: BTreeMap::new(),
            reads: HashMap::new(),
            classic_cache: HashMap::new(),
            lease_cache: HashMap::new(),
            record_cache: HashMap::new(),
            shadows: HashMap::new(),
            stats: TxnStats::default(),
            tracer: None,
        }
    }

    /// Attaches the run's trace collector; commit/phase2b/visibility
    /// spans are recorded into it. Purely observational.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = Some(tracer);
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// Number of unfinished commit attempts.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------

    /// Issues a read of `keys`; the result arrives later as
    /// [`TmEvent::ReadDone`] carrying the returned token.
    pub fn read(
        &mut self,
        keys: Vec<Key>,
        consistency: ReadConsistency,
        ctx: &mut Ctx<'_, Msg>,
    ) -> u64 {
        let token = self.next_read;
        self.next_read += 1;
        let needed = match consistency {
            ReadConsistency::Local => 1,
            ReadConsistency::UpToDate => self.cfg.protocol.classic_quorum,
        };
        for key in &keys {
            self.send_read(token, key, consistency, false, ctx);
        }
        let timer = ctx.set_timer(self.cfg.protocol.learn_timeout, Msg::ReadRetry { token });
        self.reads.insert(
            token,
            ReadTask {
                token,
                consistency,
                needed,
                responses: HashMap::new(),
                keys,
                timer,
                retries: 0,
            },
        );
        token
    }

    /// Sends the read requests for one key. `broadcast` widens a local
    /// read to every replica — the fallback when the local replica looks
    /// dead (crashed node, §3.2.3's "any storage node" principle applies
    /// to reads too).
    fn send_read(
        &self,
        token: u64,
        key: &Key,
        consistency: ReadConsistency,
        broadcast: bool,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        match consistency {
            ReadConsistency::Local if !broadcast => {
                let node = self.placement.replica_in(key, self.cfg.my_dc);
                ctx.send(
                    node,
                    Msg::ReadReq {
                        req: token,
                        key: key.clone(),
                    },
                );
            }
            _ => {
                for node in self.placement.replicas(key) {
                    ctx.send(
                        node,
                        Msg::ReadReq {
                            req: token,
                            key: key.clone(),
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    /// Starts a **serializable** commit (§4.4): besides the write-set,
    /// the transaction's read-set is validated — every read key becomes a
    /// [`mdcc_common::UpdateOp::ReadGuard`] option that the acceptors
    /// accept only if the version is still current and no write is
    /// pending. Guards ride fast ballots like any other option, so
    /// serializability still costs one wide-area round trip in the
    /// common case. Keys also written by the transaction need no guard
    /// (their write already validates the version).
    pub fn commit_serializable(
        &mut self,
        mut updates: Vec<RecordUpdate>,
        read_set: Vec<(Key, Version)>,
        ctx: &mut Ctx<'_, Msg>,
    ) -> (TxnId, Option<TxnCompletion>) {
        let written: HashSet<Key> = updates.iter().map(|u| u.key.clone()).collect();
        for (key, version) in read_set {
            if !written.contains(&key) {
                updates.push(RecordUpdate::new(
                    key,
                    mdcc_common::UpdateOp::ReadGuard(version),
                ));
            }
        }
        self.commit(updates, ctx)
    }

    /// Starts the commit of a write-set (Algorithm 1, TransactionStart).
    ///
    /// Returns the transaction id and, for empty write-sets, an immediate
    /// completion (a read-only transaction commits trivially).
    pub fn commit(
        &mut self,
        updates: Vec<RecordUpdate>,
        ctx: &mut Ctx<'_, Msg>,
    ) -> (TxnId, Option<TxnCompletion>) {
        let txn = TxnId::new(ctx.self_id, self.next_seq);
        self.next_seq += 1;
        if updates.is_empty() {
            let done = TxnCompletion {
                txn,
                outcome: TxnOutcome::Committed,
                started: ctx.now,
                finished: ctx.now,
                abort_reason: None,
                fast_path: true,
            };
            self.stats.committed += 1;
            self.stats.fast_commits += 1;
            return (txn, Some(done));
        }
        let ws = WriteSet::new(txn, updates);
        let mut options = BTreeMap::new();
        let mut learners = BTreeMap::new();
        for u in &ws.updates {
            let opt = TxnOption {
                txn,
                key: u.key.clone(),
                op: u.op.clone(),
                peers: Arc::clone(&ws.keys),
            };
            learners.insert(
                u.key.clone(),
                Learner::new(
                    self.cfg.protocol.replication,
                    self.cfg.protocol.classic_quorum,
                    self.cfg.protocol.fast_quorum,
                    txn,
                ),
            );
            options.insert(u.key.clone(), opt);
        }
        if let Some(tracer) = &self.tracer {
            // One commit span per attempt, one phase2b span per option:
            // proposal fan-out → the quorum that decides the record.
            tracer.begin(
                ctx.self_id,
                self.cfg.my_dc,
                Some(txn),
                None,
                Phase::Commit,
                ctx.now,
            );
            for key in options.keys() {
                tracer.begin(
                    ctx.self_id,
                    self.cfg.my_dc,
                    Some(txn),
                    Some(key.clone()),
                    Phase::Phase2b,
                    ctx.now,
                );
            }
        }
        for opt in options.values() {
            self.propose(opt.clone(), ctx);
        }
        let timer = ctx.set_timer(self.cfg.protocol.learn_timeout, Msg::LearnTimeout { txn });
        self.active.insert(
            txn,
            ActiveTxn {
                started: ctx.now,
                options,
                learners,
                decided: BTreeMap::new(),
                all_fast: true,
                timer,
                recovery_sent: HashSet::new(),
                retries: 0,
            },
        );
        (txn, None)
    }

    /// The node to ask for recovery on `attempt` (0 = the default
    /// master). Master failover, §3.2.3: after *several* timeouts the
    /// next replica is asked to take over the record's mastership — any
    /// storage node can lead. Rotating too eagerly creates dueling
    /// leaders under contention (each stuck coordinator nominating a
    /// different node), so three attempts go to the same target before
    /// moving on.
    fn recovery_target(&self, key: &Key, attempt: u32) -> NodeId {
        let replicas = self.placement.replicas(key);
        let start = self.placement.master_dc(key).0 as usize;
        replicas[(start + attempt as usize / 3) % replicas.len()]
    }

    /// Routes one proposal per the record's believed mode (SENDPROPOSAL,
    /// Algorithm 1 lines 9–13).
    fn propose(&mut self, opt: TxnOption, ctx: &mut Ctx<'_, Msg>) {
        self.propose_attempt(opt, 0, ctx);
    }

    /// `propose`, parameterized by the retry attempt. With dynamic
    /// mastership on, classic proposals go to the shard's believed lease
    /// holder; retries rotate through the replica group instead, because
    /// the believed holder may be the crashed node (any replica either
    /// serves, forwards to the live holder, or leads classically).
    fn propose_attempt(&mut self, opt: TxnOption, attempt: u32, ctx: &mut Ctx<'_, Msg>) {
        let master = self.classic_cache.get(&opt.key).copied().or_else(|| {
            self.cfg
                .assume_classic
                .then(|| self.placement.master(&opt.key))
        });
        match master {
            Some(m) => {
                if self.cfg.protocol.mastership.enabled {
                    let shard = self.placement.shard_id(&opt.key);
                    let target = if attempt == 0 {
                        // Record-granular routes (per-record lease
                        // overrides) outrank the shard-level route.
                        self.record_cache
                            .get(&opt.key)
                            .copied()
                            .or_else(|| self.lease_cache.get(&shard).copied())
                            .unwrap_or(m)
                    } else {
                        let replicas = self.placement.shard_replicas(shard);
                        replicas[(self.cfg.my_dc.0 as usize + attempt as usize) % replicas.len()]
                    };
                    ctx.send(
                        target,
                        Msg::ProposeMastered {
                            origin_dc: self.cfg.my_dc,
                            opt,
                        },
                    );
                } else {
                    ctx.send(m, Msg::ProposeToMaster(opt));
                }
            }
            None => {
                for r in self.placement.replicas(&opt.key) {
                    ctx.send(r, Msg::Propose(opt.clone()));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handling.
    // ------------------------------------------------------------------

    /// Feeds a network message; returns completions/read results to act on.
    pub fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) -> Vec<TmEvent> {
        match msg {
            Msg::Vote { key, vote } => {
                // A full vote (legacy mode, or a first-contact vote in
                // delta mode) doubles as a shadow reset: subsequent
                // deltas from this acceptor fold on top of it.
                if self.cfg.protocol.delta_votes {
                    if let Some(view) = self.shadow_mut(&key, from) {
                        view.observe_full(&vote);
                    }
                }
                self.on_vote(from, key, vote, ctx)
            }
            Msg::VoteDelta { key, delta } => {
                // Fold the delta into this acceptor's shadow view; on
                // success the reconstructed full vote feeds the learners,
                // on divergence (lost delta, missed epoch, reordering)
                // read-repair pulls the full cstruct.
                let Some(outcome) = self.fold_delta(&key, from, &delta) else {
                    return Vec::new();
                };
                match outcome {
                    FoldOutcome::Vote(vote) => self.on_vote(from, key, vote, ctx),
                    FoldOutcome::Diverged => {
                        // One pull per divergence: every vote arriving
                        // during the repair round trip re-detects the
                        // same gap, and re-pulling each time would ship
                        // the full cstruct once per in-flight vote.
                        let pull = self
                            .shadow_mut(&key, from)
                            .map(|view| view.should_pull())
                            .unwrap_or(false);
                        if pull {
                            self.stats.repair_pulls += 1;
                            ctx.send(from, Msg::CstructPull { key });
                        }
                        Vec::new()
                    }
                    FoldOutcome::Stale => Vec::new(),
                }
            }
            Msg::CstructFull { key, vote } => {
                // Read-repair response: reset the diverged shadow to the
                // acceptor's exact state, then learn from the full vote.
                if let Some(view) = self.shadow_mut(&key, from) {
                    view.reset_full(&vote);
                }
                self.on_vote(from, key, vote, ctx)
            }
            Msg::NotFast { key, opt, promised } => {
                // The record is under a classic ballot: remember the
                // master and retry through it (§3.3.1 fallback).
                self.stats.classic_redirects += 1;
                if self.relevant(&opt) {
                    self.classic_cache.insert(key, promised.proposer);
                    ctx.send(promised.proposer, Msg::ProposeToMaster(opt));
                }
                Vec::new()
            }
            Msg::GoFast { key, opt } => {
                // The record reopened fast ballots: drop the cache entry
                // and propose directly.
                self.classic_cache.remove(&key);
                if self.relevant(&opt) {
                    for r in self.placement.replicas(&key) {
                        ctx.send(r, Msg::Propose(opt.clone()));
                    }
                }
                Vec::new()
            }
            Msg::InstanceFull { key, opt } => {
                // Ask the master to close + re-base the instance, then
                // route the option through it.
                self.stats.collisions += 1;
                let master = self.placement.master(&key);
                if self.relevant(&opt) {
                    ctx.send(master, Msg::StartRecovery { key: key.clone() });
                    self.classic_cache.insert(key, master);
                    ctx.send(master, Msg::ProposeToMaster(opt));
                }
                Vec::new()
            }
            Msg::AlreadyResolved { key, txn, outcome } => {
                let status = match outcome {
                    TxnOutcome::Committed => OptionStatus::Accepted,
                    TxnOutcome::Aborted => OptionStatus::Rejected(AbortReason::Resolved),
                };
                self.record_decision(txn, key, status, ctx)
            }
            Msg::ReadResp {
                req,
                key,
                version,
                value,
            } => self.on_read_resp(from, req, key, version, value, ctx),
            Msg::MasterHint { shard, node } => {
                // A replica redirected us: route this shard's mastered
                // traffic to the current lease holder.
                self.lease_cache.insert(shard, node);
                Vec::new()
            }
            Msg::RecordHint { key, node } => {
                // The shard holder redirected us record-granularly:
                // this record's classic ballot lives on `node`.
                if self.record_cache.len() > RECORD_ROUTES_CAP
                    && !self.record_cache.contains_key(&key)
                {
                    self.record_cache.clear();
                }
                self.record_cache.insert(key, node);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Handles a fired timer; same contract as [`Self::on_message`].
    pub fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) -> Vec<TmEvent> {
        if let Msg::ReadRetry { token } = msg {
            self.retry_read(token, ctx);
            return Vec::new();
        }
        let Msg::LearnTimeout { txn } = msg else {
            return Vec::new();
        };
        let Some(active) = self.active.get_mut(&txn) else {
            return Vec::new();
        };
        self.stats.timeouts += 1;
        active.retries += 1;
        let undecided: Vec<Key> = active
            .options
            .keys()
            .filter(|k| !active.decided.contains_key(*k))
            .cloned()
            .collect();
        // We may *not* abort: options might already be learned by others.
        // Trigger recovery on stuck records and re-propose (acceptors and
        // masters deduplicate).
        let opts: Vec<TxnOption> = undecided
            .iter()
            .map(|k| active.options[k].clone())
            .collect();
        // Exponential backoff: under heavy contention a recovery round can
        // outlast the base timeout, and re-triggering it on every tick
        // turns congestion into livelock.
        let backoff = self.cfg.protocol.learn_timeout * (1u64 << active.retries.min(4));
        active.timer = ctx.set_timer(backoff, Msg::LearnTimeout { txn });
        let attempt = self.active[&txn].retries;
        for (key, opt) in undecided.into_iter().zip(opts) {
            // Rotate through the replicas: the default master may be in a
            // failed data center (master failover, §3.2.3).
            let target = self.recovery_target(&key, attempt);
            ctx.send(target, Msg::StartRecovery { key: key.clone() });
            if attempt >= 3 {
                // The believed master may be the dead one; fall back to
                // fast proposals, which any live node can vote on.
                self.classic_cache.remove(&key);
            }
            if self.cfg.protocol.mastership.enabled {
                // The believed lease holder may be the crashed node; drop
                // both routes and let the rotated retry relearn them.
                self.lease_cache.remove(&self.placement.shard_id(&key));
                self.record_cache.remove(&key);
            }
            self.propose_attempt(opt, attempt, ctx);
        }
        Vec::new()
    }

    /// Re-issues the still-missing reads of a stalled batch. After a
    /// couple of attempts the local replica is presumed dead and the
    /// read fans out to every replica (the first response wins).
    fn retry_read(&mut self, token: u64, ctx: &mut Ctx<'_, Msg>) {
        let Some(task) = self.reads.get_mut(&token) else {
            return;
        };
        task.retries += 1;
        let broadcast = task.retries >= 2;
        let missing: Vec<Key> = task
            .keys
            .iter()
            .filter(|k| task.responses.get(*k).map(|v| v.len()).unwrap_or(0) < task.needed)
            .cloned()
            .collect();
        let consistency = task.consistency;
        let backoff = self.cfg.protocol.learn_timeout * (1u64 << task.retries.min(4));
        let timer = ctx.set_timer(backoff, Msg::ReadRetry { token });
        self.reads.get_mut(&token).expect("present").timer = timer;
        for key in missing {
            self.send_read(token, &key, consistency, broadcast, ctx);
        }
    }

    /// The shadow view tracking acceptor `from`'s cstruct for `key`,
    /// materializing the per-record views on first contact.
    fn shadow_mut(&mut self, key: &Key, from: NodeId) -> Option<&mut ShadowView> {
        let idx = self.placement.acceptor_index(key, from)?;
        if self.shadows.len() > SHADOW_KEYS_CAP && !self.shadows.contains_key(key) {
            // Bounded memory: reset wholesale; evicted records repair
            // themselves with one CstructPull on their next delta vote.
            self.shadows.clear();
        }
        let n = self.cfg.protocol.replication;
        self.shadows
            .entry(key.clone())
            .or_insert_with(|| vec![ShadowView::new(); n])
            .get_mut(idx)
    }

    /// Folds one delta vote into the sender's shadow view. `None` when
    /// the sender is not an acceptor of the record.
    fn fold_delta(
        &mut self,
        key: &Key,
        from: NodeId,
        delta: &mdcc_paxos::DeltaVote,
    ) -> Option<FoldOutcome> {
        let view = self.shadow_mut(key, from)?;
        Some(view.fold(delta))
    }

    fn relevant(&self, opt: &TxnOption) -> bool {
        self.active
            .get(&opt.txn)
            .map(|a| !a.decided.contains_key(&opt.key))
            .unwrap_or(false)
    }

    fn on_vote(
        &mut self,
        from: NodeId,
        key: Key,
        vote: mdcc_paxos::acceptor::Phase2b,
        ctx: &mut Ctx<'_, Msg>,
    ) -> Vec<TmEvent> {
        // A vote can decide any of our in-flight transactions touching
        // this record; find the ones with an option on `key`.
        let candidates: Vec<TxnId> = self
            .active
            .iter()
            .filter(|(_, a)| a.options.contains_key(&key) && !a.decided.contains_key(&key))
            .map(|(t, _)| *t)
            .collect();
        let mut events = Vec::new();
        for txn in candidates {
            let Some(idx) = self.placement.acceptor_index(&key, from) else {
                continue;
            };
            let active = self.active.get_mut(&txn).expect("candidate exists");
            let learner = active.learners.get_mut(&key).expect("learner exists");
            let outcome = learner.on_vote(idx, vote.clone());
            if std::env::var_os("MDCC_TRACE").is_some() {
                eprintln!(
                    "[tm-trace t={}] {txn} {key} vote from a{idx} v={} b={} cstruct={} -> {outcome:?} ({} resp)",
                    ctx.now,
                    vote.version.0,
                    vote.ballot,
                    vote.cstruct,
                    learner.responses()
                );
            }
            match outcome {
                LearnOutcome::Learned(status) => {
                    if !learner.learned_fast() {
                        active.all_fast = false;
                    }
                    let commutative = active.options[&key].is_commutative();
                    let fast = learner.learned_fast();
                    events.extend(self.record_decision(txn, key.clone(), status, ctx));
                    // Algorithm 1, lines 24–26: a rejected commutative
                    // option in a fast ballot signals a demarcation-limit
                    // hit; the master must re-base.
                    if commutative && fast && !status.is_accepted() {
                        let master = self.placement.master(&key);
                        ctx.send(master, Msg::StartRecovery { key: key.clone() });
                    }
                }
                LearnOutcome::Collision => {
                    self.stats.collisions += 1;
                    let active = self.active.get_mut(&txn).expect("candidate exists");
                    if active.recovery_sent.insert(key.clone()) {
                        let master = self.placement.master(&key);
                        ctx.send(master, Msg::StartRecovery { key: key.clone() });
                    }
                }
                LearnOutcome::Undecided => {}
            }
        }
        events
    }

    fn record_decision(
        &mut self,
        txn: TxnId,
        key: Key,
        status: OptionStatus,
        ctx: &mut Ctx<'_, Msg>,
    ) -> Vec<TmEvent> {
        let Some(active) = self.active.get_mut(&txn) else {
            return Vec::new();
        };
        if let Some(tracer) = &self.tracer {
            tracer.end(
                ctx.self_id,
                Some(txn),
                Some(key.clone()),
                Phase::Phase2b,
                ctx.now,
            );
        }
        active.decided.insert(key, status);
        if active.decided.len() < active.options.len() {
            return Vec::new();
        }
        // All options decided: the outcome is now deterministic (§3.2.1).
        let active = self.active.remove(&txn).expect("present");
        ctx.cancel_timer(active.timer);
        let mut abort_reason = None;
        for status in active.decided.values() {
            if let OptionStatus::Rejected(r) = status {
                abort_reason = Some(*r);
                break;
            }
        }
        let outcome = if abort_reason.is_none() {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Aborted
        };
        let finished = ctx.now;
        if let Some(tracer) = &self.tracer {
            tracer.end(ctx.self_id, Some(txn), None, Phase::Commit, finished);
            // The visibility span opens at the commit point; each replica
            // that applies the outcome extends it (node layer), and the
            // harvest closes it at the last application.
            tracer.begin(
                ctx.self_id,
                self.cfg.my_dc,
                Some(txn),
                None,
                Phase::Visibility,
                finished,
            );
        }
        // Visibility fan-out is asynchronous: it happens after the commit
        // point and does not add to transaction latency.
        for key in active.options.keys() {
            let learned_accepted = active.decided[key].is_accepted();
            for r in self.placement.replicas(key) {
                ctx.send(
                    r,
                    Msg::Visibility {
                        txn,
                        key: key.clone(),
                        outcome,
                        learned_accepted,
                    },
                );
            }
        }
        match outcome {
            TxnOutcome::Committed => {
                self.stats.committed += 1;
                if active.all_fast {
                    self.stats.fast_commits += 1;
                }
            }
            TxnOutcome::Aborted => self.stats.aborted += 1,
        }
        vec![TmEvent::Completed(TxnCompletion {
            txn,
            outcome,
            started: active.started,
            finished,
            abort_reason,
            fast_path: active.all_fast,
        })]
    }

    fn on_read_resp(
        &mut self,
        from: NodeId,
        req: u64,
        key: Key,
        version: Version,
        value: Option<Row>,
        ctx: &mut Ctx<'_, Msg>,
    ) -> Vec<TmEvent> {
        let Some(task) = self.reads.get_mut(&req) else {
            return Vec::new();
        };
        let responses = task.responses.entry(key).or_default();
        if responses.iter().any(|(n, _, _)| *n == from) {
            // A duplicate from a replica already counted (retry
            // re-broadcast): an up-to-date quorum must be distinct
            // replicas or it no longer intersects write quorums.
            return Vec::new();
        }
        responses.push((from, version, value));
        let done = task
            .keys
            .iter()
            .all(|k| task.responses.get(k).map(|v| v.len()).unwrap_or(0) >= task.needed);
        if !done {
            return Vec::new();
        }
        let task = self.reads.remove(&req).expect("present");
        ctx.cancel_timer(task.timer);
        let values = task
            .keys
            .iter()
            .map(|k| {
                let responses = &task.responses[k];
                let best = match task.consistency {
                    ReadConsistency::Local => responses.first(),
                    ReadConsistency::UpToDate => responses.iter().max_by_key(|(_, v, _)| *v),
                };
                let (_, version, value) = best.cloned().unwrap_or((NodeId(0), Version::ZERO, None));
                (k.clone(), version, value)
            })
            .collect();
        vec![TmEvent::ReadDone {
            token: task.token,
            values,
        }]
    }
}

//! Dynamic mastership: shard-granular master leases, omnipaxos-style
//! ballot leader election, and access-driven master migration.
//!
//! Static placement freezes every record's master at cluster build
//! time; fig7 shows Multi degrading ~2× as locality drops. This crate
//! makes mastership a runtime property:
//!
//! - **Leases.** Each shard (replica group, one node per data center)
//!   has at most one *lease holder* at a time. The holder renews its
//!   lease every heartbeat tick; replicas grant a lease ballot only if
//!   it outranks everything they already granted, so two holders can
//!   never have overlapping majority-acked windows (the grant quorum of
//!   a new ballot intersects the renewal quorum of the old one, and the
//!   intersection node reports the old expiry, which the new holder
//!   waits out).
//! - **Ballot leader election.** Candidacy is a [`Ballot`]`{n, pid}`
//!   total order in the omnipaxos style: heartbeat rounds with
//!   increasing delay under contention, majority-connected gating, and
//!   a deterministic top-connected-pid tiebreak so a crashed master is
//!   replaced without waiting for classic-ballot timeouts.
//! - **Migration.** The holder counts the origin data center of every
//!   mastered request it serves; once a remote data center dominates
//!   past a hysteresis threshold for several consecutive ticks, the
//!   holder hands the lease to that data center's replica (a voluntary
//!   relinquish, so the successor needs no expiry wait).
//!
//! The crate is transport-free: [`Mastership::on_tick`] /
//! [`Mastership::on_msg`] mutate pure state and emit [`Action`]s the
//! host (a storage node) turns into wire messages and timers. Virtual
//! time is injected by the caller, so everything runs on the
//! deterministic simulator clock.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mdcc_common::wire::{err, Dec, Enc, Wire, WireResult};
use mdcc_common::{DcId, MastershipConfig, NodeId, SimDuration, SimTime};

// ---------------------------------------------------------------------
// Ballot.
// ---------------------------------------------------------------------

/// An election/lease ballot, totally ordered by `(n, pid)` — the
/// omnipaxos `Ballot` (SNIPPETS.md snippet 1). `pid` is the node id and
/// doubles as the deterministic tiebreak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Ballot number (bumped past everything seen when campaigning).
    pub n: u32,
    /// Proposing node's id, the total-order tiebreak.
    pub pid: u64,
}

impl Ballot {
    /// Creates a ballot.
    pub fn new(n: u32, pid: u64) -> Self {
        Self { n, pid }
    }

    /// The node this ballot belongs to.
    pub fn node(&self) -> NodeId {
        NodeId(self.pid as u32)
    }
}

impl Wire for Ballot {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.n);
        out.u64(self.pid);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Self {
            n: inp.u32()?,
            pid: inp.u64()?,
        })
    }
}

// ---------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------

/// A gossiped routing hint: the highest-ballot lease a node knows of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderHint {
    /// Lease ballot.
    pub ballot: Ballot,
    /// Holder node.
    pub node: NodeId,
    /// When the lease (as last seen) expires.
    pub expiry: SimTime,
}

impl Wire for HolderHint {
    fn encode(&self, out: &mut Enc) {
        self.ballot.encode(out);
        self.node.encode(out);
        self.expiry.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Self {
            ballot: Ballot::decode(inp)?,
            node: NodeId::decode(inp)?,
            expiry: SimTime::decode(inp)?,
        })
    }
}

/// Mastership protocol messages, exchanged among a shard's replica
/// group (the host wraps them in its own message enum for transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsMsg {
    /// Heartbeat round probe.
    HbReq {
        /// Shard concerned.
        shard: u32,
        /// Sender's heartbeat round.
        round: u32,
    },
    /// Heartbeat reply: the replier's top ballot plus a lease-routing
    /// hint (how non-holders and late joiners learn the current
    /// master).
    HbReply {
        /// Shard concerned.
        shard: u32,
        /// Echoed round.
        round: u32,
        /// Replier's top ballot (candidacy or granted).
        ballot: Ballot,
        /// Highest-ballot lease the replier knows of.
        holder: Option<HolderHint>,
    },
    /// Acquire (fresh election or handoff) or renew (same ballot as
    /// already granted) a lease until `expiry`.
    Acquire {
        /// Shard concerned.
        shard: u32,
        /// Lease ballot (the candidate's election ballot).
        ballot: Ballot,
        /// Requested lease end.
        expiry: SimTime,
        /// The predecessor ballot, when the previous holder voluntarily
        /// relinquished (handoff): its expiry need not be waited out.
        relinquished: Option<Ballot>,
    },
    /// Lease granted.
    Grant {
        /// Shard concerned.
        shard: u32,
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed expiry (distinguishes renewal generations).
        expiry: SimTime,
        /// The grantor's previous grant `(ballot, expiry)` — the
        /// safety-critical datum: a fresh holder must not serve before
        /// the max of these across its grant quorum.
        prev: Option<(Ballot, SimTime)>,
    },
    /// Lease refused: the grantor already promised a higher ballot.
    Reject {
        /// Shard concerned.
        shard: u32,
        /// The grantor's top ballot.
        max: Ballot,
    },
    /// Voluntary migration: the holder relinquishes and nominates the
    /// target (ballot's pid) with the next ballot number.
    Handoff {
        /// Shard concerned.
        shard: u32,
        /// Candidacy ballot minted for the target.
        ballot: Ballot,
        /// The relinquished (old holder's) ballot.
        relinquished: Ballot,
    },
    /// The per-record override table a relinquishing holder ships to
    /// its handoff target, range-run encoded, so record-granular
    /// promise floors survive migration. Handled by the host storage
    /// node (which owns the table), not by this layer.
    Overrides {
        /// Shard concerned.
        shard: u32,
        /// Override runs, sorted by starting record id.
        runs: Vec<OverrideRun>,
    },
}

impl MsMsg {
    /// The shard the message concerns.
    pub fn shard(&self) -> u32 {
        match self {
            MsMsg::HbReq { shard, .. }
            | MsMsg::HbReply { shard, .. }
            | MsMsg::Acquire { shard, .. }
            | MsMsg::Grant { shard, .. }
            | MsMsg::Reject { shard, .. }
            | MsMsg::Handoff { shard, .. }
            | MsMsg::Overrides { shard, .. } => *shard,
        }
    }
}

impl Wire for MsMsg {
    fn encode(&self, out: &mut Enc) {
        match self {
            MsMsg::HbReq { shard, round } => {
                out.u8(0);
                out.u32(*shard);
                out.u32(*round);
            }
            MsMsg::HbReply {
                shard,
                round,
                ballot,
                holder,
            } => {
                out.u8(1);
                out.u32(*shard);
                out.u32(*round);
                ballot.encode(out);
                holder.encode(out);
            }
            MsMsg::Acquire {
                shard,
                ballot,
                expiry,
                relinquished,
            } => {
                out.u8(2);
                out.u32(*shard);
                ballot.encode(out);
                expiry.encode(out);
                relinquished.encode(out);
            }
            MsMsg::Grant {
                shard,
                ballot,
                expiry,
                prev,
            } => {
                out.u8(3);
                out.u32(*shard);
                ballot.encode(out);
                expiry.encode(out);
                prev.encode(out);
            }
            MsMsg::Reject { shard, max } => {
                out.u8(4);
                out.u32(*shard);
                max.encode(out);
            }
            MsMsg::Handoff {
                shard,
                ballot,
                relinquished,
            } => {
                out.u8(5);
                out.u32(*shard);
                ballot.encode(out);
                relinquished.encode(out);
            }
            MsMsg::Overrides { shard, runs } => {
                out.u8(6);
                out.u32(*shard);
                runs.encode(out);
            }
        }
    }

    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(match inp.u8()? {
            0 => MsMsg::HbReq {
                shard: inp.u32()?,
                round: inp.u32()?,
            },
            1 => MsMsg::HbReply {
                shard: inp.u32()?,
                round: inp.u32()?,
                ballot: Ballot::decode(inp)?,
                holder: Option::decode(inp)?,
            },
            2 => MsMsg::Acquire {
                shard: inp.u32()?,
                ballot: Ballot::decode(inp)?,
                expiry: SimTime::decode(inp)?,
                relinquished: Option::decode(inp)?,
            },
            3 => MsMsg::Grant {
                shard: inp.u32()?,
                ballot: Ballot::decode(inp)?,
                expiry: SimTime::decode(inp)?,
                prev: Option::decode(inp)?,
            },
            4 => MsMsg::Reject {
                shard: inp.u32()?,
                max: Ballot::decode(inp)?,
            },
            5 => MsMsg::Handoff {
                shard: inp.u32()?,
                ballot: Ballot::decode(inp)?,
                relinquished: Ballot::decode(inp)?,
            },
            6 => MsMsg::Overrides {
                shard: inp.u32()?,
                runs: Vec::decode(inp)?,
            },
            _ => return err("mastership msg tag"),
        })
    }
}

// ---------------------------------------------------------------------
// Per-record lease overrides.
// ---------------------------------------------------------------------

/// Stable 64-bit record id: FNV-1a over the key's wire encoding. The
/// override table and its wire codec work in id space so they stay
/// key-type-agnostic and fixed-width.
pub fn record_id(key_bytes: &[u8]) -> u64 {
    mdcc_common::wire::fnv1a64(key_bytes)
}

/// A run of consecutive record ids sharing one override ballot — the
/// compact wire form of the override table. Sequentially inserted keys
/// hash to scattered ids, so most runs are length 1; the run encoding
/// wins when ids cluster (range leases, enumerated record spaces) and
/// costs only 4 bytes over a bare `(id, ballot)` pair otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverrideRun {
    /// First record id of the run.
    pub start: u64,
    /// Number of consecutive ids covered (≥ 1).
    pub len: u32,
    /// Override ballot, the promise floor for every record in the run.
    pub ballot: Ballot,
}

impl Wire for OverrideRun {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.start);
        out.u32(self.len);
        self.ballot.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Self {
            start: inp.u64()?,
            len: inp.u32()?,
            ballot: Ballot::decode(inp)?,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct OverrideEntry {
    ballot: Ballot,
    touched: u64,
}

/// Bounded per-shard table of per-record promise-floor overrides: hot
/// records whose promise rose past the shard's base lease ballot (a
/// contested classic round, or state inherited from a predecessor).
/// Capacity is enforced by a deterministic LRU-half spill — when an
/// insert would exceed `cap`, the least-recently-touched half is
/// dropped and those records fall back to the shard's base floor
/// (safe: the base floor is a lower bound, never wrong, just colder).
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    cap: usize,
    /// Monotone touch clock backing the LRU order (deterministic, no
    /// wall time).
    clock: u64,
    overrides: HashMap<u64, OverrideEntry>,
}

impl LeaseTable {
    /// Creates a table bounded to `cap` overrides (0 disables it).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            clock: 0,
            overrides: HashMap::new(),
        }
    }

    /// Number of overrides currently held.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// Whether the table holds no overrides.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// The override ballot for `record`, touching its LRU stamp.
    pub fn override_of(&mut self, record: u64) -> Option<Ballot> {
        self.clock += 1;
        let clock = self.clock;
        self.overrides.get_mut(&record).map(|e| {
            e.touched = clock;
            e.ballot
        })
    }

    /// The override ballot for `record` without touching LRU state.
    pub fn peek(&self, record: u64) -> Option<Ballot> {
        self.overrides.get(&record).map(|e| e.ballot)
    }

    /// Retires the override for `record`, if any — the holder observed
    /// the override target bounce traffic back (stale promise or a
    /// crashed node), so record routing reverts to the shard lease.
    /// Routing only: dropping a floor is always safe, the acceptors'
    /// actual Paxos promises remain the ground truth.
    pub fn remove(&mut self, record: u64) -> bool {
        self.overrides.remove(&record).is_some()
    }

    /// Raises (or inserts) the override for `record` to `ballot`;
    /// returns whether the stored floor rose. Spills the
    /// least-recently-touched half when the bound is exceeded.
    pub fn raise(&mut self, record: u64, ballot: Ballot) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.clock += 1;
        let clock = self.clock;
        let rose = match self.overrides.entry(record) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let e = e.get_mut();
                e.touched = clock;
                if ballot > e.ballot {
                    e.ballot = ballot;
                    true
                } else {
                    false
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(OverrideEntry {
                    ballot,
                    touched: clock,
                });
                true
            }
        };
        if self.overrides.len() > self.cap {
            self.spill_lru_half();
        }
        rose
    }

    /// Drops the least-recently-touched half of the table
    /// (deterministic: the touch clock is monotone and collision-free).
    fn spill_lru_half(&mut self) {
        let mut stamps: Vec<u64> = self.overrides.values().map(|e| e.touched).collect();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        self.overrides.retain(|_, e| e.touched > cutoff);
    }

    /// The table as sorted, coalesced runs (consecutive ids with equal
    /// ballots merge) — the wire form shipped on handoff.
    pub fn runs(&self) -> Vec<OverrideRun> {
        let mut entries = self.iter_sorted();
        let mut runs: Vec<OverrideRun> = Vec::new();
        for (id, ballot) in entries.drain(..) {
            match runs.last_mut() {
                Some(r) if r.ballot == ballot && r.start + r.len as u64 == id => r.len += 1,
                _ => runs.push(OverrideRun {
                    start: id,
                    len: 1,
                    ballot,
                }),
            }
        }
        runs
    }

    /// Installs decoded runs (a predecessor's table), raising each
    /// record's floor to at least the run's ballot.
    pub fn install_runs(&mut self, runs: &[OverrideRun]) {
        for run in runs {
            for i in 0..run.len as u64 {
                self.raise(run.start + i, run.ballot);
            }
        }
    }

    /// All `(record id, ballot)` pairs sorted by id — deterministic
    /// iteration for WAL re-logging at checkpoints.
    pub fn iter_sorted(&self) -> Vec<(u64, Ballot)> {
        let mut entries: Vec<(u64, Ballot)> = self
            .overrides
            .iter()
            .map(|(id, e)| (*id, e.ballot))
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        entries
    }
}

// ---------------------------------------------------------------------
// Audit.
// ---------------------------------------------------------------------

/// One interval during which a node claimed mastership of a shard: from
/// the first majority-acked serve point through the last acked expiry
/// (or the relinquish instant, whichever is earlier). Spans of
/// *different* holders for the same shard must never overlap — the
/// lease-safety invariant the property tests check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseSpan {
    /// Shard concerned.
    pub shard: u32,
    /// Holder node.
    pub node: NodeId,
    /// Lease ballot of this tenure.
    pub ballot: Ballot,
    /// First instant the holder was allowed to serve.
    pub from: SimTime,
    /// Last instant (exclusive) the holder could have served.
    pub until: SimTime,
}

#[derive(Default)]
struct AuditInner {
    spans: HashMap<(u32, Ballot), LeaseSpan>,
}

/// Shared collector of lease tenures, attached by the harness (purely
/// observational — never read by the protocol).
#[derive(Clone, Default)]
pub struct LeaseAudit {
    inner: Arc<Mutex<AuditInner>>,
}

impl LeaseAudit {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn acquire(&self, shard: u32, node: NodeId, ballot: Ballot, from: SimTime, until: SimTime) {
        let mut inner = self.inner.lock().expect("audit lock");
        inner.spans.insert(
            (shard, ballot),
            LeaseSpan {
                shard,
                node,
                ballot,
                from,
                until,
            },
        );
    }

    fn renew(&self, shard: u32, ballot: Ballot, until: SimTime) {
        let mut inner = self.inner.lock().expect("audit lock");
        if let Some(span) = inner.spans.get_mut(&(shard, ballot)) {
            span.until = span.until.max(until);
        }
    }

    fn relinquish(&self, shard: u32, ballot: Ballot, at: SimTime) {
        let mut inner = self.inner.lock().expect("audit lock");
        if let Some(span) = inner.spans.get_mut(&(shard, ballot)) {
            span.until = span.until.min(at);
        }
    }

    /// All recorded tenures, sorted by `(shard, from, ballot)` —
    /// deterministic regardless of engine parallelism.
    pub fn spans(&self) -> Vec<LeaseSpan> {
        let inner = self.inner.lock().expect("audit lock");
        let mut spans: Vec<LeaseSpan> = inner.spans.values().copied().collect();
        spans.sort_by_key(|s| (s.shard, s.from, s.ballot));
        spans
    }
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

/// Counters of mastership activity at one node (aggregated into the
/// cluster report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MastershipStats {
    /// Election rounds this node started (candidacy bumps).
    pub elections: u64,
    /// Fresh leases acquired (majority-granted).
    pub leases_acquired: u64,
    /// Successful lease renewals.
    pub renewals: u64,
    /// Voluntary handoffs sent (migration).
    pub handoffs: u64,
    /// Mastered requests served while holding the lease.
    pub served: u64,
    /// Mastered requests forwarded to the believed holder.
    pub forwarded: u64,
    /// Cold first-touch mastered commits served without a per-record
    /// Phase1 exchange — the lease ballot carried the promise.
    pub phase1_skipped: u64,
    /// Classic Phase1 rounds run for lease-covered records while
    /// serving (zero when `lease_phase1` is on and working).
    pub phase1_covered: u64,
    /// WAN round trips spent on cold first-touch mastered commits
    /// (1 per skipped Phase1, 2 per classic establish while serving).
    pub cold_first_commit_rtts: u64,
}

// ---------------------------------------------------------------------
// Actions.
// ---------------------------------------------------------------------

/// What the host must do on behalf of the mastership layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `msg` to `to` (always a peer replica of the shard group).
    Send {
        /// Destination storage node.
        to: NodeId,
        /// Message to deliver.
        msg: MsMsg,
    },
    /// This replica's granted lease ballot for `shard` strictly rose:
    /// the host must enforce `ballot` as the Phase1 promise floor for
    /// every record acceptor in the shard (lease-carried Phase1), so a
    /// deposed holder's stale ballots are fenced without per-record
    /// Phase1a/Phase1b exchanges.
    FloorRaised {
        /// Shard concerned.
        shard: u32,
        /// The new lease ballot, now the shard-wide promise floor.
        ballot: Ballot,
    },
    /// This node voluntarily handed the lease for `shard` to `to`: the
    /// host should ship its per-record override table (as
    /// [`MsMsg::Overrides`]) so the successor inherits record-granular
    /// coverage.
    Relinquished {
        /// Shard concerned.
        shard: u32,
        /// The handoff target.
        to: NodeId,
    },
}

// ---------------------------------------------------------------------
// Per-shard state.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Holding {
    ballot: Ballot,
    serve_from: SimTime,
    expiry: SimTime,
}

#[derive(Debug, Clone)]
struct Pending {
    ballot: Ballot,
    expiry: SimTime,
    relinquished: Option<Ballot>,
    grants: Vec<NodeId>,
    /// Max predecessor expiry reported by grantors (what a fresh holder
    /// must wait out).
    floor: SimTime,
    renewal: bool,
}

struct ShardState {
    shard: u32,
    /// Replica group in DC order, self included.
    peers: Vec<NodeId>,
    majority: usize,
    // --- ballot leader election ---
    candidacy: Ballot,
    hb_round: u32,
    /// Peers that replied to a recent round (current or previous — one
    /// WAN round trip can outlast a heartbeat interval).
    replies: Vec<NodeId>,
    max_seen: Ballot,
    // --- lease table (replica role) ---
    granted: Ballot,
    granted_expiry: SimTime,
    // --- routing hint ---
    hint: Option<HolderHint>,
    // --- holder role ---
    holding: Option<Holding>,
    pending: Option<Pending>,
    // --- migration ---
    origin_counts: Vec<u64>,
    /// Start of the current rate-measurement window.
    window_start: SimTime,
    dominant_streak: u32,
    last_dominant: Option<u8>,
}

impl ShardState {
    fn new(shard: u32, peers: Vec<NodeId>, pid: u64) -> Self {
        let majority = peers.len() / 2 + 1;
        let dcs = peers.len();
        Self {
            shard,
            peers,
            majority,
            candidacy: Ballot::new(0, pid),
            hb_round: 0,
            replies: Vec::new(),
            max_seen: Ballot::default(),
            granted: Ballot::default(),
            granted_expiry: SimTime::ZERO,
            hint: None,
            holding: None,
            pending: None,
            origin_counts: vec![0; dcs],
            window_start: SimTime::ZERO,
            dominant_streak: 0,
            last_dominant: None,
        }
    }

    /// The best routing hint this replica can gossip: its own unexpired
    /// holding, its grant table, or what it heard from peers — whichever
    /// carries the highest ballot.
    fn best_hint(&self, me: NodeId, now: SimTime) -> Option<HolderHint> {
        let mut best: Option<HolderHint> = None;
        let mut offer = |h: HolderHint| {
            if h.expiry > now && best.map(|b| h.ballot > b.ballot).unwrap_or(true) {
                best = Some(h);
            }
        };
        if let Some(h) = self.holding {
            offer(HolderHint {
                ballot: h.ballot,
                node: me,
                expiry: h.expiry,
            });
        }
        if self.granted != Ballot::default() {
            offer(HolderHint {
                ballot: self.granted,
                node: self.granted.node(),
                expiry: self.granted_expiry,
            });
        }
        if let Some(h) = self.hint {
            offer(h);
        }
        best
    }

    fn observe_hint(&mut self, h: HolderHint) {
        let better = match self.hint {
            Some(cur) => h.ballot > cur.ballot || (h.ballot == cur.ballot && h.expiry > cur.expiry),
            None => true,
        };
        if better {
            self.hint = Some(h);
        }
    }
}

// ---------------------------------------------------------------------
// The node-level mastership layer.
// ---------------------------------------------------------------------

/// Mastership state of one storage node: election, lease table, holder
/// and migration state for every shard the node replicates.
pub struct Mastership {
    cfg: MastershipConfig,
    me: NodeId,
    my_dc: DcId,
    shards: HashMap<u32, ShardState>,
    /// Ordered shard ids (deterministic tick iteration).
    shard_order: Vec<u32>,
    /// A restarted replica lost its volatile grant table; it must not
    /// grant (or campaign) until every lease it might have granted
    /// before the crash has expired.
    quarantine_until: SimTime,
    /// Contention level: each contested tick raises the heartbeat delay
    /// by one increment (omnipaxos's increasing-delay rounds), each
    /// calm tick lowers it.
    delay_level: u32,
    stats: MastershipStats,
    audit: Option<LeaseAudit>,
}

impl Mastership {
    /// Builds the mastership layer for a node replicating `shards`
    /// (`(shard id, replica group in DC order)`). `recovered_at` marks
    /// a post-restart node, which is quarantined from granting for one
    /// lease duration (its volatile grant table died with the crash).
    pub fn new(
        cfg: MastershipConfig,
        me: NodeId,
        my_dc: DcId,
        shards: Vec<(u32, Vec<NodeId>)>,
        recovered_at: Option<SimTime>,
    ) -> Self {
        let pid = me.0 as u64;
        let quarantine_until = match recovered_at {
            Some(at) => at + cfg.lease_duration,
            None => SimTime::ZERO,
        };
        let mut shard_order: Vec<u32> = shards.iter().map(|(s, _)| *s).collect();
        shard_order.sort_unstable();
        Self {
            cfg,
            me,
            my_dc,
            shards: shards
                .into_iter()
                .map(|(s, peers)| (s, ShardState::new(s, peers, pid)))
                .collect(),
            shard_order,
            quarantine_until,
            delay_level: 0,
            stats: MastershipStats::default(),
            audit: None,
        }
    }

    /// Attaches the shared lease-tenure collector.
    pub fn set_audit(&mut self, audit: LeaseAudit) {
        self.audit = Some(audit);
    }

    /// Activity counters.
    pub fn stats(&self) -> MastershipStats {
        self.stats
    }

    /// Whether this node currently holds the lease for `shard` and is
    /// inside its majority-acked serving window.
    pub fn is_serving(&self, shard: u32, now: SimTime) -> bool {
        self.shards
            .get(&shard)
            .and_then(|s| s.holding)
            .map(|h| h.serve_from <= now && now < h.expiry)
            .unwrap_or(false)
    }

    /// Where mastered traffic for `shard` should go right now: self
    /// when serving, else the highest-ballot unexpired lease holder
    /// this node knows of.
    pub fn holder(&self, shard: u32, now: SimTime) -> Option<NodeId> {
        let state = self.shards.get(&shard)?;
        if self.is_serving(shard, now) {
            return Some(self.me);
        }
        state.hint.filter(|h| h.expiry > now).map(|h| h.node)
    }

    /// Election ballot number of the lease this node holds for `shard`
    /// — seeds the classic-paxos ballot floor so a fresh master's
    /// Phase1a immediately outranks its predecessor's ballots.
    pub fn ballot_floor(&self, shard: u32) -> Option<u32> {
        self.shards
            .get(&shard)
            .and_then(|s| s.holding)
            .map(|h| h.ballot.n)
    }

    /// Records one mastered request served while holding the lease
    /// (feeds access-driven migration).
    pub fn note_served(&mut self, shard: u32, origin_dc: DcId) {
        self.stats.served += 1;
        if let Some(state) = self.shards.get_mut(&shard) {
            if let Some(slot) = state.origin_counts.get_mut(origin_dc.0 as usize) {
                *slot += 1;
            }
        }
    }

    /// Records one mastered request forwarded to the believed holder.
    pub fn note_forwarded(&mut self) {
        self.stats.forwarded += 1;
    }

    /// Records a cold first-touch mastered commit that skipped the
    /// per-record Phase1 exchange because the lease ballot already
    /// carried the promise (one WAN round trip instead of two).
    pub fn note_phase1_skipped(&mut self) {
        self.stats.phase1_skipped += 1;
        self.stats.cold_first_commit_rtts += 1;
    }

    /// Records a classic Phase1 round run for a lease-covered record
    /// while serving — the latency cliff `lease_phase1` exists to
    /// remove (two WAN round trips for the first commit).
    pub fn note_phase1_covered(&mut self) {
        self.stats.phase1_covered += 1;
        self.stats.cold_first_commit_rtts += 2;
    }

    /// One heartbeat tick: closes the previous round, renews or
    /// campaigns, checks migration, opens the next round. Returns the
    /// delay until the next tick (base interval plus the current
    /// contention level's increments).
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<Action>) -> SimDuration {
        let mut contested = false;
        let quarantined = now < self.quarantine_until;
        for idx in 0..self.shard_order.len() {
            let shard = self.shard_order[idx];
            contested |= self.tick_shard(shard, now, quarantined, out);
        }
        if contested {
            self.delay_level = (self.delay_level + 1).min(4);
        } else {
            self.delay_level = self.delay_level.saturating_sub(1);
        }
        self.cfg.heartbeat_interval + self.cfg.hb_delay_increment * self.delay_level as u64
    }

    fn tick_shard(
        &mut self,
        shard: u32,
        now: SimTime,
        quarantined: bool,
        out: &mut Vec<Action>,
    ) -> bool {
        let me = self.me;
        let lease = self.cfg.lease_duration;
        let mut contested = false;

        // Migration check first: it may relinquish the lease, in which
        // case this tick neither renews nor campaigns.
        self.check_migration(shard, now, out);

        let state = self.shards.get_mut(&shard).expect("shard state");
        if let Some(holding) = state.holding {
            // Self-deposition: a holder whose renewals have failed to
            // reach a grant majority for a full lease beyond its expiry
            // is on the wrong side of a partition — possibly an
            // *asymmetric* one where its Acquires still reach the
            // grantors (keeping their routing hints alive and elections
            // suppressed) while the grants can never come back. It
            // stopped serving at the expiry; now it also stops
            // renewing, so the survivors' hints lapse and the
            // connected majority can elect. Dropping `holding` is
            // always safe — it only ever stops this node from serving.
            if now.since(holding.expiry) > lease {
                state.holding = None;
                state.pending = None;
                return contested;
            }
            // Renew (also re-acquires an expired-but-unchallenged
            // lease: replicas treat the same ballot from the same
            // holder as a renewal).
            let expiry = now + lease;
            state.pending = Some(Pending {
                ballot: holding.ballot,
                expiry,
                relinquished: None,
                grants: Vec::new(),
                floor: SimTime::ZERO,
                renewal: true,
            });
            Self::self_grant(state, me, now, &mut self.stats, &self.audit, out);
            for peer in state.peers.clone() {
                if peer != me {
                    out.push(Action::Send {
                        to: peer,
                        msg: MsMsg::Acquire {
                            shard,
                            ballot: holding.ballot,
                            expiry,
                            relinquished: None,
                        },
                    });
                }
            }
        } else if !quarantined && state.hb_round > 0 {
            // Campaign when no live lease is known, this node can see a
            // majority, and it is the top-pid node among those alive —
            // the deterministic omnipaxos tiebreak, so exactly one
            // candidate usually emerges per election.
            let hint_live = state.hint.map(|h| h.expiry > now).unwrap_or(false);
            let connected = state.replies.len() + 1;
            let top_pid = state
                .replies
                .iter()
                .map(|n| n.0 as u64)
                .max()
                .unwrap_or(0)
                .max(me.0 as u64);
            if !hint_live && connected >= state.majority && top_pid == me.0 as u64 {
                let n = state.max_seen.n.max(state.candidacy.n) + 1;
                state.candidacy = Ballot::new(n, me.0 as u64);
                state.max_seen = state.max_seen.max(state.candidacy);
                self.stats.elections += 1;
                contested = true;
                let expiry = now + lease;
                state.pending = Some(Pending {
                    ballot: state.candidacy,
                    expiry,
                    relinquished: None,
                    grants: Vec::new(),
                    floor: SimTime::ZERO,
                    renewal: false,
                });
                Self::self_grant(state, me, now, &mut self.stats, &self.audit, out);
                for peer in state.peers.clone() {
                    if peer != me {
                        out.push(Action::Send {
                            to: peer,
                            msg: MsMsg::Acquire {
                                shard,
                                ballot: state.candidacy,
                                expiry,
                                relinquished: None,
                            },
                        });
                    }
                }
            }
        }

        // Open the next heartbeat round.
        let state = self.shards.get_mut(&shard).expect("shard state");
        state.hb_round += 1;
        state.replies.clear();
        let round = state.hb_round;
        for peer in state.peers.clone() {
            if peer != me {
                out.push(Action::Send {
                    to: peer,
                    msg: MsMsg::HbReq { shard, round },
                });
            }
        }
        contested
    }

    /// Applies the grant rule to this node's *own* lease table for its
    /// own pending acquire/renewal (the candidate is one of the shard's
    /// replicas and votes for itself).
    fn self_grant(
        state: &mut ShardState,
        me: NodeId,
        now: SimTime,
        stats: &mut MastershipStats,
        audit: &Option<LeaseAudit>,
        out: &mut Vec<Action>,
    ) {
        let Some(pending) = state.pending.clone() else {
            return;
        };
        let renewal = state.granted == pending.ballot && state.granted.pid == me.0 as u64;
        if pending.ballot > state.granted || renewal {
            let rose = pending.ballot > state.granted;
            let prev = (state.granted != Ballot::default() && !renewal)
                .then_some((state.granted, state.granted_expiry));
            state.granted = pending.ballot;
            state.granted_expiry = pending.expiry;
            if rose {
                out.push(Action::FloorRaised {
                    shard: state.shard,
                    ballot: pending.ballot,
                });
            }
            Self::apply_grant(
                state,
                me,
                me,
                pending.ballot,
                pending.expiry,
                prev,
                now,
                stats,
                audit,
            );
        }
    }

    /// Folds one grant (self or remote) into the matching pending
    /// acquisition, promoting to holder at majority.
    #[allow(clippy::too_many_arguments)]
    fn apply_grant(
        state: &mut ShardState,
        me: NodeId,
        from: NodeId,
        ballot: Ballot,
        expiry: SimTime,
        prev: Option<(Ballot, SimTime)>,
        now: SimTime,
        stats: &mut MastershipStats,
        audit: &Option<LeaseAudit>,
    ) {
        let Some(pending) = state.pending.as_mut() else {
            return;
        };
        if pending.ballot != ballot || pending.expiry != expiry {
            return;
        }
        if pending.grants.contains(&from) {
            return;
        }
        pending.grants.push(from);
        if let Some((prev_ballot, prev_expiry)) = prev {
            // A predecessor's acked window must be waited out — unless
            // it voluntarily relinquished (handoff) or it was this very
            // node's earlier tenure.
            let relinquished = pending.relinquished == Some(prev_ballot);
            if !relinquished && prev_ballot.pid != me.0 as u64 {
                pending.floor = pending.floor.max(prev_expiry);
            }
        }
        if pending.grants.len() >= state.majority {
            let pending = state.pending.take().expect("pending");
            if pending.renewal {
                if let Some(h) = state.holding.as_mut() {
                    h.expiry = pending.expiry;
                    stats.renewals += 1;
                    if let Some(a) = audit {
                        a.renew(state.shard, h.ballot, h.expiry);
                    }
                }
            } else {
                let serve_from = now.max(pending.floor);
                state.holding = Some(Holding {
                    ballot: pending.ballot,
                    serve_from,
                    expiry: pending.expiry,
                });
                stats.leases_acquired += 1;
                if let Some(a) = audit {
                    a.acquire(state.shard, me, pending.ballot, serve_from, pending.expiry);
                }
            }
            state.hint = Some(HolderHint {
                ballot: ballot.max(state.holding.map(|h| h.ballot).unwrap_or_default()),
                node: me,
                expiry,
            });
        }
    }

    /// Access-driven migration: if a remote data center's mastered
    /// traffic sustained at least `migrate_min_rate` req/s *and*
    /// dominated the holder's local traffic for `migrate_rounds`
    /// consecutive window evaluations, hand the lease to its replica.
    ///
    /// Dominance is judged on request *rate over a window*
    /// (`migrate_window`), not raw per-tick counts, so the knob is
    /// scale-free: quick/paper/10x scales shift absolute traffic by an
    /// order of magnitude but leave req/s-per-client untouched.
    fn check_migration(&mut self, shard: u32, now: SimTime, out: &mut Vec<Action>) {
        let my_dc = self.my_dc.0 as usize;
        let cfg_ratio = self.cfg.migrate_threshold_pct as u64;
        let cfg_rate = self.cfg.migrate_min_rate;
        let cfg_window = self.cfg.migrate_window;
        let cfg_rounds = self.cfg.migrate_rounds;
        let state = self.shards.get_mut(&shard).expect("shard state");
        let serving = state
            .holding
            .map(|h| h.serve_from <= now && now < h.expiry)
            .unwrap_or(false);
        if !serving {
            state.dominant_streak = 0;
            state.last_dominant = None;
            state.window_start = now;
            for c in &mut state.origin_counts {
                *c = 0;
            }
            return;
        }
        // Evaluate only once a full window of traffic has accumulated.
        let elapsed = now.since(state.window_start);
        if elapsed < cfg_window {
            return;
        }
        let local = state.origin_counts.get(my_dc).copied().unwrap_or(0);
        let (dom_dc, dom_count) = state
            .origin_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|(dc, _)| *dc != my_dc)
            .max_by_key(|(dc, c)| (*c, std::cmp::Reverse(*dc)))
            .unwrap_or((my_dc, 0));
        let dom_rate = dom_count * 1_000 / elapsed.as_millis().max(1);
        let dominant = dom_rate >= cfg_rate && dom_count * 100 >= cfg_ratio * local.max(1);
        if dominant && state.last_dominant == Some(dom_dc as u8) {
            state.dominant_streak += 1;
        } else if dominant {
            state.last_dominant = Some(dom_dc as u8);
            state.dominant_streak = 1;
        } else {
            state.last_dominant = None;
            state.dominant_streak = 0;
        }
        // Exponential decay: halve both the counts and the elapsed
        // window so the rate estimate tracks recent traffic.
        for c in &mut state.origin_counts {
            *c /= 2;
        }
        state.window_start += elapsed / 2;
        if state.dominant_streak < cfg_rounds.max(1) {
            return;
        }
        let holding = state.holding.expect("serving implies holding");
        let target = state.peers[dom_dc];
        let next = Ballot::new(holding.ballot.n + 1, target.0 as u64);
        // Relinquish first: this node stops serving *now*, so the
        // successor may start without waiting out our expiry.
        state.holding = None;
        state.pending = None;
        state.dominant_streak = 0;
        state.last_dominant = None;
        state.window_start = now;
        for c in &mut state.origin_counts {
            *c = 0;
        }
        state.max_seen = state.max_seen.max(next);
        // Route optimistically to the target while it acquires.
        state.hint = Some(HolderHint {
            ballot: next,
            node: target,
            expiry: now + self.cfg.lease_duration,
        });
        self.stats.handoffs += 1;
        if let Some(a) = &self.audit {
            a.relinquish(shard, holding.ballot, now);
        }
        out.push(Action::Send {
            to: target,
            msg: MsMsg::Handoff {
                shard,
                ballot: next,
                relinquished: holding.ballot,
            },
        });
        // Let the host ship its per-record override table after the
        // handoff message.
        out.push(Action::Relinquished { shard, to: target });
    }

    /// Handles one mastership message.
    pub fn on_msg(&mut self, from: NodeId, msg: MsMsg, now: SimTime, out: &mut Vec<Action>) {
        let me = self.me;
        let quarantined = now < self.quarantine_until;
        let shard = msg.shard();
        let Some(state) = self.shards.get_mut(&shard) else {
            return;
        };
        match msg {
            MsMsg::HbReq { shard, round } => {
                let ballot = state.candidacy.max(state.granted);
                let holder = state.best_hint(me, now);
                out.push(Action::Send {
                    to: from,
                    msg: MsMsg::HbReply {
                        shard,
                        round,
                        ballot,
                        holder,
                    },
                });
            }
            MsMsg::HbReply {
                round,
                ballot,
                holder,
                ..
            } => {
                // One WAN round trip can outlast a heartbeat interval,
                // so replies to the previous round still prove the peer
                // alive and connected.
                if round + 2 > state.hb_round && !state.replies.contains(&from) {
                    state.replies.push(from);
                }
                state.max_seen = state.max_seen.max(ballot);
                if let Some(h) = holder {
                    if h.expiry > now {
                        state.observe_hint(h);
                    }
                }
            }
            MsMsg::Acquire {
                shard,
                ballot,
                expiry,
                relinquished,
            } => {
                if quarantined {
                    // A restarted replica's grant table died with its
                    // crash: granting again before every possible
                    // pre-crash grant expired could break the quorum
                    // intersection argument. Stay silent.
                    return;
                }
                state.max_seen = state.max_seen.max(ballot);
                let renewal = ballot == state.granted && ballot.pid == from.0 as u64;
                if ballot > state.granted || renewal {
                    let rose = ballot > state.granted;
                    let prev = (state.granted != Ballot::default() && !renewal)
                        .then_some((state.granted, state.granted_expiry));
                    state.granted = ballot;
                    state.granted_expiry = expiry;
                    if rose {
                        out.push(Action::FloorRaised { shard, ballot });
                    }
                    state.observe_hint(HolderHint {
                        ballot,
                        node: ballot.node(),
                        expiry,
                    });
                    // A voluntarily relinquished predecessor need not be
                    // reported: its holder already ceded.
                    let prev = prev.filter(|(b, _)| Some(*b) != relinquished);
                    out.push(Action::Send {
                        to: from,
                        msg: MsMsg::Grant {
                            shard,
                            ballot,
                            expiry,
                            prev,
                        },
                    });
                } else {
                    out.push(Action::Send {
                        to: from,
                        msg: MsMsg::Reject {
                            shard,
                            max: state.granted.max(state.candidacy),
                        },
                    });
                }
            }
            MsMsg::Grant {
                ballot,
                expiry,
                prev,
                ..
            } => {
                Self::apply_grant(
                    state,
                    me,
                    from,
                    ballot,
                    expiry,
                    prev,
                    now,
                    &mut self.stats,
                    &self.audit,
                );
            }
            MsMsg::Reject { max, .. } => {
                state.max_seen = state.max_seen.max(max);
                state.candidacy.n = state.candidacy.n.max(max.n);
                let outranked = state
                    .pending
                    .as_ref()
                    .map(|p| max > p.ballot)
                    .unwrap_or(false);
                if outranked {
                    state.pending = None;
                    if let Some(h) = state.holding.take() {
                        // Someone outranked our lease: stop serving at
                        // once (their serve floor already covers our
                        // acked expiry, so this only tightens).
                        if let Some(a) = &self.audit {
                            a.relinquish(shard, h.ballot, now);
                        }
                    }
                }
            }
            MsMsg::Handoff {
                shard,
                ballot,
                relinquished,
            } => {
                if quarantined || ballot.pid != me.0 as u64 {
                    return;
                }
                state.max_seen = state.max_seen.max(ballot);
                state.candidacy = state.candidacy.max(ballot);
                self.stats.elections += 1;
                let expiry = now + self.cfg.lease_duration;
                state.pending = Some(Pending {
                    ballot,
                    expiry,
                    relinquished: Some(relinquished),
                    grants: Vec::new(),
                    floor: SimTime::ZERO,
                    renewal: false,
                });
                Self::self_grant(state, me, now, &mut self.stats, &self.audit, out);
                for peer in state.peers.clone() {
                    if peer != me {
                        out.push(Action::Send {
                            to: peer,
                            msg: MsMsg::Acquire {
                                shard,
                                ballot,
                                expiry,
                                relinquished: Some(relinquished),
                            },
                        });
                    }
                }
            }
            MsMsg::Overrides { .. } => {
                // The host storage node owns the override table and
                // intercepts this message before it reaches here; a
                // stray delivery (e.g. `lease_phase1` off at the
                // receiver) is safely ignored.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::wire::{from_bytes, to_bytes};

    fn ms(millis: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(millis)
    }

    fn cfg() -> MastershipConfig {
        MastershipConfig::enabled()
    }

    fn group() -> Vec<NodeId> {
        (0..5).map(NodeId).collect()
    }

    fn layer(me: u32) -> Mastership {
        Mastership::new(cfg(), NodeId(me), DcId(me as u8), vec![(0, group())], None)
    }

    #[test]
    fn ballots_order_by_n_then_pid() {
        assert!(Ballot::new(2, 0) > Ballot::new(1, 99));
        assert!(Ballot::new(2, 3) > Ballot::new(2, 2));
        assert_eq!(Ballot::new(1, 1).max(Ballot::new(1, 1)), Ballot::new(1, 1));
    }

    #[test]
    fn messages_round_trip() {
        let samples = vec![
            MsMsg::HbReq { shard: 3, round: 9 },
            MsMsg::HbReply {
                shard: 3,
                round: 9,
                ballot: Ballot::new(4, 2),
                holder: Some(HolderHint {
                    ballot: Ballot::new(4, 2),
                    node: NodeId(2),
                    expiry: ms(500),
                }),
            },
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(1, 4),
                expiry: ms(400),
                relinquished: Some(Ballot::new(0, 1)),
            },
            MsMsg::Grant {
                shard: 0,
                ballot: Ballot::new(1, 4),
                expiry: ms(400),
                prev: Some((Ballot::new(0, 1), ms(300))),
            },
            MsMsg::Reject {
                shard: 1,
                max: Ballot::new(7, 0),
            },
            MsMsg::Handoff {
                shard: 2,
                ballot: Ballot::new(8, 3),
                relinquished: Ballot::new(7, 1),
            },
            MsMsg::Overrides {
                shard: 2,
                runs: vec![
                    OverrideRun {
                        start: 10,
                        len: 3,
                        ballot: Ballot::new(9, 3),
                    },
                    OverrideRun {
                        start: 0xdead_beef_cafe,
                        len: 1,
                        ballot: Ballot::new(11, 0),
                    },
                ],
            },
        ];
        for msg in samples {
            let bytes = to_bytes(&msg);
            let back: MsMsg = from_bytes(&bytes).expect("decode");
            assert_eq!(back, msg);
        }
    }

    /// Full five-node group: ticking everyone twice elects exactly the
    /// top-pid node, which then serves after a majority of grants.
    #[test]
    fn top_pid_wins_the_first_election() {
        let mut nodes: Vec<Mastership> = (0..5).map(layer).collect();
        let mut t = SimTime::ZERO;
        for round in 0u64..3 {
            t = ms(100 * (round + 1));
            // Tick all, collect sends, deliver heartbeats + acquires.
            let mut mail: Vec<(NodeId, NodeId, MsMsg)> = Vec::new();
            for node in nodes.iter_mut() {
                let mut out = Vec::new();
                node.on_tick(t, &mut out);
                for a in out {
                    if let Action::Send { to, msg } = a {
                        mail.push((node.me, to, msg));
                    }
                }
            }
            // Deliver until quiescent (messages are instantaneous here).
            while !mail.is_empty() {
                let batch = std::mem::take(&mut mail);
                for (from, to, msg) in batch {
                    let node = &mut nodes[to.0 as usize];
                    let mut out = Vec::new();
                    node.on_msg(from, msg, t, &mut out);
                    for a in out {
                        if let Action::Send { to: t2, msg } = a {
                            mail.push((node.me, t2, msg));
                        }
                    }
                }
            }
        }
        assert!(nodes[4].is_serving(0, t), "top pid should hold the lease");
        for n in &nodes[..4] {
            assert!(!n.is_serving(0, t), "{:?} must not serve", n.me);
            assert_eq!(n.holder(0, t), Some(NodeId(4)));
        }
        assert_eq!(nodes[4].ballot_floor(0), Some(1));
    }

    /// A replica that granted an old lease reports its expiry; a new
    /// holder must not serve before it.
    #[test]
    fn successor_waits_out_the_predecessors_expiry() {
        let mut candidate = layer(2);
        let mut out = Vec::new();
        candidate.on_tick(ms(100), &mut out); // opens round 1
        for peer in [0u32, 1, 3, 4] {
            candidate.on_msg(
                NodeId(peer),
                MsMsg::HbReply {
                    shard: 0,
                    round: 1,
                    ballot: Ballot::default(),
                    holder: None,
                },
                ms(110),
                &mut Vec::new(),
            );
        }
        // Higher pids look alive, so node 2 must NOT campaign...
        let mut out = Vec::new();
        candidate.on_tick(ms(200), &mut out);
        assert!(
            !out.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: MsMsg::Acquire { .. },
                    ..
                }
            )),
            "node 2 defers to higher pids"
        );
        // ...until only lower pids reply (3 and 4 crashed).
        for peer in [0u32, 1] {
            candidate.on_msg(
                NodeId(peer),
                MsMsg::HbReply {
                    shard: 0,
                    round: 2,
                    ballot: Ballot::default(),
                    holder: None,
                },
                ms(210),
                &mut Vec::new(),
            );
        }
        let mut out = Vec::new();
        candidate.on_tick(ms(300), &mut out);
        let acquire = out
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: MsMsg::Acquire { ballot, expiry, .. },
                    ..
                } => Some((*ballot, *expiry)),
                _ => None,
            })
            .expect("campaigns once top-connected");
        let (ballot, expiry) = acquire;
        assert_eq!(ballot, Ballot::new(1, 2));
        // Two grants complete the majority; one reports a predecessor
        // lease that runs until t=650.
        let mut out = Vec::new();
        candidate.on_msg(
            NodeId(0),
            MsMsg::Grant {
                shard: 0,
                ballot,
                expiry,
                prev: Some((Ballot::new(0, 4), ms(650))),
            },
            ms(320),
            &mut out,
        );
        candidate.on_msg(
            NodeId(1),
            MsMsg::Grant {
                shard: 0,
                ballot,
                expiry,
                prev: None,
            },
            ms(330),
            &mut out,
        );
        assert!(
            !candidate.is_serving(0, ms(340)),
            "must wait out the predecessor's acked expiry"
        );
        assert!(candidate.is_serving(0, ms(651)));
    }

    /// Handoff: the target may serve immediately (the predecessor
    /// relinquished), and grants echoing the relinquished ballot do not
    /// raise the serve floor.
    #[test]
    fn handoff_serves_without_waiting() {
        let mut target = layer(2);
        let mut out = Vec::new();
        let old = Ballot::new(3, 4);
        target.on_msg(
            NodeId(4),
            MsMsg::Handoff {
                shard: 0,
                ballot: Ballot::new(4, 2),
                relinquished: old,
            },
            ms(1000),
            &mut out,
        );
        let expiry = match out
            .iter()
            .find(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: MsMsg::Acquire { .. },
                        ..
                    }
                )
            })
            .expect("acquires on handoff")
        {
            Action::Send {
                msg: MsMsg::Acquire { expiry, .. },
                ..
            } => *expiry,
            _ => unreachable!(),
        };
        let mut out = Vec::new();
        for peer in [0u32, 1] {
            target.on_msg(
                NodeId(peer),
                MsMsg::Grant {
                    shard: 0,
                    ballot: Ballot::new(4, 2),
                    expiry,
                    prev: Some((old, ms(1500))),
                },
                ms(1010),
                &mut out,
            );
        }
        assert!(
            target.is_serving(0, ms(1011)),
            "relinquished predecessor's expiry is waived"
        );
    }

    /// A quarantined (restarted) replica neither grants nor campaigns
    /// until one lease duration has passed.
    #[test]
    fn restart_quarantine_blocks_grants() {
        let mut node = Mastership::new(
            cfg(),
            NodeId(1),
            DcId(1),
            vec![(0, group())],
            Some(ms(1000)),
        );
        let mut out = Vec::new();
        node.on_msg(
            NodeId(4),
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(9, 4),
                expiry: ms(1400),
                relinquished: None,
            },
            ms(1100),
            &mut out,
        );
        assert!(out.is_empty(), "no grant during quarantine");
        node.on_msg(
            NodeId(4),
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(9, 4),
                expiry: ms(1800),
                relinquished: None,
            },
            ms(1500),
            &mut out,
        );
        assert!(
            matches!(
                out.as_slice(),
                [
                    Action::FloorRaised { .. },
                    Action::Send {
                        msg: MsMsg::Grant { .. },
                        ..
                    }
                ]
            ),
            "grants resume after quarantine: {out:?}"
        );
    }

    /// The migration hysteresis: remote-dominant traffic sustained at
    /// a sufficient *rate* over the window hands the lease off; the
    /// holder stops serving at once and tells the host to ship its
    /// override table.
    #[test]
    fn remote_traffic_triggers_handoff() {
        let mut holder = layer(4);
        // Install a held lease directly (window starts at t=0).
        let state = holder.shards.get_mut(&0).unwrap();
        state.holding = Some(Holding {
            ballot: Ballot::new(2, 4),
            serve_from: ms(0),
            expiry: ms(10_000),
        });
        // 40 remote requests over the first 500 ms window = 80 req/s,
        // well past the 20 req/s rate floor and 200 % dominance ratio.
        for _ in 0..40 {
            holder.note_served(0, DcId(1));
        }
        for _ in 0..3 {
            holder.note_served(0, DcId(4));
        }
        let mut out = Vec::new();
        holder.on_tick(ms(500), &mut out); // window full → streak 1
        assert!(holder.is_serving(0, ms(550)));
        for _ in 0..40 {
            holder.note_served(0, DcId(1));
        }
        let mut out = Vec::new();
        holder.on_tick(ms(1000), &mut out); // streak 2 → handoff
        let handoff = out.iter().find_map(|a| match a {
            Action::Send {
                to,
                msg: MsMsg::Handoff { ballot, .. },
            } => Some((*to, *ballot)),
            _ => None,
        });
        assert_eq!(handoff, Some((NodeId(1), Ballot::new(3, 1))));
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::Relinquished { shard: 0, to } if *to == NodeId(1))),
            "host is told to ship overrides: {out:?}"
        );
        assert!(!holder.is_serving(0, ms(1001)), "relinquished immediately");
        assert_eq!(holder.holder(0, ms(1001)), Some(NodeId(1)));
        assert_eq!(holder.stats().handoffs, 1);
    }

    /// Sparse traffic never migrates, no matter how lopsided: the
    /// rate floor filters out low-volume noise at any scale.
    #[test]
    fn low_rate_traffic_never_migrates() {
        let mut holder = layer(4);
        let state = holder.shards.get_mut(&0).unwrap();
        state.holding = Some(Holding {
            ballot: Ballot::new(2, 4),
            serve_from: ms(0),
            expiry: ms(60_000),
        });
        // 5 remote requests per 500 ms window = 10 req/s < 20 req/s.
        for round in 1u64..=8 {
            for _ in 0..5 {
                holder.note_served(0, DcId(1));
            }
            let mut out = Vec::new();
            holder.on_tick(ms(500 * round), &mut out);
            assert!(
                !out.iter().any(|a| matches!(
                    a,
                    Action::Send {
                        msg: MsMsg::Handoff { .. },
                        ..
                    }
                )),
                "below the rate floor, the lease stays put"
            );
        }
        assert_eq!(holder.stats().handoffs, 0);
    }

    /// Lease audit spans never overlap across holders, and renewal
    /// extends rather than duplicates.
    #[test]
    fn audit_records_tenures() {
        let audit = LeaseAudit::new();
        let mut a = layer(4);
        a.set_audit(audit.clone());
        let state = a.shards.get_mut(&0).unwrap();
        state.pending = Some(Pending {
            ballot: Ballot::new(1, 4),
            expiry: ms(400),
            relinquished: None,
            grants: Vec::new(),
            floor: SimTime::ZERO,
            renewal: false,
        });
        Mastership::self_grant(
            a.shards.get_mut(&0).unwrap(),
            NodeId(4),
            ms(0),
            &mut a.stats,
            &a.audit,
            &mut Vec::new(),
        );
        for peer in [0u32, 1] {
            a.on_msg(
                NodeId(peer),
                MsMsg::Grant {
                    shard: 0,
                    ballot: Ballot::new(1, 4),
                    expiry: ms(400),
                    prev: None,
                },
                ms(10),
                &mut Vec::new(),
            );
        }
        let spans = audit.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].node, NodeId(4));
        assert_eq!(spans[0].until, ms(400));
    }

    /// Granting a lease (self or remote) tells the host to raise the
    /// shard's promise floor exactly when the granted ballot rises.
    #[test]
    fn grants_emit_floor_raises() {
        let mut replica = layer(1);
        let mut out = Vec::new();
        replica.on_msg(
            NodeId(4),
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(3, 4),
                expiry: ms(400),
                relinquished: None,
            },
            ms(10),
            &mut out,
        );
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::FloorRaised {
                    shard: 0,
                    ballot
                } if *ballot == Ballot::new(3, 4)
            )),
            "fresh grant raises the floor: {out:?}"
        );
        // A renewal of the same ballot does not re-raise.
        let mut out = Vec::new();
        replica.on_msg(
            NodeId(4),
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(3, 4),
                expiry: ms(800),
                relinquished: None,
            },
            ms(410),
            &mut out,
        );
        assert!(
            !out.iter().any(|a| matches!(a, Action::FloorRaised { .. })),
            "renewal leaves the floor alone: {out:?}"
        );
        // A stale ballot is rejected and raises nothing.
        let mut out = Vec::new();
        replica.on_msg(
            NodeId(2),
            MsMsg::Acquire {
                shard: 0,
                ballot: Ballot::new(2, 2),
                expiry: ms(1200),
                relinquished: None,
            },
            ms(420),
            &mut out,
        );
        assert!(
            out.iter().all(|a| matches!(
                a,
                Action::Send {
                    msg: MsMsg::Reject { .. },
                    ..
                }
            )),
            "stale acquire only rejects: {out:?}"
        );
    }

    #[test]
    fn lease_table_raises_and_looks_up() {
        let mut table = LeaseTable::new(8);
        assert!(table.is_empty());
        assert!(table.raise(7, Ballot::new(2, 4)));
        assert!(!table.raise(7, Ballot::new(1, 9)), "lower ballot ignored");
        assert!(table.raise(7, Ballot::new(3, 1)));
        assert_eq!(table.override_of(7), Some(Ballot::new(3, 1)));
        assert_eq!(table.override_of(8), None);
        assert_eq!(table.peek(7), Some(Ballot::new(3, 1)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn lease_table_spills_lru_half_deterministically() {
        let mut table = LeaseTable::new(4);
        for id in 0u64..4 {
            table.raise(id, Ballot::new(1, 0));
        }
        // Touch 2 and 3 so they are the recent half.
        table.override_of(2);
        table.override_of(3);
        // The fifth insert overflows: everything at or below the
        // median touch stamp spills, keeping only the freshest (3, 4).
        table.raise(4, Ballot::new(1, 0));
        assert_eq!(table.len(), 2);
        assert_eq!(table.peek(0), None);
        assert_eq!(table.peek(1), None);
        assert_eq!(table.peek(2), None);
        assert_eq!(table.peek(3), Some(Ballot::new(1, 0)));
        assert_eq!(table.peek(4), Some(Ballot::new(1, 0)));
    }

    #[test]
    fn lease_table_zero_cap_is_inert() {
        let mut table = LeaseTable::new(0);
        assert!(!table.raise(1, Ballot::new(5, 5)));
        assert!(table.is_empty());
        assert_eq!(table.override_of(1), None);
    }

    #[test]
    fn runs_coalesce_and_round_trip() {
        let mut table = LeaseTable::new(64);
        let b = Ballot::new(4, 2);
        // Two adjacent clusters with a gap and one ballot change.
        for id in [10u64, 11, 12, 14, 15, 100] {
            table.raise(id, b);
        }
        table.raise(15, Ballot::new(5, 2));
        let runs = table.runs();
        assert_eq!(
            runs,
            vec![
                OverrideRun {
                    start: 10,
                    len: 3,
                    ballot: b
                },
                OverrideRun {
                    start: 14,
                    len: 1,
                    ballot: b
                },
                OverrideRun {
                    start: 15,
                    len: 1,
                    ballot: Ballot::new(5, 2)
                },
                OverrideRun {
                    start: 100,
                    len: 1,
                    ballot: b
                },
            ]
        );
        // Wire round trip and re-install reproduce the table.
        let bytes = to_bytes(&MsMsg::Overrides { shard: 0, runs });
        let back: MsMsg = from_bytes(&bytes).expect("decode");
        let MsMsg::Overrides { runs: decoded, .. } = back else {
            panic!("wrong variant");
        };
        let mut fresh = LeaseTable::new(64);
        fresh.install_runs(&decoded);
        assert_eq!(fresh.iter_sorted(), table.iter_sorted());
    }
}

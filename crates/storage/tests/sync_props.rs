//! Property test: batched merkle-range sync reconverges byte-for-byte
//! identical to the legacy per-key sync on arbitrary divergent stores.
//!
//! Two replicas start equal; the peer then applies a random committed
//! workload of which the "local" replica (simulating a crashed node)
//! only sees a prefix-interleaved subset. Both sync protocols are then
//! run against the peer:
//!
//! * **legacy** — every peer key ships, the receiver filters no-ops via
//!   `sync_relevant` (what `Msg::SyncReq`/`SyncKey` does);
//! * **batched** — the peer's range digests are compared against local
//!   digests and only divergent ranges ship (what `SyncDigestReq` /
//!   `SyncDigest`/`SyncRangePull`/`SyncChunk` does).
//!
//! Both must land on identical committed state — equal to the peer's —
//! and a second batched round must find zero divergent ranges.

use std::sync::Arc;

use mdcc_common::{
    CommutativeUpdate, Key, NodeId, ProtocolConfig, Row, SimTime, TableId, TxnId, UpdateOp,
};
use mdcc_paxos::{TxnOption, TxnOutcome};
use mdcc_storage::{Catalog, RecordStore};
use proptest::prelude::*;

const KEYS: u64 = 24;

fn key(i: u64) -> Key {
    Key::new(TableId(1), format!("k{i:02}"))
}

fn loaded_store() -> RecordStore {
    let mut s = RecordStore::new(ProtocolConfig::default(), Arc::new(Catalog::new()));
    for i in 0..KEYS {
        s.load(key(i), Row::new().with("stock", 1_000_000));
    }
    s
}

/// One committed commutative transaction applied through the real
/// acceptor entry points.
fn apply_commit(store: &mut RecordStore, seq: u64, key_idx: u64, delta: i64) {
    let txn = TxnId::new(NodeId(7), seq);
    let opt = TxnOption::solo(
        txn,
        key(key_idx),
        UpdateOp::Commutative(CommutativeUpdate::delta("stock", -delta)),
    );
    let now = SimTime::from_millis(seq);
    store.fast_propose(opt, now);
    store.apply_visibility(&key(key_idx), txn, TxnOutcome::Committed, true, now);
}

/// Runs the legacy per-key flood from `peer` into `local`.
fn legacy_sync(local: &mut RecordStore, peer: &RecordStore) {
    for k in peer.keys() {
        let item = peer.sync_item(&k).expect("peer key");
        if local.sync_relevant(&k, &item.snapshot, &item.resolved) {
            local.sync_from_peer(&k, &item.snapshot, &item.resolved, SimTime::from_secs(900));
        }
    }
}

/// Runs one batched merkle round from `peer` into `local` — the same
/// digest-compare / pull-divergent flow the storage node drives over
/// the network. Returns the number of ranges that shipped.
fn batched_sync(local: &mut RecordStore, peer: &RecordStore, chunk: usize) -> usize {
    let ranges = peer.sync_ranges(chunk);
    let divergent = local.divergent_ranges(&ranges);
    // The one-pass comparison must agree with the per-range digest API.
    for r in &ranges {
        let diverges = divergent.iter().any(|(lo, _)| lo == &r.lo);
        assert_eq!(
            local.sync_digest_in(&r.lo, &r.hi) != r.digest,
            diverges,
            "divergent_ranges must match per-range digest comparison"
        );
    }
    let shipped = divergent.len();
    for (lo, hi) in divergent {
        for item in peer.sync_items_in(&lo, &hi) {
            if local.sync_relevant(&item.key, &item.snapshot, &item.resolved) {
                local.sync_from_peer(
                    &item.key,
                    &item.snapshot,
                    &item.resolved,
                    SimTime::from_secs(900),
                );
            }
        }
    }
    shipped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_sync_equals_per_key_sync(
        ops in prop::collection::vec((0u64..KEYS, 1i64..4, any::<bool>()), 1..120),
        chunk in 1usize..9,
    ) {
        // The peer sees every committed transaction; the local replica
        // (down for part of the run) only the ones flagged `true`.
        let mut peer = loaded_store();
        let mut local_legacy = loaded_store();
        let mut local_batched = loaded_store();
        for (seq, (k, d, seen_locally)) in ops.iter().enumerate() {
            apply_commit(&mut peer, seq as u64, *k, *d);
            if *seen_locally {
                apply_commit(&mut local_legacy, seq as u64, *k, *d);
                apply_commit(&mut local_batched, seq as u64, *k, *d);
            }
        }

        legacy_sync(&mut local_legacy, &peer);
        batched_sync(&mut local_batched, &peer, chunk);

        // Byte-for-byte equal committed state, and equal to the peer's.
        prop_assert_eq!(local_batched.committed_state(), local_legacy.committed_state());
        prop_assert_eq!(local_batched.committed_state(), peer.committed_state());

        // Convergence: a second batched round finds nothing to ship.
        let shipped = batched_sync(&mut local_batched, &peer, chunk);
        prop_assert_eq!(shipped, 0, "second round must be digest-clean");
    }

    #[test]
    fn digest_ranges_cover_every_key_once(
        chunk in 1usize..9,
    ) {
        let peer = loaded_store();
        let ranges = peer.sync_ranges(chunk);
        let mut covered = 0usize;
        for r in &ranges {
            prop_assert!(r.lo <= r.hi);
            covered += peer.sync_items_in(&r.lo, &r.hi).len();
        }
        prop_assert_eq!(covered, KEYS as usize);
        // Ranges tile the sorted key space without overlap.
        for w in ranges.windows(2) {
            prop_assert!(w[0].hi < w[1].lo);
        }
    }
}

//! The per-node record store: key → acceptor state, plus bookkeeping.

use std::collections::BTreeMap;
use std::sync::Arc;

use mdcc_common::{Key, ProtocolConfig, Row, SimTime, TxnId, Version};
use mdcc_paxos::acceptor::{ClassicAccept, FastPropose, Phase1b, Phase2a};
use mdcc_paxos::{
    AcceptorRecord, AcceptorState, Ballot, OptionStatus, RecordSnapshot, Resolution, TxnOption,
    TxnOutcome,
};

use crate::engine::{backend_for, EngineStats, Storage};
use crate::log::{LogEvent, OptionLog};
use crate::schema::Catalog;

/// The full durable state of a [`RecordStore`], exported for checkpoints
/// and re-imported on node restart. Collections are sorted so two equal
/// stores export identically.
#[derive(Debug)]
pub struct StoreState {
    /// Per-record acceptor state, sorted by key.
    pub records: Vec<(Key, AcceptorState)>,
    /// Outstanding (accepted, unresolved) transactions, sorted by id.
    pub pending: Vec<PendingTxn>,
    /// The learned-option log's retained window, oldest first.
    pub log: Vec<(SimTime, LogEvent)>,
    /// Log entries compacted below the retained window (the log's
    /// truncation watermark; see [`crate::log::OPTION_LOG_RETENTION`]).
    pub log_truncated: u64,
}

/// One record's worth of anti-entropy payload: its committed snapshot
/// plus the resolved options a peer would need to catch up — exactly
/// what the legacy per-key sync shipped as one `SyncKey` message.
#[derive(Debug, Clone)]
pub struct SyncItem {
    /// The record.
    pub key: Key,
    /// The sender's committed state for it.
    pub snapshot: RecordSnapshot,
    /// Resolved options of the sender's current instance plus its
    /// closed-instance ring (see [`mdcc_paxos::AcceptorRecord::sync_payload`]).
    pub resolved: Vec<(TxnOption, Resolution)>,
}

/// A contiguous key range of a store with a digest of its sync-relevant
/// state — one leaf of the merkle-style comparison that lets a restarted
/// node skip ranges where it already agrees with its peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRange {
    /// Smallest key in the range (inclusive).
    pub lo: Key,
    /// Largest key in the range (inclusive).
    pub hi: Key,
    /// FNV-1a digest of the **committed projection** `(key, version,
    /// value)` of every key the sender holds in `[lo, hi]` — see
    /// [`RecordStore::sync_digest_in`] for why the digest deliberately
    /// excludes resolution metadata.
    pub digest: u64,
}

/// A transaction with an outstanding (accepted, unresolved) option on this
/// node — the raw material of dangling-transaction detection (§3.2.3).
#[derive(Debug, Clone)]
pub struct PendingTxn {
    /// The transaction.
    pub txn: TxnId,
    /// When this node accepted the option.
    pub since: SimTime,
    /// All keys of the transaction's write-set (from the option).
    pub peers: Arc<[Key]>,
}

/// All records a storage node is responsible for.
#[derive(Debug)]
pub struct RecordStore {
    cfg: ProtocolConfig,
    catalog: Arc<Catalog>,
    /// Where record bytes live — [`crate::engine::MemBackend`] or
    /// [`crate::engine::LogStructuredBackend`], chosen by
    /// `cfg.storage`. Both round-trip logical record state exactly, so
    /// the choice is invisible on the wire and in the WAL.
    records: Box<dyn Storage>,
    log: OptionLog,
    /// txn → (first-accept time, peers). Ordered so that dangling
    /// sweeps emit recovery traffic deterministically.
    pending: BTreeMap<TxnId, PendingTxn>,
}

impl RecordStore {
    /// An empty store for the given schema and protocol config.
    pub fn new(cfg: ProtocolConfig, catalog: Arc<Catalog>) -> Self {
        let records = backend_for(&cfg, &catalog);
        Self {
            cfg,
            catalog,
            records,
            log: OptionLog::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Bulk-loads a record as already committed at version 1 (initial data
    /// distribution; every replica loads the same rows).
    pub fn load(&mut self, key: Key, row: Row) {
        let constraints = self.catalog.constraints_for(&key);
        let rec = AcceptorRecord::with_value(
            constraints,
            self.cfg.replication,
            self.cfg.fast_quorum,
            self.cfg.max_instance_options,
            row,
        );
        self.records.insert(key, rec);
    }

    /// Number of materialized records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record was ever touched.
    pub fn is_empty(&self) -> bool {
        self.records.len() == 0
    }

    /// The learned-option log.
    pub fn log(&self) -> &OptionLog {
        &self.log
    }

    /// Committed (read-committed) local read: version and value.
    /// Uncommitted options are never visible (§4.1).
    pub fn read_committed(&self, key: &Key) -> Option<(Version, Row)> {
        self.with_record(key, |rec| {
            rec.value().map(|row| (rec.version(), row.clone()))
        })
        .flatten()
    }

    /// The record's committed version even if the value is absent
    /// (deleted records report their tombstone version).
    pub fn version_of(&self, key: &Key) -> Version {
        self.with_record(key, |r| r.version())
            .unwrap_or(Version::ZERO)
    }

    /// Calls `f` with the acceptor record under `key` (tests, recovery
    /// audit, read-only message handling). `None` when the key was
    /// never touched. Access is closure-shaped rather than a returned
    /// reference because the log-structured backend materializes cold
    /// records transiently.
    pub fn with_record<R>(&self, key: &Key, f: impl FnOnce(&AcceptorRecord) -> R) -> Option<R> {
        let mut f = Some(f);
        let mut out = None;
        self.records.read(key, &mut |rec| {
            if let Some(f) = f.take() {
                out = Some(f(rec));
            }
        });
        out
    }

    /// Calls `f` with mutable access to the record under `key`,
    /// creating an absent record first.
    fn with_record_mut<R>(&mut self, key: &Key, f: impl FnOnce(&mut AcceptorRecord) -> R) -> R {
        let cfg = &self.cfg;
        let catalog = &self.catalog;
        let mut make = || {
            AcceptorRecord::new(
                catalog.constraints_for(key),
                cfg.replication,
                cfg.fast_quorum,
                cfg.max_instance_options,
            )
        };
        let mut f = Some(f);
        let mut out = None;
        self.records.update(key, &mut make, &mut |rec| {
            if let Some(f) = f.take() {
                out = Some(f(rec));
            }
        });
        out.expect("update invokes the access closure")
    }

    /// Phase1a for one record.
    pub fn phase1a(&mut self, key: &Key, ballot: Ballot) -> Phase1b {
        self.with_record_mut(key, |rec| rec.phase1a(ballot))
    }

    /// Raises one record's promise floor without a Phase1b (the
    /// lease-carried Phase1: a mastership lease grant stands in for the
    /// per-record Phase1a exchange). Returns whether the promise rose.
    pub fn raise_promise(&mut self, key: &Key, ballot: Ballot) -> bool {
        self.with_record_mut(key, |rec| rec.raise_promise(ballot))
    }

    /// Fast-ballot proposal for one record, with logging and pending
    /// tracking.
    pub fn fast_propose(&mut self, opt: TxnOption, now: SimTime) -> FastPropose {
        let key = opt.key.clone();
        let txn = opt.txn;
        let peers = Arc::clone(&opt.peers);
        let result = self.with_record_mut(&key, |rec| rec.fast_propose(opt));
        if let FastPropose::Vote(vote) = &result {
            if let Some(status) = vote.cstruct.status_of(txn) {
                self.note_decided(now, txn, key, status, peers);
            }
        }
        result
    }

    /// Classic Phase2a for one record, with logging and pending tracking.
    pub fn classic_accept(&mut self, key: &Key, p2a: Phase2a, now: SimTime) -> ClassicAccept {
        let new_txns: Vec<(TxnId, Arc<[Key]>)> = p2a
            .new_options
            .iter()
            .map(|o| (o.txn, Arc::clone(&o.peers)))
            .collect();
        let result = self.with_record_mut(key, |rec| rec.classic_accept(p2a));
        if let ClassicAccept::Vote(vote) = &result {
            for (txn, peers) in new_txns {
                if let Some(status) = vote.cstruct.status_of(txn) {
                    self.note_decided(now, txn, key.clone(), status, peers);
                }
            }
        }
        result
    }

    /// Applies a transaction outcome to one record. Returns `true` when
    /// the record's instance advanced. `learned_accepted` is the globally
    /// learned status of this record's option (see
    /// [`mdcc_paxos::acceptor::Resolution`]).
    pub fn apply_visibility(
        &mut self,
        key: &Key,
        txn: TxnId,
        outcome: TxnOutcome,
        learned_accepted: bool,
        now: SimTime,
    ) -> bool {
        let advanced = self.with_record_mut(key, |rec| {
            rec.apply_visibility(txn, outcome, learned_accepted)
        });
        self.log.push(
            now,
            LogEvent::Outcome {
                txn,
                key: key.clone(),
                outcome,
            },
        );
        self.pending.remove(&txn);
        advanced
    }

    /// All keys this store holds, sorted (deterministic iteration for
    /// sync sweeps and checkpoints).
    pub fn keys(&self) -> Vec<Key> {
        self.records.keys_sorted()
    }

    /// Records currently materialized in memory (the whole store under
    /// the in-memory backend; the cache under the log-structured one).
    pub fn materialized(&self) -> usize {
        self.records.materialized()
    }

    /// The storage engine's counters (segments, live/dead bytes,
    /// compactions); all-zero for the in-memory backend.
    pub fn engine_stats(&self) -> EngineStats {
        self.records.engine_stats()
    }

    /// The committed state of every record — `(key, version, value)`
    /// sorted by key. This is the paper-visible state of a storage node:
    /// the recovery audit compares it byte-for-byte across replicas.
    pub fn committed_state(&self) -> Vec<(Key, Version, Option<Row>)> {
        self.keys()
            .into_iter()
            .map(|k| {
                let (version, value) = self
                    .with_record(&k, |r| (r.version(), r.value().cloned()))
                    .expect("listed key exists");
                (k, version, value)
            })
            .collect()
    }

    /// Exports the store's full durable state for a checkpoint.
    pub fn export_state(&self) -> StoreState {
        let records: Vec<(Key, AcceptorState)> = self
            .keys()
            .into_iter()
            .map(|k| {
                let state = self
                    .with_record(&k, |r| r.export_state())
                    .expect("listed key exists");
                (k, state)
            })
            .collect();
        StoreState {
            records,
            pending: self.pending.values().cloned().collect(),
            log: self.log.iter().cloned().collect(),
            log_truncated: self.log.watermark(),
        }
    }

    /// Rebuilds a store from an exported state (restart path).
    pub fn from_state(cfg: ProtocolConfig, catalog: Arc<Catalog>, state: StoreState) -> Self {
        let mut store = Self::new(cfg, catalog);
        for (key, acceptor) in state.records {
            let rec = AcceptorRecord::from_state(
                store.catalog.constraints_for(&key),
                store.cfg.replication,
                store.cfg.fast_quorum,
                store.cfg.max_instance_options,
                acceptor,
            );
            store.records.insert(key, rec);
        }
        for p in state.pending {
            store.pending.insert(p.txn, p);
        }
        store.log = OptionLog::from_parts(state.log_truncated, state.log);
        store
    }

    /// True when [`RecordStore::sync_from_peer`] with these arguments
    /// would change state (pre-check before WAL-logging the sync).
    pub fn sync_relevant(
        &self,
        key: &Key,
        snapshot: &RecordSnapshot,
        resolved: &[(TxnOption, Resolution)],
    ) -> bool {
        match self.with_record(key, |rec| rec.sync_would_change(snapshot, resolved)) {
            Some(would) => would,
            None => snapshot.version > Version::ZERO || !resolved.is_empty(),
        }
    }

    /// Applies a peer's committed state for one record (anti-entropy
    /// after a restart, see [`AcceptorRecord::sync_from_peer`]). Returns
    /// `true` when local state changed.
    pub fn sync_from_peer(
        &mut self,
        key: &Key,
        snapshot: &RecordSnapshot,
        resolved: &[(TxnOption, Resolution)],
        now: SimTime,
    ) -> bool {
        if snapshot.version == Version::ZERO && resolved.is_empty() {
            return false;
        }
        let (newly_resolved, changed) = self.with_record_mut(key, |rec| {
            let newly: Vec<TxnId> = resolved
                .iter()
                .map(|(opt, _)| opt.txn)
                .filter(|txn| rec.outcome_of(*txn).is_none())
                .collect();
            (newly, rec.sync_from_peer(snapshot, resolved))
        });
        if changed {
            for (opt, resolution) in resolved {
                if newly_resolved.contains(&opt.txn) {
                    self.log.push(
                        now,
                        LogEvent::Outcome {
                            txn: opt.txn,
                            key: key.clone(),
                            outcome: resolution.outcome,
                        },
                    );
                }
                self.pending.remove(&opt.txn);
            }
        }
        changed
    }

    // ------------------------------------------------------------------
    // Merkle-style anti-entropy: range digests and batched payloads.
    // ------------------------------------------------------------------

    /// The anti-entropy payload for one record this store holds.
    pub fn sync_item(&self, key: &Key) -> Option<SyncItem> {
        self.with_record(key, |rec| SyncItem {
            key: key.clone(),
            snapshot: rec.snapshot(),
            resolved: rec.sync_payload(),
        })
    }

    /// Partitions this store's keys into chunks of at most `chunk_keys`
    /// and digests each chunk's committed projection, in one pass over
    /// the sorted key list. A peer comparing these digests against its
    /// own (via [`RecordStore::divergent_ranges`]) learns exactly which
    /// ranges diverge — everything else never touches the wire.
    pub fn sync_ranges(&self, chunk_keys: usize) -> Vec<SyncRange> {
        let keys = self.keys();
        keys.chunks(chunk_keys.max(1))
            .map(|ks| SyncRange {
                digest: self.digest_of(ks),
                lo: ks.first().expect("chunks are non-empty").clone(),
                hi: ks.last().expect("chunks are non-empty").clone(),
            })
            .collect()
    }

    /// Compares a peer's advertised range digests against local state in
    /// one pass (sorted keys once, binary-searched per range) and
    /// returns the `(lo, hi)` bounds whose committed projections differ
    /// — the ranges worth pulling.
    pub fn divergent_ranges(&self, ranges: &[SyncRange]) -> Vec<(Key, Key)> {
        let keys = self.keys();
        ranges
            .iter()
            .filter(|r| {
                let lo = keys.partition_point(|k| k < &r.lo);
                let hi = keys.partition_point(|k| k <= &r.hi);
                self.digest_of(&keys[lo..hi]) != r.digest
            })
            .map(|r| (r.lo.clone(), r.hi.clone()))
            .collect()
    }

    /// FNV-1a digest of the **committed projection** `(key, version,
    /// value)` of every key this store holds in `[lo, hi]` (sorted) —
    /// the same canonical bytes the recovery audit compares across
    /// replicas, so two converged replicas always digest equal.
    ///
    /// Equal digests mean the range's committed states already agree;
    /// shipping it could at most transfer resolution metadata whose
    /// effects are already folded into both values (the pending-option
    /// and dangling-recovery machinery owns those leftovers, exactly as
    /// it does for the legacy flood's `sync_relevant` no-ops).
    pub fn sync_digest_in(&self, lo: &Key, hi: &Key) -> u64 {
        self.digest_of(&self.keys_in(lo, hi))
    }

    /// The committed-projection digest of an already-sorted key slice.
    fn digest_of(&self, keys: &[Key]) -> u64 {
        let mut enc = mdcc_common::wire::Enc::new();
        for key in keys {
            self.with_record(key, |rec| {
                mdcc_common::wire::Wire::encode(key, &mut enc);
                mdcc_common::wire::Wire::encode(&rec.version(), &mut enc);
                mdcc_common::wire::Wire::encode(&rec.value().cloned(), &mut enc);
            })
            .expect("digested key exists");
        }
        mdcc_common::wire::fnv1a64(&enc.finish())
    }

    /// The anti-entropy payloads of every key this store holds in
    /// `[lo, hi]`, sorted — the batched replacement for a flood of
    /// per-key `SyncKey` messages.
    pub fn sync_items_in(&self, lo: &Key, hi: &Key) -> Vec<SyncItem> {
        self.keys_in(lo, hi)
            .into_iter()
            .map(|key| self.sync_item(&key).expect("key listed by keys_in"))
            .collect()
    }

    /// Keys this store holds in `[lo, hi]`, sorted.
    fn keys_in(&self, lo: &Key, hi: &Key) -> Vec<Key> {
        let mut keys = self.keys();
        keys.retain(|k| k >= lo && k <= hi);
        keys
    }

    /// Transactions whose options have been outstanding on this node for
    /// longer than the dangling timeout — candidates for recovery.
    pub fn dangling(&self, now: SimTime) -> Vec<PendingTxn> {
        self.pending
            .values()
            .filter(|p| now.since(p.since) >= self.cfg.dangling_timeout)
            .cloned()
            .collect()
    }

    /// All currently pending transactions (metrics/tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn note_decided(
        &mut self,
        now: SimTime,
        txn: TxnId,
        key: Key,
        status: OptionStatus,
        peers: Arc<[Key]>,
    ) {
        self.log.push(now, LogEvent::Decided { txn, key, status });
        if status.is_accepted() {
            self.pending.entry(txn).or_insert(PendingTxn {
                txn,
                since: now,
                peers,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, NodeId, PhysicalUpdate, SimDuration, TableId, UpdateOp};
    use mdcc_paxos::AttrConstraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new().with(
                crate::schema::TableSchema::new(TableId(1), "item")
                    .with_constraint(AttrConstraint::at_least("stock", 0)),
            ),
        )
    }

    fn store() -> RecordStore {
        RecordStore::new(ProtocolConfig::default(), catalog())
    }

    fn key(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn load_and_read_committed() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 7));
        let (v, row) = s.read_committed(&key("i1")).unwrap();
        assert_eq!(v, Version(1));
        assert_eq!(row.get_int("stock"), Some(7));
        assert!(s.read_committed(&key("nope")).is_none());
        assert_eq!(s.version_of(&key("nope")), Version::ZERO);
    }

    #[test]
    fn fast_propose_logs_and_tracks_pending() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 7));
        let opt = TxnOption::solo(
            txn(1),
            key("i1"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        let now = SimTime::from_millis(10);
        let r = s.fast_propose(opt, now);
        assert!(matches!(r, FastPropose::Vote(_)));
        assert_eq!(s.pending_len(), 1);
        assert_eq!(s.log().len(), 1);
        // Resolution clears the pending set and logs the outcome.
        s.apply_visibility(
            &key("i1"),
            txn(1),
            TxnOutcome::Committed,
            true,
            SimTime::from_millis(20),
        );
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.log().outcome_of(txn(1)), Some(TxnOutcome::Committed));
        let (_, row) = s.read_committed(&key("i1")).unwrap();
        assert_eq!(row.get_int("stock"), Some(6));
    }

    #[test]
    fn rejected_options_do_not_become_pending() {
        let mut s = store();
        // Record does not exist: a commutative update is rejected.
        let opt = TxnOption::solo(
            txn(1),
            key("ghost"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        let r = s.fast_propose(opt, SimTime::ZERO);
        assert!(matches!(r, FastPropose::Vote(_)));
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.log().len(), 1, "the rejection is still logged");
    }

    #[test]
    fn dangling_detection_uses_timeout() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 7));
        let opt = TxnOption::solo(
            txn(1),
            key("i1"),
            UpdateOp::Physical(PhysicalUpdate::write(
                Version(1),
                Row::new().with("stock", 1),
            )),
        );
        s.fast_propose(opt, SimTime::ZERO);
        let timeout = ProtocolConfig::default().dangling_timeout;
        assert!(s
            .dangling(SimTime::ZERO + timeout - SimDuration::from_millis(1))
            .is_empty());
        let d = s.dangling(SimTime::ZERO + timeout);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].txn, txn(1));
        assert_eq!(&*d[0].peers, &[key("i1")]);
    }

    #[test]
    fn export_import_round_trip_is_exact() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 9));
        s.load(key("i2"), Row::new().with("stock", 4));
        let now = SimTime::from_millis(5);
        s.fast_propose(
            TxnOption::solo(
                txn(1),
                key("i1"),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -2)),
            ),
            now,
        );
        s.apply_visibility(&key("i1"), txn(1), TxnOutcome::Committed, true, now);
        s.fast_propose(
            TxnOption::solo(
                txn(2),
                key("i2"),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
            ),
            now,
        );

        let rebuilt =
            RecordStore::from_state(ProtocolConfig::default(), catalog(), s.export_state());
        assert_eq!(rebuilt.committed_state(), s.committed_state());
        assert_eq!(rebuilt.pending_len(), s.pending_len());
        assert_eq!(rebuilt.log().len(), s.log().len());
        assert_eq!(
            format!("{:?}", rebuilt.export_state()),
            format!("{:?}", s.export_state()),
            "export ∘ import ∘ export is the identity"
        );
    }

    #[test]
    fn sync_from_peer_clears_pending_and_logs_outcomes() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 9));
        let now = SimTime::from_millis(3);
        let opt = TxnOption::solo(
            txn(1),
            key("i1"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -2)),
        );
        s.fast_propose(opt.clone(), now);
        assert_eq!(s.pending_len(), 1);
        // A peer reports the same version with the option resolved.
        let peer_snapshot = mdcc_paxos::RecordSnapshot {
            version: Version(1),
            value: Some(Row::new().with("stock", 7)),
            folded: Vec::new(),
        };
        let resolved = vec![(
            opt,
            mdcc_paxos::Resolution {
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
        )];
        assert!(s.sync_from_peer(
            &key("i1"),
            &peer_snapshot,
            &resolved,
            SimTime::from_millis(9)
        ));
        assert_eq!(s.pending_len(), 0, "synced resolution clears pending");
        assert_eq!(s.log().outcome_of(txn(1)), Some(TxnOutcome::Committed));
        let (_, row) = s.read_committed(&key("i1")).unwrap();
        assert_eq!(row.get_int("stock"), Some(7));
    }

    #[test]
    fn uncommitted_options_are_invisible_to_reads() {
        let mut s = store();
        s.load(key("i1"), Row::new().with("stock", 7));
        let opt = TxnOption::solo(
            txn(1),
            key("i1"),
            UpdateOp::Physical(PhysicalUpdate::write(
                Version(1),
                Row::new().with("stock", 0),
            )),
        );
        s.fast_propose(opt, SimTime::ZERO);
        let (v, row) = s.read_committed(&key("i1")).unwrap();
        assert_eq!(v, Version(1));
        assert_eq!(
            row.get_int("stock"),
            Some(7),
            "read committed, not the option"
        );
    }
}

//! The learned-option log.
//!
//! §3.2.3: "additionally keeping a log of all learned options at the
//! storage node … every option includes all necessary information to
//! reconstruct the state of the corresponding transactions". The log is
//! the durable trail a write-ahead log would hold on disk; tests and the
//! recovery audit read it back.

use mdcc_common::{Key, SimTime, TxnId};
use mdcc_paxos::{OptionStatus, TxnOutcome};

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEvent {
    /// An option was decided locally with this status.
    Decided {
        /// Transaction owning the option.
        txn: TxnId,
        /// Record the option targets.
        key: Key,
        /// Local accept/reject decision.
        status: OptionStatus,
    },
    /// A transaction outcome (Visibility) was applied.
    Outcome {
        /// The resolved transaction.
        txn: TxnId,
        /// Key the visibility was applied at.
        key: Key,
        /// Commit or abort.
        outcome: TxnOutcome,
    },
}

/// Append-only log with a monotone timestamp per entry.
#[derive(Debug, Clone, Default)]
pub struct OptionLog {
    entries: Vec<(SimTime, LogEvent)>,
}

impl OptionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at time `now`.
    pub fn push(&mut self, now: SimTime, event: LogEvent) {
        debug_assert!(
            self.entries.last().map(|(t, _)| *t <= now).unwrap_or(true),
            "log time went backwards"
        );
        self.entries.push((now, event));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, LogEvent)> {
        self.entries.iter()
    }

    /// All events involving `txn`, oldest-first.
    pub fn for_txn(&self, txn: TxnId) -> Vec<&LogEvent> {
        self.entries
            .iter()
            .filter(|(_, e)| match e {
                LogEvent::Decided { txn: t, .. } | LogEvent::Outcome { txn: t, .. } => *t == txn,
            })
            .map(|(_, e)| e)
            .collect()
    }

    /// The final outcome logged for `txn`, if any.
    pub fn outcome_of(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.entries.iter().rev().find_map(|(_, e)| match e {
            LogEvent::Outcome {
                txn: t, outcome, ..
            } if *t == txn => Some(*outcome),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{NodeId, TableId};

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn records_and_filters_by_txn() {
        let mut log = OptionLog::new();
        log.push(
            SimTime::from_millis(1),
            LogEvent::Decided {
                txn: txn(1),
                key: key("a"),
                status: OptionStatus::Accepted,
            },
        );
        log.push(
            SimTime::from_millis(2),
            LogEvent::Decided {
                txn: txn(2),
                key: key("a"),
                status: OptionStatus::Accepted,
            },
        );
        log.push(
            SimTime::from_millis(3),
            LogEvent::Outcome {
                txn: txn(1),
                key: key("a"),
                outcome: TxnOutcome::Committed,
            },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_txn(txn(1)).len(), 2);
        assert_eq!(log.outcome_of(txn(1)), Some(TxnOutcome::Committed));
        assert_eq!(log.outcome_of(txn(2)), None);
    }

    #[test]
    fn last_outcome_wins() {
        // Recovery may first resolve a transaction as aborted and a later
        // (buggy/duplicate) message repeat it; reading the latest entry is
        // the contract.
        let mut log = OptionLog::new();
        log.push(
            SimTime::from_millis(1),
            LogEvent::Outcome {
                txn: txn(1),
                key: key("a"),
                outcome: TxnOutcome::Aborted,
            },
        );
        assert_eq!(log.outcome_of(txn(1)), Some(TxnOutcome::Aborted));
    }
}

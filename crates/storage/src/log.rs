//! The learned-option log.
//!
//! §3.2.3: "additionally keeping a log of all learned options at the
//! storage node … every option includes all necessary information to
//! reconstruct the state of the corresponding transactions". The log is
//! the durable trail a write-ahead log would hold on disk; tests and the
//! recovery audit read it back.
//!
//! The log is **watermark-compacted**: only the most recent
//! [`OPTION_LOG_RETENTION`] entries are retained, mirroring the
//! acceptor-side truncation of `outcomes`/`resolved_entries` — the log
//! rides checkpoints, not the wire, and would otherwise grow with
//! transaction count. [`OptionLog::watermark`] counts the entries
//! dropped below the retained window.

use std::collections::VecDeque;

use mdcc_common::{Key, SimTime, TxnId};
use mdcc_paxos::{OptionStatus, TxnOutcome};

/// Entries retained in an [`OptionLog`] before the oldest is compacted
/// away. Recovery consumers (dangling-transaction queries, tests) only
/// ever look at recent transactions: an entry old enough to age out of
/// this window has long resolved everywhere, the same synchrony
/// assumption the acceptor-side `RESOLVED_RETENTION` truncation makes.
pub const OPTION_LOG_RETENTION: usize = 4_096;

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEvent {
    /// An option was decided locally with this status.
    Decided {
        /// Transaction owning the option.
        txn: TxnId,
        /// Record the option targets.
        key: Key,
        /// Local accept/reject decision.
        status: OptionStatus,
    },
    /// A transaction outcome (Visibility) was applied.
    Outcome {
        /// The resolved transaction.
        txn: TxnId,
        /// Key the visibility was applied at.
        key: Key,
        /// Commit or abort.
        outcome: TxnOutcome,
    },
}

/// Append-mostly log with a monotone timestamp per entry, compacted at
/// a retention watermark.
#[derive(Debug, Clone, Default)]
pub struct OptionLog {
    entries: VecDeque<(SimTime, LogEvent)>,
    /// Entries dropped below the retained window — the compaction
    /// watermark. `watermark + len` is the count ever appended.
    truncated: u64,
}

impl OptionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from its retained window and watermark (restart
    /// path; checkpoints persist both).
    pub fn from_parts(truncated: u64, entries: Vec<(SimTime, LogEvent)>) -> Self {
        Self {
            entries: entries.into(),
            truncated,
        }
    }

    /// Appends an event at time `now`, compacting past the retention
    /// window.
    pub fn push(&mut self, now: SimTime, event: LogEvent) {
        debug_assert!(
            self.entries.back().map(|(t, _)| *t <= now).unwrap_or(true),
            "log time went backwards"
        );
        self.entries.push_back((now, event));
        while self.entries.len() > OPTION_LOG_RETENTION {
            self.entries.pop_front();
            self.truncated += 1;
        }
    }

    /// Number of retained entries (bounded by [`OPTION_LOG_RETENTION`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries compacted away below the retained window.
    pub fn watermark(&self) -> u64 {
        self.truncated
    }

    /// Entries ever appended (retained + compacted).
    pub fn total_appended(&self) -> u64 {
        self.truncated + self.entries.len() as u64
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates retained entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, LogEvent)> {
        self.entries.iter()
    }

    /// All events involving `txn`, oldest-first.
    pub fn for_txn(&self, txn: TxnId) -> Vec<&LogEvent> {
        self.entries
            .iter()
            .filter(|(_, e)| match e {
                LogEvent::Decided { txn: t, .. } | LogEvent::Outcome { txn: t, .. } => *t == txn,
            })
            .map(|(_, e)| e)
            .collect()
    }

    /// The final outcome logged for `txn`, if any.
    pub fn outcome_of(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.entries.iter().rev().find_map(|(_, e)| match e {
            LogEvent::Outcome {
                txn: t, outcome, ..
            } if *t == txn => Some(*outcome),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{NodeId, TableId};

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn records_and_filters_by_txn() {
        let mut log = OptionLog::new();
        log.push(
            SimTime::from_millis(1),
            LogEvent::Decided {
                txn: txn(1),
                key: key("a"),
                status: OptionStatus::Accepted,
            },
        );
        log.push(
            SimTime::from_millis(2),
            LogEvent::Decided {
                txn: txn(2),
                key: key("a"),
                status: OptionStatus::Accepted,
            },
        );
        log.push(
            SimTime::from_millis(3),
            LogEvent::Outcome {
                txn: txn(1),
                key: key("a"),
                outcome: TxnOutcome::Committed,
            },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_txn(txn(1)).len(), 2);
        assert_eq!(log.outcome_of(txn(1)), Some(TxnOutcome::Committed));
        assert_eq!(log.outcome_of(txn(2)), None);
    }

    #[test]
    fn long_runs_stay_bounded_at_the_retention_watermark() {
        // The log rides checkpoints, not the wire: without compaction it
        // grows with transaction count. Sustained traffic must plateau
        // at the retention window while the watermark advances.
        let mut log = OptionLog::new();
        let total = 3 * OPTION_LOG_RETENTION as u64;
        for i in 0..total {
            log.push(
                SimTime::from_millis(i),
                LogEvent::Outcome {
                    txn: txn(i),
                    key: key("a"),
                    outcome: TxnOutcome::Committed,
                },
            );
        }
        assert_eq!(log.len(), OPTION_LOG_RETENTION, "bounded growth");
        assert_eq!(log.watermark(), total - OPTION_LOG_RETENTION as u64);
        assert_eq!(log.total_appended(), total);
        // Recent transactions stay queryable; compacted ones are gone.
        assert_eq!(log.outcome_of(txn(total - 1)), Some(TxnOutcome::Committed));
        assert_eq!(log.outcome_of(txn(0)), None, "compacted entry forgotten");
        // The watermark round-trips through from_parts (restart path).
        let rebuilt = OptionLog::from_parts(log.watermark(), log.iter().cloned().collect());
        assert_eq!(rebuilt.watermark(), log.watermark());
        assert_eq!(rebuilt.total_appended(), log.total_appended());
    }

    #[test]
    fn last_outcome_wins() {
        // Recovery may first resolve a transaction as aborted and a later
        // (buggy/duplicate) message repeat it; reading the latest entry is
        // the contract.
        let mut log = OptionLog::new();
        log.push(
            SimTime::from_millis(1),
            LogEvent::Outcome {
                txn: txn(1),
                key: key("a"),
                outcome: TxnOutcome::Aborted,
            },
        );
        assert_eq!(log.outcome_of(txn(1)), Some(TxnOutcome::Aborted));
    }
}

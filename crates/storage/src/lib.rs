//! The storage-node substrate: a versioned, schema-aware record store.
//!
//! The paper's architecture (§2) separates a stateless DB library from
//! stateful storage nodes; each storage node owns a set of records, and
//! each record embeds its own Paxos state. This crate provides that
//! stateful half:
//!
//! * [`schema::Catalog`] — table definitions with integrity constraints
//!   (the `stock ≥ 0` class of constraints that demarcation enforces);
//! * [`store::RecordStore`] — key → [`mdcc_paxos::AcceptorRecord`] map
//!   with committed-read paths, bulk load, and pending-option tracking
//!   for dangling-transaction detection (§3.2.3);
//! * [`log::OptionLog`] — the watermark-compacted log of learned
//!   options each storage node keeps so that "any node can recover the
//!   transaction";
//! * [`engine::Storage`] — pluggable engines deciding where record
//!   bytes live: the in-memory reference map or the log-structured
//!   segment backend ([`ProtocolConfig::storage`](mdcc_common::ProtocolConfig)).

pub mod engine;
pub mod log;
pub mod schema;
pub mod store;
pub mod wire;

pub use engine::{EngineStats, LogStructuredBackend, MemBackend, Storage};
pub use log::{LogEvent, OptionLog, OPTION_LOG_RETENTION};
pub use mdcc_paxos::AttrConstraint;
pub use schema::{Catalog, TableSchema};
pub use store::{PendingTxn, RecordStore, StoreState, SyncItem, SyncRange};

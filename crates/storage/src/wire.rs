//! [`Wire`] encodings for store state and anti-entropy payloads.
//!
//! Completes the shared wire layer of [`mdcc_common::wire`] for the
//! types this crate owns: the learned-option log, pending-transaction
//! bookkeeping, exported store state (checkpoints) and the merkle-sync
//! vocabulary ([`SyncItem`], [`SyncRange`]).

use std::sync::Arc;

use mdcc_common::wire::{err, Dec, Enc, Wire, WireResult};
use mdcc_common::{Key, SimTime, TxnId};
use mdcc_paxos::{RecordSnapshot, TxnOutcome};

use crate::log::LogEvent;
use crate::store::{PendingTxn, StoreState, SyncItem, SyncRange};

impl Wire for LogEvent {
    fn encode(&self, out: &mut Enc) {
        match self {
            LogEvent::Decided { txn, key, status } => {
                out.u8(0);
                txn.encode(out);
                key.encode(out);
                status.encode(out);
            }
            LogEvent::Outcome { txn, key, outcome } => {
                out.u8(1);
                txn.encode(out);
                key.encode(out);
                outcome.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(LogEvent::Decided {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                status: mdcc_paxos::OptionStatus::decode(inp)?,
            }),
            1 => Ok(LogEvent::Outcome {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                outcome: TxnOutcome::decode(inp)?,
            }),
            _ => err("log-event tag"),
        }
    }
}

impl Wire for PendingTxn {
    fn encode(&self, out: &mut Enc) {
        self.txn.encode(out);
        self.since.encode(out);
        out.u32(self.peers.len() as u32);
        for peer in self.peers.iter() {
            peer.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let txn = TxnId::decode(inp)?;
        let since = SimTime::decode(inp)?;
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("pending peers length");
        }
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(Key::decode(inp)?);
        }
        Ok(PendingTxn {
            txn,
            since,
            peers: Arc::from(peers),
        })
    }
}

impl Wire for StoreState {
    fn encode(&self, out: &mut Enc) {
        self.records.encode(out);
        self.pending.encode(out);
        self.log.encode(out);
        self.log_truncated.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(StoreState {
            records: Vec::decode(inp)?,
            pending: Vec::decode(inp)?,
            log: Vec::decode(inp)?,
            log_truncated: u64::decode(inp)?,
        })
    }
}

impl Wire for SyncItem {
    fn encode(&self, out: &mut Enc) {
        self.key.encode(out);
        self.snapshot.encode(out);
        self.resolved.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(SyncItem {
            key: Key::decode(inp)?,
            snapshot: RecordSnapshot::decode(inp)?,
            resolved: Vec::decode(inp)?,
        })
    }
}

impl Wire for SyncRange {
    fn encode(&self, out: &mut Enc) {
        self.lo.encode(out);
        self.hi.encode(out);
        out.u64(self.digest);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(SyncRange {
            lo: Key::decode(inp)?,
            hi: Key::decode(inp)?,
            digest: inp.u64()?,
        })
    }
}

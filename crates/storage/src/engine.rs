//! Pluggable storage engines behind the record store.
//!
//! [`crate::store::RecordStore`] owns the protocol logic — what a
//! record mutation *means* — and delegates where record bytes *live* to
//! a [`Storage`] backend:
//!
//! * [`MemBackend`] — every record fully materialized in a hash map.
//!   The reference engine: fastest access, RSS proportional to record
//!   count × materialized-record size.
//! * [`LogStructuredBackend`] — records encoded into append-only
//!   in-memory segments behind a sparse index, with a bounded cache of
//!   materialized records and copy-forward compaction once dead bytes
//!   outweigh live ones. RSS stays O(encoded state + working set).
//!
//! The two are interchangeable at the protocol level: everything a node
//! says on the wire or persists in its WAL is a pure function of the
//! records' logical state, and [`mdcc_paxos::AcceptorRecord`] round-trips
//! that state exactly through `export_state`/`from_state` (the codec the
//! log-structured engine reuses for its segment entries). Cluster runs
//! under either backend are byte-identical.
//!
//! The trait is object-safe — access goes through `&mut dyn FnMut`
//! closures rather than returned references, because the log-structured
//! engine materializes cold records transiently and has nothing to
//! borrow from after the call.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mdcc_common::wire::{Dec, Enc, Wire};
use mdcc_common::{Key, ProtocolConfig};
use mdcc_paxos::{AcceptorRecord, AcceptorState};

use crate::schema::Catalog;

/// Target size of one append-only segment. Small enough that
/// compaction granularity stays fine-grained in tests, large enough
/// that segment count stays negligible at paper scale.
pub const SEGMENT_BYTES: usize = 256 * 1024;

/// Compaction only runs once at least this many dead bytes have
/// accumulated — rewriting a few stale KiB is not worth the copy.
pub const COMPACT_FLOOR_BYTES: usize = 64 * 1024;

/// Observable counters of a storage engine (reports, tests, benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Bytes of segment entries still referenced by the index.
    pub live_bytes: usize,
    /// Bytes of superseded segment entries awaiting compaction.
    pub dead_bytes: usize,
    /// Open segments.
    pub segments: usize,
    /// Copy-forward compactions performed.
    pub compactions: u64,
    /// Materialized records written back to segments under cache
    /// pressure.
    pub evictions: u64,
}

/// Where a store's records live. See the module docs for the contract;
/// in short, a backend must round-trip every record's logical state
/// exactly, and its iteration order (`keys_sorted`) must be
/// deterministic.
pub trait Storage: fmt::Debug + Send {
    /// Inserts (or replaces) a fully-formed record.
    fn insert(&mut self, key: Key, rec: AcceptorRecord);

    /// Calls `f` with the record under `key`, materializing it
    /// transiently if cold. Returns `false` (without calling `f`) when
    /// the key was never inserted.
    fn read(&self, key: &Key, f: &mut dyn FnMut(&AcceptorRecord)) -> bool;

    /// Calls `f` with mutable access to the record under `key`,
    /// creating it via `make` first if absent. The mutated record stays
    /// hot until the backend decides to spill it.
    fn update(
        &mut self,
        key: &Key,
        make: &mut dyn FnMut() -> AcceptorRecord,
        f: &mut dyn FnMut(&mut AcceptorRecord),
    );

    /// Number of distinct records ever inserted or created.
    fn len(&self) -> usize;

    /// True when no record was ever inserted or created.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every key, sorted — the deterministic iteration order sync
    /// sweeps and checkpoints rely on.
    fn keys_sorted(&self) -> Vec<Key>;

    /// Records currently held materialized in memory (the whole store
    /// for [`MemBackend`]; the cache for [`LogStructuredBackend`]).
    fn materialized(&self) -> usize;

    /// Engine counters; all-zero for backends without segments.
    fn engine_stats(&self) -> EngineStats;
}

/// The reference engine: a plain hash map of materialized records.
#[derive(Debug, Default)]
pub struct MemBackend {
    records: HashMap<Key, AcceptorRecord>,
}

impl MemBackend {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemBackend {
    fn insert(&mut self, key: Key, rec: AcceptorRecord) {
        self.records.insert(key, rec);
    }

    fn read(&self, key: &Key, f: &mut dyn FnMut(&AcceptorRecord)) -> bool {
        match self.records.get(key) {
            Some(rec) => {
                f(rec);
                true
            }
            None => false,
        }
    }

    fn update(
        &mut self,
        key: &Key,
        make: &mut dyn FnMut() -> AcceptorRecord,
        f: &mut dyn FnMut(&mut AcceptorRecord),
    ) {
        f(self.records.entry(key.clone()).or_insert_with(make));
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn keys_sorted(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.records.keys().cloned().collect();
        keys.sort();
        keys
    }

    fn materialized(&self) -> usize {
        self.records.len()
    }

    fn engine_stats(&self) -> EngineStats {
        EngineStats::default()
    }
}

/// Location of one encoded record inside the segment files.
#[derive(Debug, Clone, Copy)]
struct EntryRef {
    seg: u32,
    off: u32,
    len: u32,
}

#[derive(Debug)]
struct Cached {
    rec: AcceptorRecord,
    /// Monotone touch stamp; eviction drops the oldest-touched half.
    touch: u64,
}

/// The log-structured engine: append-only segments + sparse index +
/// bounded materialization cache.
///
/// Writes land in the cache; under pressure the least-recently-touched
/// half is encoded (`export_state`, the checkpoint codec) and appended
/// to the open segment, superseding any older entry for the same key.
/// Reads hit the cache or transiently decode the indexed entry.
/// Compaction copies every live entry forward into fresh segments once
/// dead bytes outweigh live ones, in sorted-key order so the rewrite is
/// deterministic.
pub struct LogStructuredBackend {
    replication: usize,
    fast_quorum: usize,
    max_instance_options: usize,
    catalog: Arc<Catalog>,
    cache_cap: usize,
    /// Bytes the incremental cleaner may scan per triggering event;
    /// zero selects the stop-the-world rewrite.
    compact_budget: usize,
    index: HashMap<Key, EntryRef>,
    segments: Vec<Vec<u8>>,
    cache: HashMap<Key, Cached>,
    clock: u64,
    live_bytes: usize,
    dead_bytes: usize,
    compactions: u64,
    evictions: u64,
    /// Incremental-cleaner cursor: next sealed segment to scan and the
    /// offset of the next unscanned entry inside it.
    clean_seg: usize,
    clean_off: usize,
    /// Superseded bytes per segment — lets the cleaner skip all-live
    /// segments in O(1) instead of churning its own copy-forwards.
    seg_dead: Vec<usize>,
}

impl fmt::Debug for LogStructuredBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogStructuredBackend")
            .field("records", &self.len())
            .field("cached", &self.cache.len())
            .field("stats", &self.engine_stats())
            .finish()
    }
}

impl LogStructuredBackend {
    /// An empty engine for the given schema and protocol config (the
    /// record-materialization parameters and `log_cache_records` come
    /// from there).
    pub fn new(cfg: &ProtocolConfig, catalog: Arc<Catalog>) -> Self {
        Self {
            replication: cfg.replication,
            fast_quorum: cfg.fast_quorum,
            max_instance_options: cfg.max_instance_options,
            catalog,
            cache_cap: cfg.log_cache_records.max(1),
            compact_budget: cfg.compact_budget_bytes,
            index: HashMap::new(),
            segments: Vec::new(),
            cache: HashMap::new(),
            clock: 0,
            live_bytes: 0,
            dead_bytes: 0,
            compactions: 0,
            evictions: 0,
            clean_seg: 0,
            clean_off: 0,
            seg_dead: Vec::new(),
        }
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Decodes the indexed segment entry for `key` into a fresh record.
    fn materialize(&self, key: &Key) -> Option<AcceptorRecord> {
        let entry = self.index.get(key)?;
        let seg = &self.segments[entry.seg as usize];
        let bytes = &seg[entry.off as usize..(entry.off + entry.len) as usize];
        let mut dec = Dec::new(bytes);
        let _key = Key::decode(&mut dec).expect("segment entry key decodes");
        let state = AcceptorState::decode(&mut dec).expect("segment entry state decodes");
        Some(AcceptorRecord::from_state(
            self.catalog.constraints_for(key),
            self.replication,
            self.fast_quorum,
            self.max_instance_options,
            state,
        ))
    }

    /// Appends pre-encoded entry bytes to the open segment and points
    /// the index at them, superseding (and dead-marking) any older
    /// entry for the key. No compaction trigger — callers decide.
    fn raw_append(&mut self, key: &Key, bytes: &[u8]) {
        if self
            .segments
            .last()
            .is_none_or(|seg| seg.len() >= SEGMENT_BYTES)
        {
            self.segments.push(Vec::new());
            self.seg_dead.push(0);
        }
        let seg = (self.segments.len() - 1) as u32;
        let open = self.segments.last_mut().expect("open segment exists");
        let off = open.len() as u32;
        open.extend_from_slice(bytes);
        let entry = EntryRef {
            seg,
            off,
            len: bytes.len() as u32,
        };
        if let Some(old) = self.index.insert(key.clone(), entry) {
            self.live_bytes -= old.len as usize;
            self.dead_bytes += old.len as usize;
            self.seg_dead[old.seg as usize] += old.len as usize;
        }
        self.live_bytes += bytes.len();
    }

    /// Encodes `(key, state)` and appends it to the open segment,
    /// superseding any older entry for the key.
    fn append_entry(&mut self, key: &Key, rec: &AcceptorRecord) {
        let mut enc = Enc::new();
        key.encode(&mut enc);
        rec.export_state().encode(&mut enc);
        let bytes = enc.finish();
        self.raw_append(key, &bytes);
        self.maybe_compact();
    }

    /// Spills the least-recently-touched half of the cache into
    /// segments. Eviction order is the touch-stamp order — a pure
    /// function of the access history, so runs are deterministic.
    fn evict_lru_half(&mut self) {
        let mut order: Vec<(u64, Key)> = self
            .cache
            .iter()
            .map(|(k, c)| (c.touch, k.clone()))
            .collect();
        order.sort();
        order.truncate(order.len().div_ceil(2));
        for (_, key) in order {
            let cached = self.cache.remove(&key).expect("listed entry is cached");
            self.append_entry(&key, &cached.rec);
            self.evictions += 1;
        }
    }

    /// Copy-forward compaction: rewrite live entries once dead bytes
    /// outweigh live ones — all at once, or (with a budget) a bounded
    /// slice of cleaning work per triggering event.
    fn maybe_compact(&mut self) {
        if self.dead_bytes <= self.live_bytes || self.dead_bytes < COMPACT_FLOOR_BYTES {
            return;
        }
        if self.compact_budget > 0 {
            self.compact_step(self.compact_budget);
        } else {
            self.compact();
        }
    }

    /// One incremental-cleaner slice: scans up to `budget` bytes of
    /// sealed segments from the cursor, re-appending still-live entries
    /// to the open segment and tombstoning each fully-scanned segment
    /// (its bytes are all dead by then, so its storage is reclaimed).
    /// At least one entry advances per call, so the cleaner always makes
    /// progress even under a budget smaller than one entry.
    pub fn compact_step(&mut self, budget: usize) {
        // Cursor past the end (all sealed segments visited): wrap so
        // dead bytes accumulated behind it are reachable again.
        if self.clean_seg + 1 >= self.segments.len() {
            self.clean_seg = 0;
            self.clean_off = 0;
        }
        let mut scanned = 0;
        // The open (last) segment is never cleaned: it still grows, and
        // the cleaner itself appends into it.
        while self.clean_seg + 1 < self.segments.len() {
            let seg_len = self.segments[self.clean_seg].len();
            // All-live (or tombstoned) segments are skipped outright —
            // scanning them would churn the cleaner's own copy-forwards
            // through the open segment forever.
            if self.clean_off == 0 && self.seg_dead[self.clean_seg] == 0 {
                self.clean_seg += 1;
                continue;
            }
            if self.clean_off >= seg_len {
                // Every entry was either re-appended (original now dead)
                // or already dead: the whole segment is reclaimable.
                let freed = std::mem::take(&mut self.segments[self.clean_seg]).len();
                self.dead_bytes -= freed;
                self.seg_dead[self.clean_seg] = 0;
                self.clean_seg += 1;
                self.clean_off = 0;
                self.compactions += 1;
                continue;
            }
            if scanned >= budget {
                return;
            }
            let (entry, key) = {
                let seg = &self.segments[self.clean_seg];
                let tail = &seg[self.clean_off..];
                let mut dec = Dec::new(tail);
                let key = Key::decode(&mut dec).expect("segment entry key decodes");
                AcceptorState::decode(&mut dec).expect("segment entry state decodes");
                let len = tail.len() - dec.remaining();
                (
                    EntryRef {
                        seg: self.clean_seg as u32,
                        off: self.clean_off as u32,
                        len: len as u32,
                    },
                    key,
                )
            };
            let live = self
                .index
                .get(&key)
                .is_some_and(|e| e.seg == entry.seg && e.off == entry.off);
            if live {
                let bytes = self.segments[entry.seg as usize]
                    [entry.off as usize..(entry.off + entry.len) as usize]
                    .to_vec();
                self.raw_append(&key, &bytes);
            }
            scanned += entry.len as usize;
            self.clean_off += entry.len as usize;
        }
    }

    /// Unconditional copy-forward rewrite (tests and benches call this
    /// directly; live code goes through the dead-byte trigger).
    pub fn compact(&mut self) {
        let mut keys: Vec<Key> = self.index.keys().cloned().collect();
        keys.sort();
        let mut segments: Vec<Vec<u8>> = Vec::new();
        let mut index = HashMap::with_capacity(self.index.len());
        for key in keys {
            let old = self.index[&key];
            let src =
                &self.segments[old.seg as usize][old.off as usize..(old.off + old.len) as usize];
            if segments
                .last()
                .is_none_or(|s: &Vec<u8>| s.len() >= SEGMENT_BYTES)
            {
                segments.push(Vec::new());
            }
            let seg = (segments.len() - 1) as u32;
            let open = segments.last_mut().expect("open segment exists");
            let off = open.len() as u32;
            open.extend_from_slice(src);
            index.insert(
                key,
                EntryRef {
                    seg,
                    off,
                    len: old.len,
                },
            );
        }
        self.seg_dead = vec![0; segments.len()];
        self.segments = segments;
        self.index = index;
        self.dead_bytes = 0;
        self.compactions += 1;
        // The cleaner's cursor pointed into the replaced segments.
        self.clean_seg = 0;
        self.clean_off = 0;
    }

    /// Drains the incremental cleaner: repeats budgeted slices until no
    /// sealed segment remains unscanned (tests and shutdown paths).
    pub fn compact_drain(&mut self) {
        while self.clean_seg + 1 < self.segments.len() {
            self.compact_step(usize::MAX);
        }
    }
}

impl Storage for LogStructuredBackend {
    fn insert(&mut self, key: Key, rec: AcceptorRecord) {
        let touch = self.touch();
        self.cache.insert(key, Cached { rec, touch });
        if self.cache.len() > self.cache_cap {
            self.evict_lru_half();
        }
    }

    fn read(&self, key: &Key, f: &mut dyn FnMut(&AcceptorRecord)) -> bool {
        if let Some(cached) = self.cache.get(key) {
            f(&cached.rec);
            return true;
        }
        match self.materialize(key) {
            Some(rec) => {
                f(&rec);
                true
            }
            None => false,
        }
    }

    fn update(
        &mut self,
        key: &Key,
        make: &mut dyn FnMut() -> AcceptorRecord,
        f: &mut dyn FnMut(&mut AcceptorRecord),
    ) {
        let touch = self.touch();
        if let Some(cached) = self.cache.get_mut(key) {
            cached.touch = touch;
            f(&mut cached.rec);
            return;
        }
        let mut rec = self.materialize(key).unwrap_or_else(&mut *make);
        f(&mut rec);
        self.cache.insert(key.clone(), Cached { rec, touch });
        if self.cache.len() > self.cache_cap {
            self.evict_lru_half();
        }
    }

    fn len(&self) -> usize {
        let spilled_only = self
            .index
            .keys()
            .filter(|k| !self.cache.contains_key(*k))
            .count();
        self.cache.len() + spilled_only
    }

    fn keys_sorted(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.cache.keys().cloned().collect();
        keys.extend(
            self.index
                .keys()
                .filter(|k| !self.cache.contains_key(*k))
                .cloned(),
        );
        keys.sort();
        keys
    }

    fn materialized(&self) -> usize {
        self.cache.len()
    }

    fn engine_stats(&self) -> EngineStats {
        EngineStats {
            live_bytes: self.live_bytes,
            dead_bytes: self.dead_bytes,
            // Tombstoned (reclaimed) segments don't count.
            segments: self.segments.iter().filter(|s| !s.is_empty()).count(),
            compactions: self.compactions,
            evictions: self.evictions,
        }
    }
}

/// Builds the backend `cfg.storage` selects.
pub fn backend_for(cfg: &ProtocolConfig, catalog: &Arc<Catalog>) -> Box<dyn Storage> {
    match cfg.storage {
        mdcc_common::StorageKind::Mem => Box::new(MemBackend::new()),
        mdcc_common::StorageKind::LogStructured => {
            Box::new(LogStructuredBackend::new(cfg, Arc::clone(catalog)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use mdcc_common::{Row, TableId};
    use mdcc_paxos::AttrConstraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new().with(
                TableSchema::new(TableId(1), "item")
                    .with_constraint(AttrConstraint::at_least("stock", 0)),
            ),
        )
    }

    fn key(n: usize) -> Key {
        Key::new(TableId(1), format!("k{n:05}"))
    }

    fn record(cat: &Arc<Catalog>, k: &Key, stock: i64) -> AcceptorRecord {
        let cfg = ProtocolConfig::default();
        AcceptorRecord::with_value(
            cat.constraints_for(k),
            cfg.replication,
            cfg.fast_quorum,
            cfg.max_instance_options,
            Row::new().with("stock", stock),
        )
    }

    fn small_cache_engine(cap: usize) -> LogStructuredBackend {
        let cfg = ProtocolConfig {
            log_cache_records: cap,
            ..ProtocolConfig::default()
        };
        LogStructuredBackend::new(&cfg, catalog())
    }

    #[test]
    fn backends_agree_on_reads_and_keys() {
        let cat = catalog();
        let mut mem = MemBackend::new();
        let mut log = small_cache_engine(4);
        for i in 0..32 {
            let k = key(i);
            mem.insert(k.clone(), record(&cat, &k, i as i64));
            log.insert(k.clone(), record(&cat, &k, i as i64));
        }
        assert_eq!(mem.len(), 32);
        assert_eq!(log.len(), 32);
        assert_eq!(mem.keys_sorted(), log.keys_sorted());
        assert!(log.materialized() <= 4, "cache bounded by its cap");
        for i in 0..32 {
            let k = key(i);
            let mut a = None;
            let mut b = None;
            assert!(mem.read(&k, &mut |r| a = Some(format!("{:?}", r.export_state()))));
            assert!(log.read(&k, &mut |r| b = Some(format!("{:?}", r.export_state()))));
            assert_eq!(a, b, "evicted record round-trips exactly");
        }
    }

    #[test]
    fn cold_reads_do_not_grow_the_cache() {
        let cat = catalog();
        let mut log = small_cache_engine(4);
        for i in 0..16 {
            let k = key(i);
            log.insert(k.clone(), record(&cat, &k, 1));
        }
        let before = log.materialized();
        for i in 0..16 {
            assert!(log.read(&key(i), &mut |_| {}));
        }
        assert_eq!(log.materialized(), before, "reads materialize transiently");
        assert!(!log.read(&key(999), &mut |_| {}), "absent key stays absent");
    }

    #[test]
    fn update_creates_then_mutates_in_place() {
        let cat = catalog();
        let mut log = small_cache_engine(8);
        let k = key(0);
        let mut made = 0;
        log.update(
            &k,
            &mut || {
                made += 1;
                record(&cat, &k, 5)
            },
            &mut |_| {},
        );
        log.update(&k, &mut || unreachable!("record exists"), &mut |_| {});
        assert_eq!(made, 1);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn rewrites_accumulate_dead_bytes_and_compaction_reclaims_them() {
        let cat = catalog();
        let mut log = small_cache_engine(1);
        // Repeatedly rewriting two keys through a 1-record cache forces
        // an eviction (and hence a superseding segment append) on every
        // other update.
        for round in 0..200 {
            for i in 0..2 {
                let k = key(i);
                log.insert(k.clone(), record(&cat, &k, round));
            }
        }
        let stats = log.engine_stats();
        assert!(stats.evictions > 0);
        assert!(stats.dead_bytes > 0, "superseded entries count as dead");
        log.compact();
        let after = log.engine_stats();
        assert_eq!(after.dead_bytes, 0);
        assert!(after.live_bytes <= stats.live_bytes + stats.dead_bytes);
        // Contents survive the rewrite.
        for i in 0..2 {
            let mut stock = None;
            assert!(log.read(&key(i), &mut |r| {
                stock = r.value().and_then(|row| row.get_int("stock"));
            }));
            assert_eq!(stock, Some(199));
        }
    }

    #[test]
    fn compaction_preserves_encoded_state_byte_for_byte() {
        let cat = catalog();
        let mut log = small_cache_engine(1);
        for i in 0..8 {
            let k = key(i);
            for round in 0..4 {
                log.insert(k.clone(), record(&cat, &k, round));
            }
        }
        let before: Vec<String> = log
            .keys_sorted()
            .iter()
            .map(|k| {
                let mut s = String::new();
                log.read(k, &mut |r| s = format!("{:?}", r.export_state()));
                s
            })
            .collect();
        log.compact();
        let after: Vec<String> = log
            .keys_sorted()
            .iter()
            .map(|k| {
                let mut s = String::new();
                log.read(k, &mut |r| s = format!("{:?}", r.export_state()));
                s
            })
            .collect();
        assert_eq!(before, after, "compaction copies entries verbatim");
        assert_eq!(log.engine_stats().compactions, 1);
    }

    fn budgeted_engine(cap: usize, budget: usize) -> LogStructuredBackend {
        let cfg = ProtocolConfig {
            log_cache_records: cap,
            compact_budget_bytes: budget,
            ..ProtocolConfig::default()
        };
        LogStructuredBackend::new(&cfg, catalog())
    }

    fn encoded_states(log: &LogStructuredBackend) -> Vec<(Key, Vec<u8>)> {
        log.keys_sorted()
            .into_iter()
            .map(|k| {
                let mut bytes = Vec::new();
                log.read(&k, &mut |r| {
                    bytes = mdcc_common::wire::to_bytes(&r.export_state());
                });
                (k, bytes)
            })
            .collect()
    }

    /// The incremental cleaner is a pure scheduling change: an engine
    /// cleaning a few KiB per event ends with byte-identical record
    /// state to one rewriting everything stop-the-world, and its
    /// reclamation actually happens (dead bytes bounded, segments
    /// tombstoned).
    #[test]
    fn budgeted_cleaning_matches_stop_the_world_byte_for_byte() {
        let mut whole = small_cache_engine(1);
        let mut sliced = budgeted_engine(1, 4 * 1024);
        let cat = catalog();
        // Enough churn through a 1-record cache to trip the dead-byte
        // trigger many times over in both engines.
        for round in 0..400 {
            for i in 0..24 {
                let k = key(i);
                whole.insert(k.clone(), record(&cat, &k, round));
                sliced.insert(k.clone(), record(&cat, &k, round));
            }
        }
        assert!(
            sliced.engine_stats().compactions > 0,
            "the budgeted cleaner never reclaimed a segment"
        );
        // Finish both: one full rewrite vs draining the cleaner.
        whole.compact();
        sliced.compact_drain();
        assert_eq!(
            encoded_states(&whole),
            encoded_states(&sliced),
            "budgeted cleaning must preserve every record byte-for-byte"
        );
        let s = sliced.engine_stats();
        assert_eq!(
            s.live_bytes,
            whole.engine_stats().live_bytes,
            "same records, same encoded live footprint"
        );
        assert!(
            s.dead_bytes <= SEGMENT_BYTES,
            "dead bytes past the open segment survived the drain: {}",
            s.dead_bytes
        );
    }

    /// A budget smaller than one encoded entry still terminates and
    /// still reclaims — the cleaner advances at least one entry per
    /// triggering event.
    #[test]
    fn tiny_budgets_still_make_progress() {
        let cat = catalog();
        let mut log = budgeted_engine(1, 1);
        for round in 0..400 {
            for i in 0..24 {
                let k = key(i);
                log.insert(k.clone(), record(&cat, &k, round));
            }
        }
        log.compact_drain();
        let stats = log.engine_stats();
        assert!(stats.compactions > 0, "no segment ever reclaimed");
        for i in 0..24 {
            let mut stock = None;
            assert!(log.read(&key(i), &mut |r| {
                stock = r.value().and_then(|row| row.get_int("stock"));
            }));
            assert_eq!(stock, Some(399), "latest write survived cleaning");
        }
    }
}

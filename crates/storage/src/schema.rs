//! Table catalog: names, ids and integrity constraints.

use std::collections::HashMap;
use std::sync::Arc;

use mdcc_common::{Key, TableId};
use mdcc_paxos::AttrConstraint;

/// Definition of one table.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Stable identifier, embedded in every [`Key`].
    pub id: TableId,
    /// Human-readable name (reports, examples).
    pub name: String,
    /// Integrity constraints enforced by acceptors on commutative updates.
    pub constraints: Arc<[AttrConstraint]>,
}

impl TableSchema {
    /// A table without constraints.
    pub fn new(id: TableId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            constraints: Arc::from(Vec::new()),
        }
    }

    /// Builder-style constraint attachment.
    pub fn with_constraint(mut self, c: AttrConstraint) -> Self {
        let mut v: Vec<AttrConstraint> = self.constraints.iter().cloned().collect();
        v.push(c);
        self.constraints = Arc::from(v);
        self
    }

    /// Builds a key into this table.
    pub fn key(&self, pk: impl Into<String>) -> Key {
        Key::new(self.id, pk)
    }
}

/// The set of tables a deployment serves.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<TableId, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table; replaces any previous definition with the same id.
    pub fn add(&mut self, schema: TableSchema) -> &mut Self {
        self.tables.insert(schema.id, schema);
        self
    }

    /// Builder-style [`Catalog::add`].
    pub fn with(mut self, schema: TableSchema) -> Self {
        self.add(schema);
        self
    }

    /// Looks up a table definition.
    pub fn table(&self, id: TableId) -> Option<&TableSchema> {
        self.tables.get(&id)
    }

    /// Constraints for the table a key lives in (empty for unknown tables,
    /// which keeps bulk paths infallible; writes to unknown tables are
    /// rejected at the API layer instead).
    pub fn constraints_for(&self, key: &Key) -> Arc<[AttrConstraint]> {
        self.tables
            .get(&key.table)
            .map(|t| Arc::clone(&t.constraints))
            .unwrap_or_else(|| Arc::from(Vec::new()))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are defined.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_and_constraints() {
        let items = TableSchema::new(TableId(1), "item")
            .with_constraint(AttrConstraint::at_least("stock", 0));
        let catalog = Catalog::new()
            .with(items)
            .with(TableSchema::new(TableId(2), "orders"));
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.table(TableId(1)).unwrap().name, "item");
        let k = catalog.table(TableId(1)).unwrap().key("i1");
        assert_eq!(catalog.constraints_for(&k).len(), 1);
        let k2 = Key::new(TableId(2), "o1");
        assert!(catalog.constraints_for(&k2).is_empty());
        let unknown = Key::new(TableId(9), "x");
        assert!(catalog.constraints_for(&unknown).is_empty());
    }

    #[test]
    fn with_constraint_accumulates() {
        let t = TableSchema::new(TableId(1), "t")
            .with_constraint(AttrConstraint::at_least("a", 0))
            .with_constraint(AttrConstraint::at_most("b", 10));
        assert_eq!(t.constraints.len(), 2);
    }
}

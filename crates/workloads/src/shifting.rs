//! Shifting-locality workload: the access-driven-migration experiment.
//!
//! Clients in data center `d` spend each *phase* buying only items of
//! one shard — `(d + phase) mod shards` — so every phase boundary moves
//! each DC's traffic to the next shard. Under static placement a shard's
//! master stays wherever the hash put it, and most phases pay the full
//! WAN round trip to a remote master; with dynamic mastership the lease
//! migrates to the dominant-origin DC within a few heartbeat rounds and
//! the latency returns to the local-master floor.
//!
//! A `phase_len` at least as long as the run reduces to a fixed
//! per-DC-per-shard assignment — the 100 %-local floor the experiment
//! compares against.

use std::sync::Arc;

use mdcc_common::{Key, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::micro::{item_key, BuyTxn};
use crate::{Transaction, Workload};

/// Shifting-locality knobs.
#[derive(Clone)]
pub struct ShiftingConfig {
    /// Number of items in the table.
    pub items: u64,
    /// Items per buy transaction.
    pub items_per_txn: usize,
    /// Maximum decrement per item (uniform `1..=max`).
    pub max_decrement: i64,
    /// Use commutative deltas (MDCC) instead of physical writes.
    pub commutative: bool,
    /// The client's data center.
    pub my_dc: u8,
    /// Shard count of the deployment (phases rotate through it).
    pub shard_of: Arc<dyn Fn(&Key) -> u32 + Send + Sync>,
    /// Number of shards (the rotation modulus).
    pub shards: u32,
    /// Length of one locality phase. Phases at least as long as the run
    /// never shift — the local floor configuration.
    pub phase_len: SimDuration,
}

impl std::fmt::Debug for ShiftingConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShiftingConfig")
            .field("items", &self.items)
            .field("my_dc", &self.my_dc)
            .field("shards", &self.shards)
            .field("phase_len", &self.phase_len)
            .finish_non_exhaustive()
    }
}

/// The shifting-locality generator for one client.
pub struct ShiftingLocalityWorkload {
    cfg: ShiftingConfig,
    /// Item ids of each shard (materialized once).
    pools: Vec<Vec<u64>>,
}

impl ShiftingLocalityWorkload {
    /// Builds a generator; partitions the item space by shard.
    ///
    /// # Panics
    ///
    /// Panics if any shard's pool would hold fewer items than one
    /// transaction needs (the experiment would deadlock picking
    /// distinct items).
    pub fn new(cfg: ShiftingConfig) -> Self {
        let mut pools = vec![Vec::new(); cfg.shards as usize];
        for i in 0..cfg.items {
            let shard = (cfg.shard_of)(&item_key(i)) as usize;
            pools[shard].push(i);
        }
        for (shard, pool) in pools.iter().enumerate() {
            assert!(
                pool.len() >= cfg.items_per_txn,
                "shard {shard} holds only {} of {} items needed per txn",
                pool.len(),
                cfg.items_per_txn
            );
        }
        Self { cfg, pools }
    }

    /// The shard this client's DC targets at `now`.
    pub fn target_shard(&self, now: SimTime) -> u32 {
        let phase = now.as_micros() / self.cfg.phase_len.as_micros().max(1);
        ((self.cfg.my_dc as u64 + phase) % self.cfg.shards as u64) as u32
    }
}

impl Workload for ShiftingLocalityWorkload {
    fn next_txn(&mut self, rng: &mut SmallRng) -> Box<dyn Transaction> {
        // Timeless callers get phase 0 (the non-shifting assignment).
        self.next_txn_at(SimTime::ZERO, rng)
    }

    fn next_txn_at(&mut self, now: SimTime, rng: &mut SmallRng) -> Box<dyn Transaction> {
        let pool = &self.pools[self.target_shard(now) as usize];
        let mut items: Vec<(Key, i64)> = Vec::with_capacity(self.cfg.items_per_txn);
        while items.len() < self.cfg.items_per_txn {
            let id = pool[rng.gen_range(0..pool.len())];
            let key = item_key(id);
            if items.iter().all(|(k, _)| *k != key) {
                let amount = rng.gen_range(1..=self.cfg.max_decrement);
                items.push((key, amount));
            }
        }
        Box::new(BuyTxn::new(items, Vec::new(), self.cfg.commutative))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg(phase_ms: u64) -> ShiftingConfig {
        ShiftingConfig {
            items: 500,
            items_per_txn: 3,
            max_decrement: 3,
            commutative: true,
            my_dc: 1,
            shard_of: Arc::new(|k: &Key| {
                let id: u64 = k.pk[1..].parse().unwrap();
                (id % 5) as u32
            }),
            shards: 5,
            phase_len: SimDuration::from_millis(phase_ms),
        }
    }

    #[test]
    fn all_items_come_from_the_phase_shard() {
        let mut w = ShiftingLocalityWorkload::new(cfg(100));
        let mut rng = SmallRng::seed_from_u64(7);
        // Phase 0 for dc1 targets shard 1; phase 3 targets shard 4.
        for (now_ms, want) in [(0u64, 1u64), (350, 4)] {
            let now = SimTime::from_millis(now_ms);
            assert_eq!(w.target_shard(now) as u64, want);
            for _ in 0..20 {
                let txn = w.next_txn_at(now, &mut rng);
                for k in txn.read_set() {
                    let id: u64 = k.pk[1..].parse().unwrap();
                    assert_eq!(id % 5, want, "item {id} off-shard at t={now_ms}ms");
                }
            }
        }
    }

    #[test]
    fn long_phases_never_shift() {
        let w = ShiftingLocalityWorkload::new(cfg(1_000_000));
        assert_eq!(w.target_shard(SimTime::ZERO), 1);
        assert_eq!(w.target_shard(SimTime::from_secs(900)), 1);
    }

    #[test]
    fn timeless_callers_get_phase_zero() {
        let mut w = ShiftingLocalityWorkload::new(cfg(100));
        let mut rng = SmallRng::seed_from_u64(8);
        let txn = w.next_txn(&mut rng);
        for k in txn.read_set() {
            let id: u64 = k.pk[1..].parse().unwrap();
            assert_eq!(id % 5, 1);
        }
    }
}

//! The TPC-W web-interaction mix.
//!
//! The paper stresses the system with "the most write-heavy profile" —
//! the TPC-W *ordering* mix (≈50 % browse / 50 % order). The percentages
//! below are the standard ordering-mix values.

/// The fourteen TPC-W web interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WebInteraction {
    /// Home page: customer + promotional items.
    Home,
    /// New-products listing.
    NewProducts,
    /// Best-sellers listing.
    BestSellers,
    /// Product detail page.
    ProductDetail,
    /// Search form.
    SearchRequest,
    /// Search result listing.
    SearchResults,
    /// Shopping-cart add/update (write).
    ShoppingCart,
    /// Customer registration (write).
    CustomerRegistration,
    /// Buy request: cart + customer summary.
    BuyRequest,
    /// Buy confirm: the product-buy transaction (write; the one that
    /// benefits from commutative stock decrements).
    BuyConfirm,
    /// Order inquiry form.
    OrderInquiry,
    /// Order display.
    OrderDisplay,
    /// Admin item lookup.
    AdminRequest,
    /// Admin item update (write).
    AdminConfirm,
}

/// `(interaction, permille)` — the TPC-W ordering mix in 1/10 000 units
/// so the table stays integral (sums to exactly 10 000).
pub const ORDERING_MIX: [(WebInteraction, u32); 14] = [
    (WebInteraction::Home, 912),
    (WebInteraction::NewProducts, 46),
    (WebInteraction::BestSellers, 46),
    (WebInteraction::ProductDetail, 1_235),
    (WebInteraction::SearchRequest, 1_453),
    (WebInteraction::SearchResults, 1_308),
    (WebInteraction::ShoppingCart, 1_353),
    (WebInteraction::CustomerRegistration, 1_286),
    (WebInteraction::BuyRequest, 1_273),
    (WebInteraction::BuyConfirm, 1_018),
    (WebInteraction::OrderInquiry, 25),
    (WebInteraction::OrderDisplay, 22),
    (WebInteraction::AdminRequest, 12),
    (WebInteraction::AdminConfirm, 11),
];

impl WebInteraction {
    /// True for interactions that issue writes.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            WebInteraction::ShoppingCart
                | WebInteraction::CustomerRegistration
                | WebInteraction::BuyConfirm
                | WebInteraction::AdminConfirm
        )
    }

    /// Draws an interaction from the ordering mix given a uniform draw
    /// in `0..10_000`.
    pub fn from_draw(draw: u32) -> WebInteraction {
        let mut acc = 0;
        for (wi, weight) in ORDERING_MIX {
            acc += weight;
            if draw < acc {
                return wi;
            }
        }
        WebInteraction::Home
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_ten_thousand() {
        let total: u32 = ORDERING_MIX.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn write_fraction_is_about_37_percent() {
        let writes: u32 = ORDERING_MIX
            .iter()
            .filter(|(wi, _)| wi.is_write())
            .map(|(_, w)| w)
            .sum();
        assert_eq!(writes, 1_353 + 1_286 + 1_018 + 11);
        assert!(
            (3_000..4_500).contains(&writes),
            "ordering mix is write-heavy"
        );
    }

    #[test]
    fn from_draw_covers_the_whole_range() {
        assert_eq!(WebInteraction::from_draw(0), WebInteraction::Home);
        assert_eq!(
            WebInteraction::from_draw(9_999),
            WebInteraction::AdminConfirm
        );
        // Boundary: first draw after Home's 912 goes to NewProducts.
        assert_eq!(WebInteraction::from_draw(912), WebInteraction::NewProducts);
    }

    #[test]
    fn from_draw_distribution_matches_weights() {
        let mut counts = std::collections::HashMap::new();
        for draw in 0..10_000 {
            *counts
                .entry(WebInteraction::from_draw(draw))
                .or_insert(0u32) += 1;
        }
        for (wi, weight) in ORDERING_MIX {
            assert_eq!(counts[&wi], weight, "{wi:?}");
        }
    }
}

//! TPC-W, the paper's macro-benchmark (§5.2).
//!
//! Fourteen web interactions over the TPC-W schema, using the *ordering*
//! mix (the most write-heavy profile), no think time, and — exactly as
//! the paper does — only the database part of each interaction (no HTML).
//! The one transaction that exploits commutativity is *Buy Confirm*: it
//! decrements each purchased item's stock under the `stock ≥ 0`
//! constraint.

use mdcc_common::{CommutativeUpdate, Key, PhysicalUpdate, RecordUpdate, Row, UpdateOp, Version};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::mix::WebInteraction;
use crate::{Transaction, TxnAction, Workload};

/// TPC-W table ids.
pub mod tables {
    use mdcc_common::TableId;

    /// Items for sale (stock ≥ 0).
    pub const ITEM: TableId = TableId(10);
    /// Registered customers.
    pub const CUSTOMER: TableId = TableId(11);
    /// Orders.
    pub const ORDERS: TableId = TableId(12);
    /// Order lines.
    pub const ORDER_LINE: TableId = TableId(13);
    /// Credit-card transactions.
    pub const CC_XACTS: TableId = TableId(14);
    /// Shopping carts.
    pub const CART: TableId = TableId(15);
    /// Shopping-cart lines.
    pub const CART_LINE: TableId = TableId(16);
    /// Authors (static dimension table).
    pub const AUTHOR: TableId = TableId(17);
}

/// The stock attribute of an item.
pub const STOCK: &str = "stock";

/// Item key for id `i`.
pub fn item_key(i: u64) -> Key {
    Key::new(tables::ITEM, format!("i{i}"))
}

/// Customer key for initial customer `c`.
pub fn customer_key(c: u64) -> Key {
    Key::new(tables::CUSTOMER, format!("c{c}"))
}

/// Author key.
pub fn author_key(a: u64) -> Key {
    Key::new(tables::AUTHOR, format!("a{a}"))
}

/// Initial rows: items with TPC-W-style stock (uniform 10..=30),
/// customers and authors. Deterministic in `seed`.
pub fn initial_data(cfg: &TpcwConfig, seed: u64) -> Vec<(Key, Row)> {
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for i in 0..cfg.items {
        let stock: i64 = rng.gen_range(10..=30);
        let price: i64 = rng.gen_range(100..=10_000);
        rows.push((
            item_key(i),
            Row::new()
                .with(STOCK, stock)
                .with("price", price)
                .with("title", format!("book-{i}"))
                .with("author", (i % cfg.items.clamp(1, 500)) as i64),
        ));
    }
    for c in 0..cfg.customers {
        rows.push((
            customer_key(c),
            Row::new()
                .with("name", format!("customer-{c}"))
                .with("discount", (c % 50) as i64),
        ));
    }
    for a in 0..cfg.items.min(500) {
        rows.push((
            author_key(a),
            Row::new().with("name", format!("author-{a}")),
        ));
    }
    rows
}

/// TPC-W knobs.
#[derive(Debug, Clone)]
pub struct TpcwConfig {
    /// Scale factor: number of items.
    pub items: u64,
    /// Number of pre-loaded customers.
    pub customers: u64,
    /// Unique id of the client this generator drives (key uniqueness for
    /// inserted orders/customers/carts).
    pub client_id: u64,
    /// Use commutative stock decrements in Buy Confirm (MDCC); physical
    /// read-modify-write otherwise.
    pub commutative: bool,
}

impl TpcwConfig {
    /// Standard configuration at a given scale factor.
    pub fn with_scale(items: u64, client_id: u64) -> Self {
        Self {
            items,
            customers: items,
            client_id,
            commutative: true,
        }
    }
}

/// Per-client TPC-W session state and generator.
pub struct TpcwWorkload {
    cfg: TpcwConfig,
    customer: u64,
    cart_seq: u64,
    cart_created: bool,
    cart_items: Vec<(u64, i64)>,
    order_seq: u64,
    reg_seq: u64,
    last_order: Option<Key>,
}

impl TpcwWorkload {
    /// Creates the generator for one emulated browser.
    pub fn new(cfg: TpcwConfig) -> Self {
        let customer = cfg.client_id % cfg.customers.max(1);
        Self {
            cfg,
            customer,
            cart_seq: 0,
            cart_created: false,
            cart_items: Vec::new(),
            order_seq: 0,
            reg_seq: 0,
            last_order: None,
        }
    }

    fn cart_key(&self) -> Key {
        Key::new(
            tables::CART,
            format!("sc{}x{}", self.cfg.client_id, self.cart_seq),
        )
    }

    fn cart_line_key(&self, item: u64) -> Key {
        Key::new(
            tables::CART_LINE,
            format!("scl{}x{}-{item}", self.cfg.client_id, self.cart_seq),
        )
    }

    fn random_item(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(0..self.cfg.items)
    }

    fn random_items(&self, rng: &mut SmallRng, n: usize) -> Vec<Key> {
        (0..n).map(|_| item_key(self.random_item(rng))).collect()
    }

    fn build(&mut self, wi: WebInteraction, rng: &mut SmallRng) -> TpcwTxn {
        match wi {
            WebInteraction::Home => TpcwTxn::read_only(
                "home",
                [customer_key(self.customer)]
                    .into_iter()
                    .chain(self.random_items(rng, 2))
                    .collect(),
            ),
            WebInteraction::NewProducts => {
                TpcwTxn::read_only("new-products", self.random_items(rng, 10))
            }
            WebInteraction::BestSellers => {
                TpcwTxn::read_only("best-sellers", self.random_items(rng, 10))
            }
            WebInteraction::ProductDetail => {
                let item = self.random_item(rng);
                TpcwTxn::read_only(
                    "product-detail",
                    vec![
                        item_key(item),
                        author_key(item % self.cfg.items.clamp(1, 500)),
                    ],
                )
            }
            WebInteraction::SearchRequest => {
                TpcwTxn::read_only("search-request", self.random_items(rng, 1))
            }
            WebInteraction::SearchResults => {
                TpcwTxn::read_only("search-results", self.random_items(rng, 8))
            }
            WebInteraction::ShoppingCart => {
                let item = self.random_item(rng);
                let qty: i64 = rng.gen_range(1..=3);
                let cart = self.cart_key();
                let line = self.cart_line_key(item);
                self.cart_created = true;
                match self.cart_items.iter_mut().find(|(i, _)| *i == item) {
                    Some((_, q)) => *q += qty,
                    None => self.cart_items.push((item, qty)),
                }
                TpcwTxn {
                    wi: WebInteraction::ShoppingCart,
                    label: "shopping-cart",
                    reads: vec![cart.clone(), line.clone(), item_key(item)],
                    plan: WritePlan::CartAdd {
                        cart,
                        line,
                        qty,
                        item,
                    },
                }
            }
            WebInteraction::CustomerRegistration => {
                if rng.gen::<f64>() < 0.8 {
                    self.reg_seq += 1;
                    let key = Key::new(
                        tables::CUSTOMER,
                        format!("c{}x{}", self.cfg.client_id, self.reg_seq),
                    );
                    TpcwTxn {
                        wi,
                        label: "customer-registration",
                        reads: vec![],
                        plan: WritePlan::Register { customer: key },
                    }
                } else {
                    TpcwTxn::read_only("customer-registration", vec![customer_key(self.customer)])
                }
            }
            WebInteraction::BuyRequest => TpcwTxn::read_only(
                "buy-request",
                vec![self.cart_key(), customer_key(self.customer)],
            ),
            WebInteraction::BuyConfirm => {
                // An emulated browser always has something in the cart by
                // purchase time; top it up if the session skipped the
                // cart pages.
                if self.cart_items.is_empty() {
                    for _ in 0..rng.gen_range(1..=3) {
                        let item = self.random_item(rng);
                        match self.cart_items.iter_mut().find(|(i, _)| *i == item) {
                            Some((_, q)) => *q += 1,
                            None => self.cart_items.push((item, 1)),
                        }
                    }
                    self.cart_created = true;
                }
                self.order_seq += 1;
                let order = Key::new(
                    tables::ORDERS,
                    format!("o{}x{}", self.cfg.client_id, self.order_seq),
                );
                let cart = self.cart_key();
                let items: Vec<(Key, i64)> = self
                    .cart_items
                    .iter()
                    .map(|(i, q)| (item_key(*i), *q))
                    .collect();
                let mut reads = vec![cart.clone()];
                reads.extend(items.iter().map(|(k, _)| k.clone()));
                let line_prefix = format!("ol{}x{}", self.cfg.client_id, self.order_seq);
                let cc = Key::new(
                    tables::CC_XACTS,
                    format!("cc{}x{}", self.cfg.client_id, self.order_seq),
                );
                self.last_order = Some(order.clone());
                // The purchase closes the session's cart.
                self.cart_items.clear();
                self.cart_created = false;
                self.cart_seq += 1;
                TpcwTxn {
                    wi,
                    label: "buy-confirm",
                    reads,
                    plan: WritePlan::BuyConfirm {
                        cart,
                        order,
                        items,
                        commutative: self.cfg.commutative,
                        line_prefix,
                        cc,
                    },
                }
            }
            WebInteraction::OrderInquiry => TpcwTxn::read_only(
                "order-inquiry",
                vec![self
                    .last_order
                    .clone()
                    .unwrap_or_else(|| customer_key(self.customer))],
            ),
            WebInteraction::OrderDisplay => {
                let mut reads = vec![customer_key(self.customer)];
                if let Some(o) = &self.last_order {
                    reads.push(o.clone());
                }
                TpcwTxn::read_only("order-display", reads)
            }
            WebInteraction::AdminRequest => {
                TpcwTxn::read_only("admin-request", self.random_items(rng, 1))
            }
            WebInteraction::AdminConfirm => {
                let item = self.random_item(rng);
                TpcwTxn {
                    wi,
                    label: "admin-confirm",
                    reads: vec![item_key(item)],
                    plan: WritePlan::AdminUpdate {
                        item: item_key(item),
                        new_price: rng.gen_range(100..=10_000),
                    },
                }
            }
        }
    }
}

impl Workload for TpcwWorkload {
    fn next_txn(&mut self, rng: &mut SmallRng) -> Box<dyn Transaction> {
        let wi = WebInteraction::from_draw(rng.gen_range(0..10_000));
        Box::new(self.build(wi, rng))
    }
}

/// One TPC-W web interaction as a transaction.
pub struct TpcwTxn {
    wi: WebInteraction,
    label: &'static str,
    reads: Vec<Key>,
    plan: WritePlan,
}

enum WritePlan {
    None,
    CartAdd {
        cart: Key,
        line: Key,
        item: u64,
        qty: i64,
    },
    Register {
        customer: Key,
    },
    BuyConfirm {
        cart: Key,
        order: Key,
        items: Vec<(Key, i64)>,
        commutative: bool,
        line_prefix: String,
        cc: Key,
    },
    AdminUpdate {
        item: Key,
        new_price: i64,
    },
}

impl TpcwTxn {
    fn read_only(label: &'static str, reads: Vec<Key>) -> Self {
        Self {
            wi: WebInteraction::Home,
            label,
            reads,
            plan: WritePlan::None,
        }
    }

    /// The interaction this transaction implements.
    pub fn interaction(&self) -> WebInteraction {
        self.wi
    }
}

fn find<'a>(
    reads: &'a [(Key, Version, Option<Row>)],
    key: &Key,
) -> Option<&'a (Key, Version, Option<Row>)> {
    reads.iter().find(|(k, _, _)| k == key)
}

/// Insert if absent, version-checked overwrite otherwise.
fn upsert(reads: &[(Key, Version, Option<Row>)], key: &Key, row: Row) -> RecordUpdate {
    match find(reads, key) {
        Some((_, version, Some(_))) => RecordUpdate::new(
            key.clone(),
            UpdateOp::Physical(PhysicalUpdate::write(*version, row)),
        ),
        _ => RecordUpdate::new(key.clone(), UpdateOp::Physical(PhysicalUpdate::insert(row))),
    }
}

impl Transaction for TpcwTxn {
    fn read_set(&self) -> Vec<Key> {
        self.reads.clone()
    }

    fn decide(&mut self, reads: &[(Key, Version, Option<Row>)]) -> TxnAction {
        match &self.plan {
            WritePlan::None => TxnAction::Commit(Vec::new()),
            WritePlan::CartAdd {
                cart,
                line,
                item,
                qty,
            } => {
                let mut updates = Vec::new();
                let cart_row = Row::new().with("status", "active").with("touched", *qty);
                updates.push(upsert(reads, cart, cart_row));
                let line_row = Row::new().with("item", *item as i64).with("qty", *qty);
                updates.push(upsert(reads, line, line_row));
                TxnAction::Commit(updates)
            }
            WritePlan::Register { customer } => TxnAction::Commit(vec![RecordUpdate::new(
                customer.clone(),
                UpdateOp::Physical(PhysicalUpdate::insert(
                    Row::new().with("name", "new-customer").with("discount", 0),
                )),
            )]),
            WritePlan::BuyConfirm {
                cart,
                order,
                items,
                commutative,
                line_prefix,
                cc,
            } => {
                let mut updates = Vec::new();
                let mut total = 0i64;
                for (n, (item, qty)) in items.iter().enumerate() {
                    let Some((_, version, Some(row))) = find(reads, item) else {
                        return TxnAction::ClientAbort;
                    };
                    let stock = row.get_int(STOCK).unwrap_or(0);
                    total += row.get_int("price").unwrap_or(0) * qty;
                    if *commutative {
                        if stock <= 0 {
                            return TxnAction::ClientAbort;
                        }
                        updates.push(RecordUpdate::new(
                            item.clone(),
                            UpdateOp::Commutative(CommutativeUpdate::delta(STOCK, -qty)),
                        ));
                    } else {
                        let new_stock = stock - qty;
                        if new_stock < 0 {
                            return TxnAction::ClientAbort;
                        }
                        let mut new_row = row.clone();
                        new_row.set(STOCK, new_stock);
                        updates.push(RecordUpdate::new(
                            item.clone(),
                            UpdateOp::Physical(PhysicalUpdate::write(*version, new_row)),
                        ));
                    }
                    // Order line for this item.
                    updates.push(RecordUpdate::new(
                        Key::new(tables::ORDER_LINE, format!("{line_prefix}-{n}")),
                        UpdateOp::Physical(PhysicalUpdate::insert(
                            Row::new().with("item", item.pk.as_str()).with("qty", *qty),
                        )),
                    ));
                }
                updates.push(RecordUpdate::new(
                    order.clone(),
                    UpdateOp::Physical(PhysicalUpdate::insert(
                        Row::new().with("total", total).with("status", "pending"),
                    )),
                ));
                updates.push(RecordUpdate::new(
                    cc.clone(),
                    UpdateOp::Physical(PhysicalUpdate::insert(Row::new().with("amount", total))),
                ));
                // Close the cart (upsert: sessions may buy without ever
                // touching the cart pages).
                updates.push(upsert(reads, cart, Row::new().with("status", "purchased")));
                TxnAction::Commit(updates)
            }
            WritePlan::AdminUpdate { item, new_price } => {
                let Some((_, version, Some(row))) = find(reads, item) else {
                    return TxnAction::ClientAbort;
                };
                let mut new_row = row.clone();
                new_row.set("price", *new_price);
                TxnAction::Commit(vec![RecordUpdate::new(
                    item.clone(),
                    UpdateOp::Physical(PhysicalUpdate::write(*version, new_row)),
                )])
            }
        }
    }

    fn is_write(&self) -> bool {
        !matches!(self.plan, WritePlan::None)
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> TpcwConfig {
        TpcwConfig::with_scale(1_000, 7)
    }

    fn rows_for(txn: &TpcwTxn, stock: i64) -> Vec<(Key, Version, Option<Row>)> {
        txn.read_set()
            .into_iter()
            .map(|k| {
                let row = if k.table == tables::ITEM {
                    Some(Row::new().with(STOCK, stock).with("price", 500))
                } else {
                    None
                };
                (k, Version(1), row)
            })
            .collect()
    }

    #[test]
    fn initial_data_has_items_customers_authors() {
        let data = initial_data(&cfg(), 1);
        let items = data.iter().filter(|(k, _)| k.table == tables::ITEM).count();
        let customers = data
            .iter()
            .filter(|(k, _)| k.table == tables::CUSTOMER)
            .count();
        let authors = data
            .iter()
            .filter(|(k, _)| k.table == tables::AUTHOR)
            .count();
        assert_eq!(items, 1_000);
        assert_eq!(customers, 1_000);
        assert_eq!(authors, 500);
        for (k, row) in &data {
            if k.table == tables::ITEM {
                let s = row.get_int(STOCK).unwrap();
                assert!((10..=30).contains(&s));
            }
        }
    }

    #[test]
    fn buy_confirm_decrements_each_cart_item() {
        let mut w = TpcwWorkload::new(cfg());
        let mut rng = SmallRng::seed_from_u64(3);
        // Put two items in the cart, then buy.
        let mut cart1 = w.build(WebInteraction::ShoppingCart, &mut rng);
        let _ = cart1.decide(&rows_for(&cart1, 20));
        let mut buy = w.build(WebInteraction::BuyConfirm, &mut rng);
        let action = buy.decide(&rows_for(&buy, 20));
        let TxnAction::Commit(updates) = action else {
            panic!("expected commit");
        };
        let stock_updates: Vec<_> = updates
            .iter()
            .filter(|u| u.key.table == tables::ITEM)
            .collect();
        assert!(!stock_updates.is_empty());
        for u in &stock_updates {
            let UpdateOp::Commutative(c) = &u.op else {
                panic!("stock update must be commutative");
            };
            assert!(c.delta_for(STOCK) < 0);
        }
        // Orders, order lines, cc_xacts and the cart update ride along.
        assert!(updates.iter().any(|u| u.key.table == tables::ORDERS));
        assert!(updates.iter().any(|u| u.key.table == tables::ORDER_LINE));
        assert!(updates.iter().any(|u| u.key.table == tables::CC_XACTS));
        assert!(updates.iter().any(|u| u.key.table == tables::CART));
    }

    #[test]
    fn buy_confirm_aborts_on_empty_stock_in_physical_mode() {
        let mut c = cfg();
        c.commutative = false;
        let mut w = TpcwWorkload::new(c);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buy = w.build(WebInteraction::BuyConfirm, &mut rng);
        assert!(matches!(
            buy.decide(&rows_for(&buy, 0)),
            TxnAction::ClientAbort
        ));
    }

    #[test]
    fn read_only_interactions_have_no_writes() {
        let mut w = TpcwWorkload::new(cfg());
        let mut rng = SmallRng::seed_from_u64(5);
        for wi in [
            WebInteraction::Home,
            WebInteraction::NewProducts,
            WebInteraction::BestSellers,
            WebInteraction::ProductDetail,
            WebInteraction::SearchRequest,
            WebInteraction::SearchResults,
            WebInteraction::BuyRequest,
            WebInteraction::OrderInquiry,
            WebInteraction::OrderDisplay,
            WebInteraction::AdminRequest,
        ] {
            let mut txn = w.build(wi, &mut rng);
            assert!(!txn.is_write(), "{wi:?}");
            assert!(!txn.read_set().is_empty(), "{wi:?} must read something");
            let reads = rows_for(&txn, 10);
            assert!(matches!(txn.decide(&reads), TxnAction::Commit(u) if u.is_empty()));
        }
    }

    #[test]
    fn registration_inserts_unique_customers() {
        let mut w = TpcwWorkload::new(cfg());
        let mut rng = SmallRng::seed_from_u64(6);
        let mut inserted = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut txn = w.build(WebInteraction::CustomerRegistration, &mut rng);
            if txn.is_write() {
                let TxnAction::Commit(updates) = txn.decide(&[]) else {
                    panic!()
                };
                assert_eq!(updates.len(), 1);
                assert!(
                    inserted.insert(updates[0].key.clone()),
                    "duplicate customer pk"
                );
                assert!(matches!(
                    &updates[0].op,
                    UpdateOp::Physical(p) if p.is_insert()
                ));
            }
        }
        assert!(!inserted.is_empty(), "80% of registrations insert");
    }

    #[test]
    fn cart_add_upserts_against_read_state() {
        let mut w = TpcwWorkload::new(cfg());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut txn = w.build(WebInteraction::ShoppingCart, &mut rng);
        // Cart does not exist yet → both writes are inserts.
        let reads: Vec<(Key, Version, Option<Row>)> = txn
            .read_set()
            .into_iter()
            .map(|k| {
                let row = (k.table == tables::ITEM).then(|| Row::new().with(STOCK, 5));
                (k, Version(0), row)
            })
            .collect();
        let TxnAction::Commit(updates) = txn.decide(&reads) else {
            panic!()
        };
        for u in updates {
            if let UpdateOp::Physical(p) = &u.op {
                assert!(p.is_insert(), "fresh cart rows are inserts");
            }
        }
        // Existing cart row → version-checked write.
        let mut txn2 = w.build(WebInteraction::ShoppingCart, &mut rng);
        let reads2: Vec<(Key, Version, Option<Row>)> = txn2
            .read_set()
            .into_iter()
            .map(|k| (k, Version(3), Some(Row::new().with("status", "active"))))
            .collect();
        let TxnAction::Commit(updates2) = txn2.decide(&reads2) else {
            panic!()
        };
        assert!(updates2.iter().any(|u| matches!(
            &u.op,
            UpdateOp::Physical(p) if p.vread == Some(Version(3))
        )));
    }

    #[test]
    fn generated_keys_are_client_unique() {
        let mut w1 = TpcwWorkload::new(TpcwConfig::with_scale(100, 1));
        let mut w2 = TpcwWorkload::new(TpcwConfig::with_scale(100, 2));
        let mut rng = SmallRng::seed_from_u64(8);
        let b1 = w1.build(WebInteraction::BuyConfirm, &mut rng);
        let b2 = w2.build(WebInteraction::BuyConfirm, &mut rng);
        let WritePlan::BuyConfirm { order: o1, .. } = &b1.plan else {
            panic!()
        };
        let WritePlan::BuyConfirm { order: o2, .. } = &b2.plan else {
            panic!()
        };
        assert_ne!(o1, o2);
    }

    #[test]
    fn mix_drives_roughly_37_percent_writes() {
        let mut w = TpcwWorkload::new(cfg());
        let mut rng = SmallRng::seed_from_u64(9);
        let writes = (0..2_000)
            .filter(|_| w.next_txn(&mut rng).is_write())
            .count();
        let frac = writes as f64 / 2_000.0;
        assert!((0.30..0.45).contains(&frac), "write fraction {frac}");
    }
}

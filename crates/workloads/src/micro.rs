//! The paper's micro-benchmark (§5.3).
//!
//! A single `item` table with a `stock ≥ 0` constraint; the *buy*
//! transaction picks 3 items and decrements each stock by 1–3. Knobs:
//!
//! * **commutative** — deltas (the MDCC configuration) versus
//!   version-checked physical writes (the *Fast*/*Multi*/2PC
//!   configurations);
//! * **hot spot** — Figure 6's conflict-rate experiment: 90 % of
//!   accesses go to the hottest x % of items;
//! * **master locality** — Figure 7's experiment: a fraction of
//!   transactions picks only items whose master is in the client's own
//!   data center.

use std::sync::Arc;

use mdcc_common::{
    CommutativeUpdate, Key, PhysicalUpdate, RecordUpdate, Row, TableId, UpdateOp, Version,
};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{Transaction, TxnAction, Workload};

/// Table id of the micro-benchmark's item table.
pub const MICRO_ITEMS: TableId = TableId(1);

/// The stock attribute name.
pub const STOCK: &str = "stock";

/// Builds the item key for id `i`.
pub fn item_key(i: u64) -> Key {
    Key::new(MICRO_ITEMS, format!("i{i}"))
}

/// Initial rows for the micro-benchmark table: "randomly chosen stock
/// values" (we use uniform 50–500, deterministic in `seed` — sized so a
/// uniform-access run barely dents any item (aborts at low conflict stay
/// near zero, as in Figure 6's large-hot-spot bars) while small hot
/// spots exhaust mid-run and abort).
pub fn initial_items(items: u64, seed: u64) -> Vec<(Key, Row)> {
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..items)
        .map(|i| {
            let stock: i64 = rng.gen_range(50..=500);
            (item_key(i), Row::new().with(STOCK, stock))
        })
        .collect()
}

/// Micro-benchmark knobs.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Number of items in the table.
    pub items: u64,
    /// Items per buy transaction (the paper uses 3).
    pub items_per_txn: usize,
    /// Maximum decrement per item (uniform 1..=max, the paper uses 3).
    pub max_decrement: i64,
    /// Use commutative deltas (MDCC) instead of physical read-modify-
    /// write (Fast/Multi/2PC configurations).
    pub commutative: bool,
    /// Hot-spot: `(fraction_of_items, access_probability)`, e.g.
    /// `(0.05, 0.9)` = 90 % of accesses hit the hottest 5 %.
    pub hotspot: Option<(f64, f64)>,
    /// Serializable mode (§4.4): each buy also browses two extra items
    /// and validates those reads with read guards at commit.
    pub serializable_reads: bool,
    /// Master locality: `(fraction_of_local_txns, my_dc, master_dc_fn)`.
    /// A "local" transaction picks only items mastered in `my_dc`.
    pub locality: Option<LocalityConfig>,
}

/// Master-locality knob (Figure 7).
#[derive(Clone)]
pub struct LocalityConfig {
    /// Fraction of transactions forced to use local-master items.
    pub local_fraction: f64,
    /// The client's data center.
    pub my_dc: u8,
    /// Master data center of an item key (provided by the cluster's
    /// placement).
    pub master_dc_of: Arc<dyn Fn(&Key) -> u8 + Send + Sync>,
}

impl std::fmt::Debug for LocalityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalityConfig")
            .field("local_fraction", &self.local_fraction)
            .field("my_dc", &self.my_dc)
            .finish_non_exhaustive()
    }
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            items: 10_000,
            items_per_txn: 3,
            max_decrement: 3,
            commutative: true,
            hotspot: None,
            serializable_reads: false,
            locality: None,
        }
    }
}

/// The micro-benchmark generator for one client.
pub struct MicroWorkload {
    cfg: MicroConfig,
    /// Item ids whose master is local (materialized once).
    local_pool: Vec<u64>,
}

impl MicroWorkload {
    /// Builds a generator; materializes the local-master pool if the
    /// locality knob is on.
    pub fn new(cfg: MicroConfig) -> Self {
        let local_pool = match &cfg.locality {
            Some(loc) => (0..cfg.items)
                .filter(|i| (loc.master_dc_of)(&item_key(*i)) == loc.my_dc)
                .collect(),
            None => Vec::new(),
        };
        Self { cfg, local_pool }
    }

    fn pick_item(&self, rng: &mut SmallRng, local_only: bool) -> u64 {
        if local_only && !self.local_pool.is_empty() {
            return self.local_pool[rng.gen_range(0..self.local_pool.len())];
        }
        if let Some((fraction, prob)) = self.cfg.hotspot {
            let hot_items = ((self.cfg.items as f64) * fraction).max(1.0) as u64;
            if rng.gen::<f64>() < prob {
                return rng.gen_range(0..hot_items);
            }
            if hot_items < self.cfg.items {
                return rng.gen_range(hot_items..self.cfg.items);
            }
        }
        rng.gen_range(0..self.cfg.items)
    }
}

impl Workload for MicroWorkload {
    fn next_txn(&mut self, rng: &mut SmallRng) -> Box<dyn Transaction> {
        let local_only = match &self.cfg.locality {
            Some(loc) => rng.gen::<f64>() < loc.local_fraction,
            None => false,
        };
        let mut items = Vec::with_capacity(self.cfg.items_per_txn);
        while items.len() < self.cfg.items_per_txn {
            let id = self.pick_item(rng, local_only);
            if items.iter().all(|(i, _)| *i != id) {
                let amount = rng.gen_range(1..=self.cfg.max_decrement);
                items.push((id, amount));
            }
        }
        let mut browse = Vec::new();
        if self.cfg.serializable_reads {
            while browse.len() < 2 {
                let id = self.pick_item(rng, false);
                if items.iter().all(|(i, _)| *i != id) && !browse.contains(&item_key(id)) {
                    browse.push(item_key(id));
                }
            }
        }
        Box::new(BuyTxn {
            items: items
                .into_iter()
                .map(|(i, amount)| (item_key(i), amount))
                .collect(),
            browse,
            commutative: self.cfg.commutative,
        })
    }
}

/// The buy transaction: read the items, then decrement their stock.
/// In serializable mode it also browses extra items whose reads are
/// validated with read guards (§4.4).
pub struct BuyTxn {
    items: Vec<(Key, i64)>,
    browse: Vec<Key>,
    commutative: bool,
}

impl BuyTxn {
    /// Builds a buy over explicit `(key, decrement)` pairs; `browse`
    /// keys become read guards (serializable mode).
    pub fn new(items: Vec<(Key, i64)>, browse: Vec<Key>, commutative: bool) -> Self {
        Self {
            items,
            browse,
            commutative,
        }
    }
}

impl Transaction for BuyTxn {
    fn read_set(&self) -> Vec<Key> {
        self.items
            .iter()
            .map(|(k, _)| k.clone())
            .chain(self.browse.iter().cloned())
            .collect()
    }

    fn decide(&mut self, reads: &[(Key, Version, Option<Row>)]) -> TxnAction {
        let mut updates = Vec::with_capacity(self.items.len());
        for (key, amount) in &self.items {
            let Some((_, version, value)) = reads
                .iter()
                .map(|(k, v, r)| (k, *v, r))
                .find(|(k, _, _)| *k == key)
            else {
                return TxnAction::ClientAbort;
            };
            let Some(row) = value else {
                return TxnAction::ClientAbort;
            };
            let stock = row.get_int(STOCK).unwrap_or(0);
            if self.commutative {
                // The acceptors enforce `stock ≥ 0` via demarcation; the
                // client proposes unconditionally (a hopeless delta is
                // rejected there). Only an already-empty read aborts
                // client-side.
                if stock <= 0 {
                    return TxnAction::ClientAbort;
                }
                updates.push(RecordUpdate::new(
                    key.clone(),
                    UpdateOp::Commutative(CommutativeUpdate::delta(STOCK, -amount)),
                ));
            } else {
                let new_stock = stock - amount;
                if new_stock < 0 {
                    return TxnAction::ClientAbort;
                }
                let mut new_row = row.clone();
                new_row.set(STOCK, new_stock);
                updates.push(RecordUpdate::new(
                    key.clone(),
                    UpdateOp::Physical(PhysicalUpdate::write(version, new_row)),
                ));
            }
        }
        // Serializable mode: validate the browsed reads with guards.
        for key in &self.browse {
            let Some((_, version, _)) = reads.iter().find(|(k, _, _)| k == key) else {
                return TxnAction::ClientAbort;
            };
            updates.push(RecordUpdate::new(
                key.clone(),
                UpdateOp::ReadGuard(*version),
            ));
        }
        TxnAction::Commit(updates)
    }

    fn is_write(&self) -> bool {
        true
    }

    fn label(&self) -> &'static str {
        "buy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn reads_for(txn: &dyn Transaction, stock: i64) -> Vec<(Key, Version, Option<Row>)> {
        txn.read_set()
            .into_iter()
            .map(|k| (k, Version(1), Some(Row::new().with(STOCK, stock))))
            .collect()
    }

    #[test]
    fn buy_reads_three_distinct_items() {
        let mut w = MicroWorkload::new(MicroConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let txn = w.next_txn(&mut rng);
        let keys = txn.read_set();
        assert_eq!(keys.len(), 3);
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "items must be distinct");
        assert!(txn.is_write());
    }

    #[test]
    fn commutative_mode_emits_deltas() {
        let mut w = MicroWorkload::new(MicroConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut txn = w.next_txn(&mut rng);
        let reads = reads_for(&*txn, 50);
        match txn.decide(&reads) {
            TxnAction::Commit(updates) => {
                assert_eq!(updates.len(), 3);
                for u in &updates {
                    let UpdateOp::Commutative(c) = &u.op else {
                        panic!("expected commutative update");
                    };
                    let d = c.delta_for(STOCK);
                    assert!((-3..=-1).contains(&d), "delta {d}");
                }
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn physical_mode_uses_read_versions() {
        let cfg = MicroConfig {
            commutative: false,
            ..MicroConfig::default()
        };
        let mut w = MicroWorkload::new(cfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut txn = w.next_txn(&mut rng);
        let reads = reads_for(&*txn, 50);
        match txn.decide(&reads) {
            TxnAction::Commit(updates) => {
                for u in &updates {
                    let UpdateOp::Physical(p) = &u.op else {
                        panic!("expected physical update");
                    };
                    assert_eq!(p.vread, Some(Version(1)));
                    let row = p.value.as_ref().unwrap();
                    assert!(row.get_int(STOCK).unwrap() < 50);
                }
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn physical_mode_aborts_on_insufficient_stock() {
        let cfg = MicroConfig {
            commutative: false,
            ..MicroConfig::default()
        };
        let mut w = MicroWorkload::new(cfg);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut txn = w.next_txn(&mut rng);
        let reads = reads_for(&*txn, 0);
        assert!(matches!(txn.decide(&reads), TxnAction::ClientAbort));
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let cfg = MicroConfig {
            items: 1_000,
            hotspot: Some((0.05, 0.9)),
            ..MicroConfig::default()
        };
        let mut w = MicroWorkload::new(cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let txn = w.next_txn(&mut rng);
            for k in txn.read_set() {
                let id: u64 = k.pk[1..].parse().unwrap();
                if id < 50 {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            (0.85..0.95).contains(&frac),
            "expected ~90% hot accesses, got {frac}"
        );
    }

    #[test]
    fn locality_pool_restricts_items() {
        let master_dc_of: Arc<dyn Fn(&Key) -> u8 + Send + Sync> = Arc::new(|k: &Key| {
            let id: u64 = k.pk[1..].parse().unwrap();
            (id % 5) as u8
        });
        let cfg = MicroConfig {
            items: 100,
            locality: Some(LocalityConfig {
                local_fraction: 1.0,
                my_dc: 2,
                master_dc_of,
            }),
            ..MicroConfig::default()
        };
        let mut w = MicroWorkload::new(cfg);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..50 {
            let txn = w.next_txn(&mut rng);
            for k in txn.read_set() {
                let id: u64 = k.pk[1..].parse().unwrap();
                assert_eq!(id % 5, 2, "all items must have a local master");
            }
        }
    }

    #[test]
    fn initial_items_are_deterministic_and_in_range() {
        let a = initial_items(100, 9);
        let b = initial_items(100, 9);
        assert_eq!(a.len(), 100);
        for ((k1, r1), (k2, r2)) in a.iter().zip(&b) {
            assert_eq!(k1, k2);
            assert_eq!(r1, r2);
            let s = r1.get_int(STOCK).unwrap();
            assert!((50..=500).contains(&s));
        }
    }
}

//! Workload generators: TPC-W and the paper's micro-benchmark.
//!
//! Workloads are protocol-agnostic: a [`Transaction`] names the keys it
//! wants to read, then — given the read results — produces a write-set
//! (or none, for browse-style interactions, or a client-side abort when
//! the reads already doom it). Every protocol client (MDCC, 2PC,
//! Megastore*, quorum writes) drives the same transactions through its
//! own commit machinery, which is exactly how the paper compares them.

pub mod micro;
pub mod mix;
pub mod shifting;
pub mod tpcw;

use mdcc_common::{Key, RecordUpdate, Row, SimTime, Version};
use rand::rngs::SmallRng;

/// What a transaction wants to do after its read phase.
#[derive(Debug, Clone)]
pub enum TxnAction {
    /// Propose these updates (empty = read-only, commits trivially).
    Commit(Vec<RecordUpdate>),
    /// The reads already show the transaction cannot succeed (e.g.
    /// insufficient stock for a physical decrement); abort locally
    /// without proposing anything.
    ClientAbort,
}

/// One transaction: a read phase followed by a write-set.
pub trait Transaction: Send {
    /// Keys to read (one parallel batch of local reads).
    fn read_set(&self) -> Vec<Key>;

    /// Builds the write-set from the read results (key, version, value).
    fn decide(&mut self, reads: &[(Key, Version, Option<Row>)]) -> TxnAction;

    /// True if this transaction intends to write (write-transaction
    /// latency reporting follows the paper: only write transactions are
    /// measured).
    fn is_write(&self) -> bool;

    /// Short label for per-interaction statistics.
    fn label(&self) -> &'static str;
}

/// An endless stream of transactions for one client.
pub trait Workload: Send {
    /// Produces the client's next transaction.
    fn next_txn(&mut self, rng: &mut SmallRng) -> Box<dyn Transaction>;

    /// Produces the next transaction knowing the current virtual time.
    /// Time-varying workloads (e.g. [`shifting::ShiftingLocalityWorkload`])
    /// override this; the default ignores `now`, so existing workloads
    /// behave identically.
    fn next_txn_at(&mut self, now: SimTime, rng: &mut SmallRng) -> Box<dyn Transaction> {
        let _ = now;
        self.next_txn(rng)
    }
}

pub use micro::{MicroConfig, MicroWorkload};
pub use shifting::{ShiftingConfig, ShiftingLocalityWorkload};
pub use tpcw::{TpcwConfig, TpcwWorkload};

//! Property tests of the WAL-replay invariant the crash-recovery
//! subsystem rests on (§3.2.3: the log of learned options lets any node
//! reconstruct transaction state).
//!
//! For random command logs the tests check that:
//!
//! * replay reconstructs exactly the live store (same committed bytes,
//!   same exported state);
//! * checkpointing at *any* prefix and replaying the remaining suffix
//!   reconstructs the same state — compaction is transparent;
//! * replaying a log twice equals replaying it once — every entry point
//!   is idempotent under re-delivery, so a crash *during* recovery (a
//!   half-replayed WAL replayed again) is harmless;
//! * the option log's per-transaction trail survives the round trip.

use std::sync::Arc;

use mdcc_common::{
    CommutativeUpdate, Key, NodeId, PhysicalUpdate, ProtocolConfig, Row, SimTime, TableId, TxnId,
    UpdateOp,
};
use mdcc_paxos::{Ballot, TxnOption, TxnOutcome};
use mdcc_recovery::{committed_bytes, recover_store, wal, write_checkpoint, WalRecord};
use mdcc_sim::Disk;
use mdcc_storage::{AttrConstraint, Catalog, RecordStore, TableSchema};
use proptest::prelude::*;

const TABLE: TableId = TableId(1);
const KEYS: u64 = 4;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(TABLE, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn key(i: u64) -> Key {
    Key::new(TABLE, format!("k{i}"))
}

fn fresh_store() -> RecordStore {
    RecordStore::new(ProtocolConfig::default(), catalog())
}

/// One generated step of a command log.
#[derive(Debug, Clone, Copy)]
struct Step {
    kind: u8,
    key: u64,
    amount: i64,
    commit: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..8, 0u64..KEYS, 1i64..4, any::<bool>()).prop_map(|(kind, key, amount, commit)| Step {
        kind,
        key,
        amount,
        commit,
    })
}

/// Turns generated steps into a well-formed command log: loads first,
/// then proposals/visibilities/promises with monotone timestamps.
fn build_log(steps: &[Step]) -> Vec<WalRecord> {
    let mut log: Vec<WalRecord> = (0..KEYS)
        .map(|i| WalRecord::Load {
            key: key(i),
            row: Row::new().with("stock", 100),
        })
        .collect();
    let mut open: Vec<(TxnId, Key)> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        let at = SimTime::from_millis((i as u64 + 1) * 10);
        match step.kind {
            // Mostly proposals: commutative deltas, some physical writes.
            0..=4 => {
                let txn = TxnId::new(NodeId(9), i as u64);
                let op = if step.kind == 4 {
                    UpdateOp::Physical(PhysicalUpdate::write(
                        mdcc_common::Version(1),
                        Row::new().with("stock", 50 + step.amount),
                    ))
                } else {
                    UpdateOp::Commutative(CommutativeUpdate::delta("stock", -step.amount))
                };
                let opt = TxnOption::solo(txn, key(step.key), op);
                open.push((txn, key(step.key)));
                log.push(WalRecord::FastPropose { at, opt });
            }
            // Resolve a previously proposed transaction.
            5 | 6 => {
                if let Some((txn, k)) = open.get(step.key as usize % open.len().max(1)).cloned() {
                    log.push(WalRecord::Visibility {
                        at,
                        key: k,
                        txn,
                        outcome: if step.commit {
                            TxnOutcome::Committed
                        } else {
                            TxnOutcome::Aborted
                        },
                        learned_accepted: step.commit,
                    });
                }
            }
            // A classic promise lands.
            _ => {
                log.push(WalRecord::Phase1a {
                    key: key(step.key),
                    ballot: Ballot::classic(step.amount as u32, NodeId(step.key as u32)),
                });
            }
        }
    }
    log
}

fn state_fingerprint(store: &RecordStore) -> (Vec<u8>, String, usize, usize) {
    (
        committed_bytes(store),
        format!("{:?}", store.export_state()),
        store.pending_len(),
        store.log().len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_equals_live_application(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let log = build_log(&steps);
        // Live node: applies commands as they arrive and WALs them.
        let mut live = fresh_store();
        let mut disk = Disk::new();
        for record in &log {
            wal::append(&mut disk, record);
        }
        wal::replay(&mut live, &log);
        // Crashed node: rebuilds purely from the disk.
        let (rebuilt, info) =
            recover_store(ProtocolConfig::default(), catalog(), &disk).expect("clean disk");
        prop_assert_eq!(info.wal_records_replayed, log.len() as u64);
        prop_assert_eq!(state_fingerprint(&rebuilt), state_fingerprint(&live));
    }

    #[test]
    fn any_prefix_checkpoint_plus_suffix_replay_is_lossless(
        steps in prop::collection::vec(step_strategy(), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let log = build_log(&steps);
        let cut = (cut_seed as usize) % (log.len() + 1);
        // Reference: the full log replayed in order.
        let mut reference = fresh_store();
        wal::replay(&mut reference, &log);
        // Checkpoint at `cut`, then the suffix arrives as WAL tail.
        let mut prefix_store = fresh_store();
        wal::replay(&mut prefix_store, &log[..cut]);
        let mut disk = Disk::new();
        write_checkpoint(&mut disk, &prefix_store);
        for record in &log[cut..] {
            wal::append(&mut disk, record);
        }
        let (rebuilt, info) =
            recover_store(ProtocolConfig::default(), catalog(), &disk).expect("clean disk");
        prop_assert_eq!(info.wal_records_replayed, (log.len() - cut) as u64);
        prop_assert_eq!(
            state_fingerprint(&rebuilt),
            state_fingerprint(&reference),
            "checkpoint at {} of {} not transparent",
            cut,
            log.len()
        );
    }

    #[test]
    fn duplicated_commands_replay_idempotently(
        steps in prop::collection::vec(step_strategy(), 1..30),
        dup_mask in any::<u64>(),
    ) {
        // The network re-delivers messages; the WAL then holds the same
        // command twice. Replay must land on the same committed state.
        let log = build_log(&steps);
        let mut clean = fresh_store();
        wal::replay(&mut clean, &log);

        let mut duplicated: Vec<WalRecord> = Vec::new();
        for (i, record) in log.iter().enumerate() {
            duplicated.push(record.clone());
            if dup_mask >> (i % 64) & 1 == 1 {
                duplicated.push(record.clone());
            }
        }
        let mut dup_store = fresh_store();
        wal::replay(&mut dup_store, &duplicated);
        prop_assert_eq!(committed_bytes(&dup_store), committed_bytes(&clean));
        prop_assert_eq!(dup_store.pending_len(), clean.pending_len());
    }

    #[test]
    fn recovery_is_deterministic(steps in prop::collection::vec(step_strategy(), 1..30)) {
        // A crash *during* recovery is harmless: recovery never mutates
        // the disk, and rebuilding from the same disk twice produces
        // identical stores.
        let log = build_log(&steps);
        let mut disk = Disk::new();
        for record in &log {
            wal::append(&mut disk, record);
        }
        let (a, _) = recover_store(ProtocolConfig::default(), catalog(), &disk).expect("clean");
        let (b, _) = recover_store(ProtocolConfig::default(), catalog(), &disk).expect("clean");
        prop_assert_eq!(state_fingerprint(&a), state_fingerprint(&b));
    }

    #[test]
    fn option_log_trail_survives_the_round_trip(
        steps in prop::collection::vec(step_strategy(), 1..40),
    ) {
        let log = build_log(&steps);
        let mut live = fresh_store();
        let mut disk = Disk::new();
        for record in &log {
            wal::append(&mut disk, record);
        }
        wal::replay(&mut live, &log);
        let (rebuilt, _) =
            recover_store(ProtocolConfig::default(), catalog(), &disk).expect("clean disk");
        // Every transaction's per-record trail (§3.2.3's reconstruction
        // data) is identical after recovery.
        for i in 0..steps.len() {
            let txn = TxnId::new(NodeId(9), i as u64);
            prop_assert_eq!(
                format!("{:?}", rebuilt.log().for_txn(txn)),
                format!("{:?}", live.log().for_txn(txn))
            );
            prop_assert_eq!(rebuilt.log().outcome_of(txn), live.log().outcome_of(txn));
        }
    }
}

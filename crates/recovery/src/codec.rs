//! A small, dependency-free binary codec for durable state.
//!
//! The workspace has no serde (the build environment is offline), so this
//! module hand-rolls a length-prefixed little-endian encoding for every
//! protocol type that reaches disk. Encoding is deterministic: equal
//! values produce equal bytes, which the recovery audit relies on when it
//! compares replica states byte-for-byte.

use std::sync::Arc;

use mdcc_common::error::AbortReason;
use mdcc_common::{
    CommutativeUpdate, Key, NodeId, PhysicalUpdate, Row, SimTime, TableId, TxnId, UpdateOp, Value,
    Version,
};
use mdcc_paxos::acceptor::Phase2a;
use mdcc_paxos::cstruct::Entry;
use mdcc_paxos::{
    AcceptorState, Ballot, BallotKind, CStruct, OptionStatus, RecordSnapshot, Resolution,
    TxnOption, TxnOutcome,
};
use mdcc_storage::{LogEvent, PendingTxn, StoreState};

/// A decode failure: the bytes do not parse as the expected structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was being decoded when the failure occurred.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed at {}", self.context)
    }
}

impl std::error::Error for WireError {}

/// Decode result alias.
pub type WireResult<T> = Result<T, WireError>;

fn err<T>(context: &'static str) -> WireResult<T> {
    Err(WireError { context })
}

/// Byte-buffer encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Byte-buffer decoder.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return err(context);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => err("bool"),
        }
    }

    fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n, "str bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            context: "str utf8",
        })
    }
}

/// Types that serialize onto the simulated disk.
pub trait Wire: Sized {
    /// Appends this value to `out`.
    fn encode(&self, out: &mut Enc);
    /// Parses one value from `inp`.
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self>;
}

/// Encodes one value to a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut enc = Enc::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Decodes one value from `bytes`, requiring full consumption.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> WireResult<T> {
    let mut dec = Dec::new(bytes);
    let v = T::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return err("trailing bytes");
    }
    Ok(v)
}

impl Wire for u64 {
    fn encode(&self, out: &mut Enc) {
        out.u64(*self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.u64()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Enc) {
        out.bool(*self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.bool()
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Enc) {
        out.str(self);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        inp.str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Enc) {
        match self {
            None => out.u8(0),
            Some(v) => {
                out.u8(1);
                v.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(inp)?)),
            _ => err("option tag"),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        // Guard against absurd lengths from corrupt frames.
        if n > inp.remaining() {
            return err("vec length");
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(inp)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Enc) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok((A::decode(inp)?, B::decode(inp)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Enc) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok((A::decode(inp)?, B::decode(inp)?, C::decode(inp)?))
    }
}

// ---------------------------------------------------------------------
// mdcc-common types.
// ---------------------------------------------------------------------

impl Wire for NodeId {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(NodeId(inp.u32()?))
    }
}

impl Wire for TableId {
    fn encode(&self, out: &mut Enc) {
        out.u16(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(TableId(inp.u16()?))
    }
}

impl Wire for Key {
    fn encode(&self, out: &mut Enc) {
        self.table.encode(out);
        out.str(&self.pk);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let table = TableId::decode(inp)?;
        let pk = inp.str()?;
        Ok(Key { table, pk })
    }
}

impl Wire for TxnId {
    fn encode(&self, out: &mut Enc) {
        self.coordinator.encode(out);
        out.u64(self.seq);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(TxnId {
            coordinator: NodeId::decode(inp)?,
            seq: inp.u64()?,
        })
    }
}

impl Wire for Version {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Version(inp.u64()?))
    }
}

impl Wire for SimTime {
    fn encode(&self, out: &mut Enc) {
        out.u64(self.0);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(SimTime(inp.u64()?))
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Enc) {
        match self {
            Value::Null => out.u8(0),
            Value::Int(i) => {
                out.u8(1);
                out.i64(*i);
            }
            Value::Str(s) => {
                out.u8(2);
                out.str(s);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(inp.i64()?)),
            2 => Ok(Value::Str(inp.str()?)),
            _ => err("value tag"),
        }
    }
}

impl Wire for Row {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        // Row iterates in attribute-name order: deterministic.
        for (attr, value) in self.iter() {
            out.str(attr);
            value.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("row length");
        }
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            pairs.push((inp.str()?, Value::decode(inp)?));
        }
        Ok(pairs.into_iter().collect())
    }
}

impl Wire for PhysicalUpdate {
    fn encode(&self, out: &mut Enc) {
        self.vread.encode(out);
        self.value.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(PhysicalUpdate {
            vread: Option::decode(inp)?,
            value: Option::decode(inp)?,
        })
    }
}

impl Wire for CommutativeUpdate {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.deltas.len() as u32);
        for (attr, delta) in &self.deltas {
            out.str(attr);
            out.i64(*delta);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("deltas length");
        }
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push((inp.str()?, inp.i64()?));
        }
        Ok(CommutativeUpdate { deltas })
    }
}

impl Wire for UpdateOp {
    fn encode(&self, out: &mut Enc) {
        match self {
            UpdateOp::Physical(p) => {
                out.u8(0);
                p.encode(out);
            }
            UpdateOp::Commutative(c) => {
                out.u8(1);
                c.encode(out);
            }
            UpdateOp::ReadGuard(v) => {
                out.u8(2);
                v.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(UpdateOp::Physical(PhysicalUpdate::decode(inp)?)),
            1 => Ok(UpdateOp::Commutative(CommutativeUpdate::decode(inp)?)),
            2 => Ok(UpdateOp::ReadGuard(Version::decode(inp)?)),
            _ => err("update-op tag"),
        }
    }
}

impl Wire for AbortReason {
    fn encode(&self, out: &mut Enc) {
        let tag = match self {
            AbortReason::StaleRead => 0,
            AbortReason::PendingOption => 1,
            AbortReason::AlreadyExists => 2,
            AbortReason::DemarcationLimit => 3,
            AbortReason::ConstraintViolation => 4,
            AbortReason::Resolved => 5,
        };
        out.u8(tag);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(AbortReason::StaleRead),
            1 => Ok(AbortReason::PendingOption),
            2 => Ok(AbortReason::AlreadyExists),
            3 => Ok(AbortReason::DemarcationLimit),
            4 => Ok(AbortReason::ConstraintViolation),
            5 => Ok(AbortReason::Resolved),
            _ => err("abort-reason tag"),
        }
    }
}

// ---------------------------------------------------------------------
// mdcc-paxos types.
// ---------------------------------------------------------------------

impl Wire for Ballot {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.round);
        out.u8(match self.kind {
            BallotKind::Fast => 0,
            BallotKind::Classic => 1,
        });
        self.proposer.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let round = inp.u32()?;
        let kind = match inp.u8()? {
            0 => BallotKind::Fast,
            1 => BallotKind::Classic,
            _ => return err("ballot kind"),
        };
        Ok(Ballot {
            round,
            kind,
            proposer: NodeId::decode(inp)?,
        })
    }
}

impl Wire for OptionStatus {
    fn encode(&self, out: &mut Enc) {
        match self {
            OptionStatus::Accepted => out.u8(0),
            OptionStatus::Rejected(reason) => {
                out.u8(1);
                reason.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(OptionStatus::Accepted),
            1 => Ok(OptionStatus::Rejected(AbortReason::decode(inp)?)),
            _ => err("option-status tag"),
        }
    }
}

impl Wire for TxnOutcome {
    fn encode(&self, out: &mut Enc) {
        out.u8(match self {
            TxnOutcome::Committed => 0,
            TxnOutcome::Aborted => 1,
        });
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(TxnOutcome::Committed),
            1 => Ok(TxnOutcome::Aborted),
            _ => err("txn-outcome tag"),
        }
    }
}

impl Wire for Resolution {
    fn encode(&self, out: &mut Enc) {
        self.outcome.encode(out);
        out.bool(self.learned_accepted);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Resolution {
            outcome: TxnOutcome::decode(inp)?,
            learned_accepted: inp.bool()?,
        })
    }
}

impl Wire for TxnOption {
    fn encode(&self, out: &mut Enc) {
        self.txn.encode(out);
        self.key.encode(out);
        self.op.encode(out);
        out.u32(self.peers.len() as u32);
        for peer in self.peers.iter() {
            peer.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let txn = TxnId::decode(inp)?;
        let key = Key::decode(inp)?;
        let op = UpdateOp::decode(inp)?;
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("peers length");
        }
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(Key::decode(inp)?);
        }
        Ok(TxnOption {
            txn,
            key,
            op,
            peers: Arc::from(peers),
        })
    }
}

impl Wire for Entry {
    fn encode(&self, out: &mut Enc) {
        self.opt.encode(out);
        self.status.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Entry {
            opt: TxnOption::decode(inp)?,
            status: OptionStatus::decode(inp)?,
        })
    }
}

impl Wire for CStruct {
    fn encode(&self, out: &mut Enc) {
        out.u32(self.len() as u32);
        for entry in self.entries() {
            entry.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("cstruct length");
        }
        let mut c = CStruct::new();
        for _ in 0..n {
            c.append_entry(Entry::decode(inp)?);
        }
        Ok(c)
    }
}

impl Wire for RecordSnapshot {
    fn encode(&self, out: &mut Enc) {
        self.version.encode(out);
        self.value.encode(out);
        self.folded.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(RecordSnapshot {
            version: Version::decode(inp)?,
            value: Option::decode(inp)?,
            folded: Vec::decode(inp)?,
        })
    }
}

impl Wire for Phase2a {
    fn encode(&self, out: &mut Enc) {
        self.ballot.encode(out);
        self.version.encode(out);
        self.snapshot.encode(out);
        self.safe.encode(out);
        self.new_options.encode(out);
        out.bool(self.close_instance);
        self.reopen_fast.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(Phase2a {
            ballot: Ballot::decode(inp)?,
            version: Version::decode(inp)?,
            snapshot: RecordSnapshot::decode(inp)?,
            safe: Option::decode(inp)?,
            new_options: Vec::decode(inp)?,
            close_instance: inp.bool()?,
            reopen_fast: Option::decode(inp)?,
        })
    }
}

impl Wire for AcceptorState {
    fn encode(&self, out: &mut Enc) {
        self.version.encode(out);
        self.value.encode(out);
        self.base.encode(out);
        self.promised.encode(out);
        self.accepted_ballot.encode(out);
        self.entries.encode(out);
        self.outcomes.encode(out);
        self.resolved.encode(out);
        out.bool(self.close_on_resolve);
        self.reopen_fast_after.encode(out);
        self.closed_resolved.encode(out);
        self.inherited_folded.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(AcceptorState {
            version: Version::decode(inp)?,
            value: Option::decode(inp)?,
            base: Option::decode(inp)?,
            promised: Ballot::decode(inp)?,
            accepted_ballot: Option::decode(inp)?,
            entries: Vec::decode(inp)?,
            outcomes: Vec::decode(inp)?,
            resolved: Vec::decode(inp)?,
            close_on_resolve: inp.bool()?,
            reopen_fast_after: Option::decode(inp)?,
            closed_resolved: Vec::decode(inp)?,
            inherited_folded: Vec::decode(inp)?,
        })
    }
}

// ---------------------------------------------------------------------
// mdcc-storage types.
// ---------------------------------------------------------------------

impl Wire for LogEvent {
    fn encode(&self, out: &mut Enc) {
        match self {
            LogEvent::Decided { txn, key, status } => {
                out.u8(0);
                txn.encode(out);
                key.encode(out);
                status.encode(out);
            }
            LogEvent::Outcome { txn, key, outcome } => {
                out.u8(1);
                txn.encode(out);
                key.encode(out);
                outcome.encode(out);
            }
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match inp.u8()? {
            0 => Ok(LogEvent::Decided {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                status: OptionStatus::decode(inp)?,
            }),
            1 => Ok(LogEvent::Outcome {
                txn: TxnId::decode(inp)?,
                key: Key::decode(inp)?,
                outcome: TxnOutcome::decode(inp)?,
            }),
            _ => err("log-event tag"),
        }
    }
}

impl Wire for PendingTxn {
    fn encode(&self, out: &mut Enc) {
        self.txn.encode(out);
        self.since.encode(out);
        out.u32(self.peers.len() as u32);
        for peer in self.peers.iter() {
            peer.encode(out);
        }
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        let txn = TxnId::decode(inp)?;
        let since = SimTime::decode(inp)?;
        let n = inp.u32()? as usize;
        if n > inp.remaining() {
            return err("pending peers length");
        }
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(Key::decode(inp)?);
        }
        Ok(PendingTxn {
            txn,
            since,
            peers: Arc::from(peers),
        })
    }
}

impl Wire for StoreState {
    fn encode(&self, out: &mut Enc) {
        self.records.encode(out);
        self.pending.encode(out);
        self.log.encode(out);
    }
    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        Ok(StoreState {
            records: Vec::decode(inp)?,
            pending: Vec::decode(inp)?,
            log: Vec::decode(inp)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + std::fmt::Debug>(v: &T) -> T {
        let bytes = to_bytes(v);
        from_bytes(&bytes).expect("round trip")
    }

    #[test]
    fn primitives_and_rows_round_trip() {
        let row = Row::new().with("stock", 42).with("title", "widget");
        assert_eq!(round_trip(&row), row);
        let key = Key::new(TableId(3), "i99");
        assert_eq!(round_trip(&key), key);
        let txn = TxnId::new(NodeId(7), 123);
        assert_eq!(round_trip(&txn), txn);
        assert_eq!(round_trip(&Value::Null), Value::Null);
        assert_eq!(round_trip(&Some(Version(9))), Some(Version(9)));
        assert_eq!(round_trip(&Option::<Version>::None), None);
    }

    #[test]
    fn options_and_ballots_round_trip() {
        let opt = TxnOption {
            txn: TxnId::new(NodeId(1), 5),
            key: Key::new(TableId(0), "a"),
            op: UpdateOp::Commutative(CommutativeUpdate::delta("stock", -3).and("sold", 3)),
            peers: Arc::from(vec![Key::new(TableId(0), "a"), Key::new(TableId(0), "b")]),
        };
        let back = round_trip(&opt);
        assert_eq!(back.txn, opt.txn);
        assert_eq!(back.op, opt.op);
        assert_eq!(&*back.peers, &*opt.peers);

        for ballot in [
            Ballot::INITIAL_FAST,
            Ballot::classic(9, NodeId(2)),
            Ballot::fast(4, NodeId(1)),
        ] {
            assert_eq!(round_trip(&ballot), ballot);
        }
        for status in [
            OptionStatus::Accepted,
            OptionStatus::Rejected(AbortReason::DemarcationLimit),
        ] {
            assert_eq!(round_trip(&status), status);
        }
    }

    #[test]
    fn phase2a_round_trips_with_safe_cstruct() {
        let mut safe = CStruct::new();
        safe.append(
            TxnOption::solo(
                TxnId::new(NodeId(0), 1),
                Key::new(TableId(0), "x"),
                UpdateOp::ReadGuard(Version(2)),
            ),
            OptionStatus::Accepted,
        );
        let p2a = Phase2a {
            ballot: Ballot::classic(2, NodeId(3)),
            version: Version(5),
            snapshot: RecordSnapshot {
                version: Version(5),
                value: Some(Row::new().with("stock", 1)),
                folded: vec![TxnId::new(NodeId(4), 2)],
            },
            safe: Some(safe),
            new_options: vec![TxnOption::solo(
                TxnId::new(NodeId(9), 7),
                Key::new(TableId(0), "x"),
                UpdateOp::Physical(PhysicalUpdate::delete(Version(5))),
            )],
            close_instance: true,
            reopen_fast: Some(Ballot::fast(3, NodeId(3))),
        };
        let back = round_trip(&p2a);
        assert_eq!(back.ballot, p2a.ballot);
        assert_eq!(back.version, p2a.version);
        assert_eq!(back.snapshot, p2a.snapshot);
        assert_eq!(back.safe.as_ref().map(|c| c.len()), Some(1));
        assert_eq!(back.new_options, p2a.new_options);
        assert!(back.close_instance);
        assert_eq!(back.reopen_fast, p2a.reopen_fast);
    }

    #[test]
    fn corrupt_bytes_fail_cleanly() {
        let bytes = to_bytes(&Key::new(TableId(1), "abc"));
        assert!(from_bytes::<Key>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<TxnOutcome>(&[9]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(
            from_bytes::<Key>(&extended).is_err(),
            "trailing bytes rejected"
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let row_a = Row::new().with("b", 2).with("a", 1);
        let row_b = Row::new().with("a", 1).with("b", 2);
        assert_eq!(
            to_bytes(&row_a),
            to_bytes(&row_b),
            "insertion order irrelevant"
        );
    }
}

//! Durable-state codec — now a façade over the shared wire layer.
//!
//! The binary encoding that used to live here was promoted to
//! [`mdcc_common::wire`] so the *same* bytes define both what reaches
//! disk and what a message costs on the simulated network. Each crate
//! implements [`Wire`] for the types it owns (`mdcc-paxos` for ballots
//! and phase payloads, `mdcc-storage` for store state, `mdcc-core` for
//! protocol messages); this module re-exports the layer under its
//! historical path for recovery-side callers.

pub use mdcc_common::wire::{
    err, fnv1a32, fnv1a64, frame, frame_payload, from_bytes, read_frames, to_bytes, wire_len, Dec,
    Enc, Wire, WireError, WireResult, FRAME_OVERHEAD,
};

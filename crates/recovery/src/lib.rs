//! Durability and crash recovery for MDCC storage nodes.
//!
//! MDCC §3.2.3 argues that because storage nodes log every learned
//! option, *any* node can reconstruct the state of a dangling
//! transaction. This crate makes that durable story concrete:
//!
//! * [`codec`] — a deterministic, dependency-free binary encoding for
//!   every protocol type that reaches disk;
//! * [`wal`] — a framed, checksummed **command log**: each
//!   state-changing input a storage node handles is appended before the
//!   in-memory [`mdcc_storage::RecordStore`] applies it, so replay from
//!   the last checkpoint lands on the exact pre-crash state;
//! * [`snapshot`] — full-store checkpoints that compact the WAL, the
//!   [`snapshot::recover_store`] restart path, and the committed-state
//!   digests the recovery audit compares across replicas.
//!
//! The crate is pure data-plumbing over [`mdcc_sim::Disk`]; the
//! protocol-side hooks (when to append, when to checkpoint, peer sync
//! after restart) live in `mdcc-core`, and the fault schedules that
//! exercise them live in `mdcc-cluster`.

pub mod codec;
pub mod snapshot;
pub mod wal;

pub use codec::{from_bytes, to_bytes, Wire, WireError, WireResult};
pub use snapshot::{
    committed_bytes, committed_digest, committed_state_digest, read_checkpoint, recover_store,
    recovered_leases, write_checkpoint, RecoveryInfo,
};
pub use wal::{recovered_lease_state, CommitLog, MemLog, RecoveredLeases, ReplayStats, WalRecord};

//! The write-ahead log: framed command records, append and replay.
//!
//! The WAL is a *command log*: every state-changing input a storage node
//! handles (bulk load, Phase1a, fast proposal, classic Phase2a,
//! visibility, peer sync) is framed and appended to the node's simulated
//! disk **before** the in-memory store applies it. Because every one of
//! those operations is a deterministic function of (current state,
//! input), replaying the log from the last checkpoint reconstructs the
//! exact pre-crash state — the property §3.2.3 relies on when it claims
//! any node can rebuild a transaction from its log of learned options.
//!
//! Frame format: `[len: u32][checksum: u32][payload: len bytes]`, with an
//! FNV-1a checksum over the payload. A torn or corrupt tail fails decode
//! cleanly rather than poisoning recovery.

use mdcc_common::{Key, Row, SimTime, TxnId};
use mdcc_paxos::acceptor::Phase2a;
use mdcc_paxos::{Ballot, RecordSnapshot, Resolution, TxnOption, TxnOutcome};
use mdcc_sim::Disk;
use mdcc_storage::RecordStore;

use crate::codec::{Dec, Enc, Wire, WireError, WireResult};

/// One durable command. Replay applies these through the same
/// [`RecordStore`] entry points the live node used.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Bulk load of one record at start-up (initial data distribution).
    Load {
        /// Record loaded.
        key: Key,
        /// Initial row.
        row: Row,
    },
    /// A Phase1a promise request was processed.
    Phase1a {
        /// Record concerned.
        key: Key,
        /// Ballot promised (or at least offered).
        ballot: Ballot,
    },
    /// A fast-ballot proposal was processed.
    FastPropose {
        /// When it was processed (drives pending-option timestamps).
        at: SimTime,
        /// The proposal.
        opt: TxnOption,
    },
    /// A classic Phase2a was processed.
    ClassicAccept {
        /// When it was processed.
        at: SimTime,
        /// Record concerned.
        key: Key,
        /// Full Phase2a payload.
        payload: Box<Phase2a>,
    },
    /// A transaction outcome (Visibility) was applied.
    Visibility {
        /// When it was applied.
        at: SimTime,
        /// Record concerned.
        key: Key,
        /// Resolved transaction.
        txn: TxnId,
        /// Commit or abort.
        outcome: TxnOutcome,
        /// Learned status of this record's option.
        learned_accepted: bool,
    },
    /// A peer-sync catch-up was applied (anti-entropy after restart).
    Sync {
        /// When it was applied.
        at: SimTime,
        /// Record concerned.
        key: Key,
        /// Peer's committed state.
        snapshot: RecordSnapshot,
        /// Peer's resolved options of the current instance.
        resolved: Vec<(TxnOption, Resolution)>,
    },
    /// A mastership lease grant raised the shard-wide Phase1 promise
    /// floor (lease-carried Phase1). Not replayed into the store —
    /// floors apply lazily per record — but folded back into the node's
    /// enforcement table on restart so its quorum-intersection fencing
    /// survives the crash. Raw fields, so recovery needs no dependency
    /// on the mastership crate.
    LeaseFloor {
        /// Shard whose promise floor rose.
        shard: u32,
        /// Lease ballot number.
        n: u32,
        /// Lease holder's pid.
        pid: u64,
    },
    /// A per-record override raised one record's floor past the shard
    /// base (a contested classic round, or state inherited on handoff).
    LeaseOverride {
        /// Shard concerned.
        shard: u32,
        /// Record id (FNV-1a of the key's wire bytes).
        record: u64,
        /// Override ballot number.
        n: u32,
        /// Override holder's pid.
        pid: u64,
    },
}

impl Wire for WalRecord {
    fn encode(&self, out: &mut Enc) {
        match self {
            WalRecord::Load { key, row } => {
                0u64.encode(out);
                key.encode(out);
                row.encode(out);
            }
            WalRecord::Phase1a { key, ballot } => {
                1u64.encode(out);
                key.encode(out);
                ballot.encode(out);
            }
            WalRecord::FastPropose { at, opt } => {
                2u64.encode(out);
                at.encode(out);
                opt.encode(out);
            }
            WalRecord::ClassicAccept { at, key, payload } => {
                3u64.encode(out);
                at.encode(out);
                key.encode(out);
                payload.as_ref().encode(out);
            }
            WalRecord::Visibility {
                at,
                key,
                txn,
                outcome,
                learned_accepted,
            } => {
                4u64.encode(out);
                at.encode(out);
                key.encode(out);
                txn.encode(out);
                outcome.encode(out);
                learned_accepted.encode(out);
            }
            WalRecord::Sync {
                at,
                key,
                snapshot,
                resolved,
            } => {
                5u64.encode(out);
                at.encode(out);
                key.encode(out);
                snapshot.encode(out);
                resolved.encode(out);
            }
            WalRecord::LeaseFloor { shard, n, pid } => {
                6u64.encode(out);
                shard.encode(out);
                n.encode(out);
                pid.encode(out);
            }
            WalRecord::LeaseOverride {
                shard,
                record,
                n,
                pid,
            } => {
                7u64.encode(out);
                shard.encode(out);
                record.encode(out);
                n.encode(out);
                pid.encode(out);
            }
        }
    }

    fn decode(inp: &mut Dec<'_>) -> WireResult<Self> {
        match u64::decode(inp)? {
            0 => Ok(WalRecord::Load {
                key: Key::decode(inp)?,
                row: Row::decode(inp)?,
            }),
            1 => Ok(WalRecord::Phase1a {
                key: Key::decode(inp)?,
                ballot: Ballot::decode(inp)?,
            }),
            2 => Ok(WalRecord::FastPropose {
                at: SimTime::decode(inp)?,
                opt: TxnOption::decode(inp)?,
            }),
            3 => Ok(WalRecord::ClassicAccept {
                at: SimTime::decode(inp)?,
                key: Key::decode(inp)?,
                payload: Box::new(Phase2a::decode(inp)?),
            }),
            4 => Ok(WalRecord::Visibility {
                at: SimTime::decode(inp)?,
                key: Key::decode(inp)?,
                txn: TxnId::decode(inp)?,
                outcome: TxnOutcome::decode(inp)?,
                learned_accepted: bool::decode(inp)?,
            }),
            5 => Ok(WalRecord::Sync {
                at: SimTime::decode(inp)?,
                key: Key::decode(inp)?,
                snapshot: RecordSnapshot::decode(inp)?,
                resolved: Vec::decode(inp)?,
            }),
            6 => Ok(WalRecord::LeaseFloor {
                shard: u32::decode(inp)?,
                n: u32::decode(inp)?,
                pid: u64::decode(inp)?,
            }),
            7 => Ok(WalRecord::LeaseOverride {
                shard: u32::decode(inp)?,
                record: u64::decode(inp)?,
                n: u32::decode(inp)?,
                pid: u64::decode(inp)?,
            }),
            _ => Err(WireError {
                context: "wal-record tag",
            }),
        }
    }
}

/// Frames one record (`[len][checksum][payload]`) into bytes, using the
/// shared framing of [`mdcc_common::wire`].
pub fn frame(record: &WalRecord) -> Vec<u8> {
    crate::codec::frame(record)
}

/// Where framed WAL records land. The storage node's live path appends
/// to its simulated [`Disk`]; tests and benches can use a [`MemLog`]
/// without standing up a world. The trait deliberately says nothing
/// about durability timing — whether an appended frame is synchronously
/// durable or awaits a covering group fsync is the simulator's
/// write-back model ([`Disk::fsync`]), not the log's.
pub trait CommitLog {
    /// Appends one already-framed record.
    fn append_frame(&mut self, frame: &[u8]);
    /// Every appended byte, oldest first.
    fn frames(&self) -> &[u8];
}

impl CommitLog for Disk {
    fn append_frame(&mut self, frame: &[u8]) {
        self.append_wal(frame);
    }

    fn frames(&self) -> &[u8] {
        self.wal()
    }
}

/// An in-memory commit log: a plain byte buffer (tests, benches).
#[derive(Debug, Clone, Default)]
pub struct MemLog {
    bytes: Vec<u8>,
}

impl MemLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CommitLog for MemLog {
    fn append_frame(&mut self, frame: &[u8]) {
        self.bytes.extend_from_slice(frame);
    }

    fn frames(&self) -> &[u8] {
        &self.bytes
    }
}

/// Appends one framed record to `log` (usually a node's [`Disk`] WAL
/// area).
pub fn append<L: CommitLog + ?Sized>(log: &mut L, record: &WalRecord) {
    log.append_frame(&frame(record));
}

/// Parses every framed record in `wal`, oldest first, verifying
/// checksums.
pub fn read_all(wal: &[u8]) -> WireResult<Vec<WalRecord>> {
    crate::codec::read_frames(wal)
}

/// Counters from one replay pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records applied.
    pub applied: u64,
}

/// Re-applies `records` to `store` through the same entry points the
/// live node used. Replaying a log the store has (partially) seen is
/// harmless: every entry point is idempotent under re-delivery.
pub fn replay(store: &mut RecordStore, records: &[WalRecord]) -> ReplayStats {
    let mut stats = ReplayStats::default();
    for record in records {
        match record.clone() {
            WalRecord::Load { key, row } => store.load(key, row),
            WalRecord::Phase1a { key, ballot } => {
                let _ = store.phase1a(&key, ballot);
            }
            WalRecord::FastPropose { at, opt } => {
                let _ = store.fast_propose(opt, at);
            }
            WalRecord::ClassicAccept { at, key, payload } => {
                let _ = store.classic_accept(&key, *payload, at);
            }
            WalRecord::Visibility {
                at,
                key,
                txn,
                outcome,
                learned_accepted,
            } => {
                let _ = store.apply_visibility(&key, txn, outcome, learned_accepted, at);
            }
            WalRecord::Sync {
                at,
                key,
                snapshot,
                resolved,
            } => {
                let _ = store.sync_from_peer(&key, &snapshot, &resolved, at);
            }
            // Lease floors are not record-store state: they live in the
            // node's enforcement table and re-apply lazily per record.
            // `recovered_lease_state` folds them out of the log.
            WalRecord::LeaseFloor { .. } | WalRecord::LeaseOverride { .. } => {}
        }
        stats.applied += 1;
    }
    stats
}

/// Lease-floor state folded out of a WAL: the maximum `(n, pid)` floor
/// per shard plus the maximum override per `(shard, record)`, exactly
/// what the restarting node must re-enforce so a deposed predecessor's
/// ballots stay fenced across its crash (the mastership lease table
/// itself stays quarantined — this is acceptor-side state only).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredLeases {
    /// Per-shard base floors `(shard, (n, pid))`, sorted by shard.
    pub floors: Vec<(u32, (u32, u64))>,
    /// Per-record overrides `((shard, record), (n, pid))`, sorted.
    pub overrides: Vec<((u32, u64), (u32, u64))>,
}

/// Extracts [`RecoveredLeases`] from replayed WAL records.
pub fn recovered_lease_state(records: &[WalRecord]) -> RecoveredLeases {
    use std::collections::BTreeMap;
    let mut floors: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    let mut overrides: BTreeMap<(u32, u64), (u32, u64)> = BTreeMap::new();
    for record in records {
        match *record {
            WalRecord::LeaseFloor { shard, n, pid } => {
                let slot = floors.entry(shard).or_default();
                *slot = (*slot).max((n, pid));
            }
            WalRecord::LeaseOverride {
                shard,
                record,
                n,
                pid,
            } => {
                let slot = overrides.entry((shard, record)).or_default();
                *slot = (*slot).max((n, pid));
            }
            _ => {}
        }
    }
    RecoveredLeases {
        floors: floors.into_iter().collect(),
        overrides: overrides.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::{CommutativeUpdate, NodeId, ProtocolConfig, TableId, UpdateOp};
    use mdcc_storage::Catalog;
    use std::sync::Arc;

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    fn sample_records() -> Vec<WalRecord> {
        let opt = TxnOption::solo(
            TxnId::new(NodeId(1), 4),
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        vec![
            WalRecord::Load {
                key: key("a"),
                row: Row::new().with("stock", 5),
            },
            WalRecord::FastPropose {
                at: SimTime::from_millis(3),
                opt,
            },
            WalRecord::Visibility {
                at: SimTime::from_millis(9),
                key: key("a"),
                txn: TxnId::new(NodeId(1), 4),
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
        ]
    }

    #[test]
    fn frames_round_trip_through_a_disk() {
        let mut disk = Disk::new();
        let records = sample_records();
        for r in &records {
            append(&mut disk, r);
        }
        let back = read_all(disk.wal()).expect("parse");
        assert_eq!(back.len(), records.len());
        assert_eq!(
            format!("{back:?}"),
            format!("{records:?}"),
            "decoded records equal the appended ones"
        );
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut disk = Disk::new();
        append(&mut disk, &sample_records()[0]);
        let mut bytes = disk.wal().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(read_all(&bytes).is_err(), "checksum catches the flip");
        bytes.truncate(bytes.len() - 2);
        assert!(read_all(&bytes).is_err(), "torn tail detected");
    }

    #[test]
    fn replay_restores_the_cstruct_epoch() {
        // Delta votes reference positions within a cstruct *epoch*; the
        // epoch advances inside the input-processing entry points
        // (aborts remove entries and bump it), so a command-log replay
        // must land on the same value — a regressed epoch after a
        // restart would make receivers discard the node's fresh votes
        // as stale and stall learning until read-repair.
        let catalog = Arc::new(Catalog::new());
        let mut live = RecordStore::new(ProtocolConfig::default(), Arc::clone(&catalog));
        let mut records = vec![WalRecord::Load {
            key: key("a"),
            row: Row::new().with("stock", 50),
        }];
        for seq in 0..3 {
            records.push(WalRecord::FastPropose {
                at: SimTime::from_millis(seq),
                opt: TxnOption::solo(
                    TxnId::new(NodeId(1), seq),
                    key("a"),
                    UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
                ),
            });
        }
        // An abort removes its entry, bumping the cstruct epoch…
        records.push(WalRecord::Visibility {
            at: SimTime::from_millis(9),
            key: key("a"),
            txn: TxnId::new(NodeId(1), 2),
            outcome: TxnOutcome::Aborted,
            learned_accepted: false,
        });
        // …and a further proposal extends the new epoch.
        records.push(WalRecord::FastPropose {
            at: SimTime::from_millis(12),
            opt: TxnOption::solo(
                TxnId::new(NodeId(1), 3),
                key("a"),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
            ),
        });
        replay(&mut live, &records);

        let mut rebuilt = RecordStore::new(ProtocolConfig::default(), Arc::clone(&catalog));
        replay(&mut rebuilt, &records);

        // Both process the same next proposal: the emitted votes must
        // carry identical epochs and delta positions.
        let next = TxnOption::solo(
            TxnId::new(NodeId(1), 9),
            key("a"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        );
        let at = SimTime::from_millis(20);
        let (live_vote, rebuilt_vote) = match (
            live.fast_propose(next.clone(), at),
            rebuilt.fast_propose(next, at),
        ) {
            (
                mdcc_paxos::acceptor::FastPropose::Vote(a),
                mdcc_paxos::acceptor::FastPropose::Vote(b),
            ) => (a, b),
            other => panic!("expected votes, got {other:?}"),
        };
        assert_eq!(live_vote.epoch, rebuilt_vote.epoch);
        assert!(
            live_vote.epoch > 0,
            "the abort should have bumped the epoch"
        );
        assert_eq!(
            mdcc_common::wire::to_bytes(&live_vote.cstruct),
            mdcc_common::wire::to_bytes(&rebuilt_vote.cstruct),
            "replayed cstruct must be byte-identical"
        );
    }

    #[test]
    fn lease_records_round_trip_and_fold() {
        let mut disk = Disk::new();
        let records = vec![
            WalRecord::LeaseFloor {
                shard: 2,
                n: 3,
                pid: 14,
            },
            WalRecord::LeaseOverride {
                shard: 2,
                record: 0xfeed,
                n: 5,
                pid: 14,
            },
            // A later, higher floor and a lower (stale) override.
            WalRecord::LeaseFloor {
                shard: 2,
                n: 7,
                pid: 9,
            },
            WalRecord::LeaseOverride {
                shard: 2,
                record: 0xfeed,
                n: 4,
                pid: 99,
            },
        ];
        for r in &records {
            append(&mut disk, r);
        }
        let back = read_all(disk.wal()).expect("parse");
        assert_eq!(format!("{back:?}"), format!("{records:?}"));
        // Replay ignores them at the store level...
        let catalog = Arc::new(Catalog::new());
        let mut store = RecordStore::new(ProtocolConfig::default(), Arc::clone(&catalog));
        let stats = replay(&mut store, &back);
        assert_eq!(stats.applied, 4);
        assert!(store.keys().is_empty());
        // ...while the fold keeps the per-shard / per-record maxima.
        let leases = recovered_lease_state(&back);
        assert_eq!(leases.floors, vec![(2, (7, 9))]);
        assert_eq!(leases.overrides, vec![((2, 0xfeed), (5, 14))]);
    }

    #[test]
    fn replay_reconstructs_store_state() {
        let catalog = Arc::new(Catalog::new());
        let mut store = RecordStore::new(ProtocolConfig::default(), Arc::clone(&catalog));
        replay(&mut store, &sample_records());
        let (version, row) = store.read_committed(&key("a")).expect("record exists");
        assert_eq!(version.0, 1);
        assert_eq!(
            row.get_int("stock"),
            Some(4),
            "delta committed during replay"
        );
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.log().len(), 2, "decision + outcome logged");
    }
}

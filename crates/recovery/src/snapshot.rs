//! Checkpoints: full-store snapshots and the recovery entry point.
//!
//! A checkpoint serializes the entire [`RecordStore`] (acceptor state,
//! pending options, option log) into the disk's snapshot blob and
//! truncates the WAL — the compaction step that bounds replay work. On
//! restart, [`recover_store`] rebuilds the store from snapshot + WAL
//! tail and reports how much work that took.

use std::sync::Arc;

use mdcc_common::ProtocolConfig;
use mdcc_sim::Disk;
use mdcc_storage::{Catalog, RecordStore, StoreState};

use crate::codec::{from_bytes, to_bytes, WireResult};
use crate::wal;

/// What one node restart cost, harvested into experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Records materialized from the checkpoint.
    pub snapshot_records: u64,
    /// Checkpoint size in bytes.
    pub snapshot_bytes: u64,
    /// WAL records replayed on top of the checkpoint.
    pub wal_records_replayed: u64,
    /// WAL tail size in bytes.
    pub wal_bytes: u64,
    /// Pending (accepted, unresolved) transactions restored — the
    /// dangling candidates the node must now drive to resolution.
    pub pending_restored: u64,
}

/// Serializes the store into `disk`'s snapshot blob and truncates the
/// WAL (checkpoint + compaction).
pub fn write_checkpoint(disk: &mut Disk, store: &RecordStore) {
    disk.install_snapshot(to_bytes(&store.export_state()));
}

/// Parses a checkpoint blob (empty blob ⇒ no checkpoint yet).
pub fn read_checkpoint(bytes: &[u8]) -> WireResult<Option<StoreState>> {
    if bytes.is_empty() {
        return Ok(None);
    }
    Ok(Some(from_bytes::<StoreState>(bytes)?))
}

/// Rebuilds a storage node's record store from its disk: checkpoint
/// first, then WAL replay. The WAL is a command log, so replay invokes
/// the same deterministic entry points the pre-crash node used and lands
/// on the exact pre-crash state.
pub fn recover_store(
    cfg: ProtocolConfig,
    catalog: Arc<Catalog>,
    disk: &Disk,
) -> WireResult<(RecordStore, RecoveryInfo)> {
    let mut info = RecoveryInfo {
        snapshot_bytes: disk.snapshot().len() as u64,
        wal_bytes: disk.wal_len() as u64,
        ..RecoveryInfo::default()
    };
    let mut store = match read_checkpoint(disk.snapshot())? {
        Some(state) => {
            info.snapshot_records = state.records.len() as u64;
            RecordStore::from_state(cfg, catalog, state)
        }
        None => RecordStore::new(cfg, catalog),
    };
    let records = wal::read_all(disk.wal())?;
    let stats = wal::replay(&mut store, &records);
    info.wal_records_replayed = stats.applied;
    info.pending_restored = store.pending_len() as u64;
    Ok((store, info))
}

/// Lease-floor state a restarting node must re-enforce (see
/// [`wal::recovered_lease_state`]). Read from the WAL tail alone: a
/// checkpoint truncates the WAL, but the node re-appends its live
/// floors and overrides right after each checkpoint, so the tail is
/// always complete.
pub fn recovered_leases(disk: &Disk) -> WireResult<wal::RecoveredLeases> {
    Ok(wal::recovered_lease_state(&wal::read_all(disk.wal())?))
}

/// The committed state of a store as canonical bytes: `(key, version,
/// value)` sorted by key. Two replicas that have converged produce equal
/// bytes — the recovery audit's byte-equality check.
pub fn committed_bytes(store: &RecordStore) -> Vec<u8> {
    to_bytes(&store.committed_state())
}

use crate::codec::fnv1a64;

/// FNV-1a digest of [`committed_bytes`], cheap to ship around in reports.
pub fn committed_digest(store: &RecordStore) -> u64 {
    committed_state_digest(&store.committed_state())
}

/// Same digest over an already-materialized committed state (callers
/// that also scan the state avoid cloning it twice).
pub fn committed_state_digest(
    state: &[(
        mdcc_common::Key,
        mdcc_common::Version,
        Option<mdcc_common::Row>,
    )],
) -> u64 {
    let mut enc = crate::codec::Enc::new();
    for entry in state {
        crate::codec::Wire::encode(entry, &mut enc);
    }
    fnv1a64(&enc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;
    use mdcc_common::{CommutativeUpdate, Key, NodeId, Row, SimTime, TableId, TxnId, UpdateOp};
    use mdcc_paxos::{TxnOption, TxnOutcome};

    fn key(pk: &str) -> Key {
        Key::new(TableId(0), pk)
    }

    fn loaded_store() -> RecordStore {
        let mut s = RecordStore::new(ProtocolConfig::default(), Arc::new(Catalog::new()));
        s.load(key("a"), Row::new().with("stock", 10));
        s.load(key("b"), Row::new().with("stock", 20));
        s
    }

    #[test]
    fn checkpoint_then_recover_is_identity() {
        let mut store = loaded_store();
        store.fast_propose(
            TxnOption::solo(
                TxnId::new(NodeId(2), 1),
                key("a"),
                UpdateOp::Commutative(CommutativeUpdate::delta("stock", -4)),
            ),
            SimTime::from_millis(1),
        );
        let mut disk = Disk::new();
        write_checkpoint(&mut disk, &store);
        assert_eq!(disk.wal_len(), 0, "checkpoint compacts the WAL");

        let (rebuilt, info) =
            recover_store(ProtocolConfig::default(), Arc::new(Catalog::new()), &disk).unwrap();
        assert_eq!(info.snapshot_records, 2);
        assert_eq!(info.wal_records_replayed, 0);
        assert_eq!(info.pending_restored, 1, "outstanding option survives");
        assert_eq!(rebuilt.committed_state(), store.committed_state());
        assert_eq!(committed_digest(&rebuilt), committed_digest(&store));
    }

    #[test]
    fn checkpoint_plus_wal_tail_recovers_exactly() {
        // Live node: checkpoint mid-stream, then more traffic hits the WAL.
        let mut store = loaded_store();
        let mut disk = Disk::new();
        write_checkpoint(&mut disk, &store);

        let opt = TxnOption::solo(
            TxnId::new(NodeId(2), 7),
            key("b"),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -5)),
        );
        let tail = [
            WalRecord::FastPropose {
                at: SimTime::from_millis(4),
                opt: opt.clone(),
            },
            WalRecord::Visibility {
                at: SimTime::from_millis(8),
                key: key("b"),
                txn: opt.txn,
                outcome: TxnOutcome::Committed,
                learned_accepted: true,
            },
        ];
        for r in &tail {
            wal::append(&mut disk, r);
            // The live store applies the same commands.
        }
        wal::replay(&mut store, &tail);

        let (rebuilt, info) =
            recover_store(ProtocolConfig::default(), Arc::new(Catalog::new()), &disk).unwrap();
        assert_eq!(info.wal_records_replayed, 2);
        assert_eq!(
            rebuilt
                .read_committed(&key("b"))
                .unwrap()
                .1
                .get_int("stock"),
            Some(15)
        );
        assert_eq!(committed_bytes(&rebuilt), committed_bytes(&store));
    }

    #[test]
    fn empty_disk_recovers_to_an_empty_store() {
        let disk = Disk::new();
        let (store, info) =
            recover_store(ProtocolConfig::default(), Arc::new(Catalog::new()), &disk).unwrap();
        assert!(store.is_empty());
        assert_eq!(info, RecoveryInfo::default());
    }

    #[test]
    fn digest_distinguishes_diverged_replicas() {
        let a = loaded_store();
        let mut b = loaded_store();
        assert_eq!(committed_digest(&a), committed_digest(&b));
        b.load(key("a"), Row::new().with("stock", 11));
        assert_ne!(committed_digest(&a), committed_digest(&b));
    }
}

//! Shared scaffolding for the experiment drivers.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin`
//! (`fig3` … `fig8`, `tables`) built on the helpers here: experiment
//! scales, workload factories, and CSV output under `results/`.
//! Measured-versus-paper numbers — including bytes-on-wire per
//! committed transaction — are recorded in the repository-level
//! `EXPERIMENTS.md`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mdcc_cluster::{ClientPlacement, ClusterSpec, Report, RunPerf};
use mdcc_common::{DcId, Key, Row, SimDuration, StaticPlacement};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_trace::TraceConfig;
use mdcc_workloads::micro::{self, MicroConfig, MicroWorkload};
use mdcc_workloads::tpcw::{self, TpcwConfig, TpcwWorkload};
use mdcc_workloads::Workload;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI).
    Quick,
    /// Minutes-long runs matching the paper's setup sizes.
    Paper,
    /// Ten times the paper's client and data sizes at paper durations —
    /// the headroom demonstration for the parallel engine.
    X10,
}

impl Scale {
    /// Parses one scale name; `None` for anything unknown.
    pub fn parse(v: &str) -> Option<Scale> {
        match v {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            "10x" => Some(Scale::X10),
            _ => None,
        }
    }

    /// Parses `--scale=quick|paper|10x` from the process arguments
    /// (default: paper — drivers reproduce the paper's setup sizes
    /// unless explicitly scaled down for CI smoke runs).
    pub fn from_args() -> Scale {
        for arg in std::env::args() {
            if let Some(v) = arg.strip_prefix("--scale=") {
                return Scale::parse(v)
                    .unwrap_or_else(|| panic!("unknown scale {v:?} (use quick|paper|10x)"));
            }
        }
        Scale::Paper
    }

    /// The name `--scale=` accepts for this scale.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::X10 => "10x",
        }
    }

    /// Scale factor divisor applied to clients/items/duration.
    pub fn div(&self) -> u64 {
        match self {
            Scale::Quick => 4,
            Scale::Paper | Scale::X10 => 1,
        }
    }

    /// Multiplier applied to clients and items (durations stay at the
    /// paper's lengths: `10x` grows the deployment, not the run).
    pub fn mult(&self) -> u64 {
        match self {
            Scale::Quick | Scale::Paper => 1,
            Scale::X10 => 10,
        }
    }
}

/// Parses the `--parallel` flag from the process arguments: run every
/// experiment world on the conservative parallel per-DC engine (one
/// worker thread per data center, byte-identical results).
pub fn parallel_flag() -> bool {
    std::env::args().any(|a| a == "--parallel")
}

/// The TPC-W catalog: eight tables, `stock ≥ 0` on items.
pub fn tpcw_catalog() -> Arc<Catalog> {
    use tpcw::tables as t;
    Arc::new(
        Catalog::new()
            .with(
                TableSchema::new(t::ITEM, "item")
                    .with_constraint(AttrConstraint::at_least(tpcw::STOCK, 0)),
            )
            .with(TableSchema::new(t::CUSTOMER, "customer"))
            .with(TableSchema::new(t::ORDERS, "orders"))
            .with(TableSchema::new(t::ORDER_LINE, "order_line"))
            .with(TableSchema::new(t::CC_XACTS, "cc_xacts"))
            .with(TableSchema::new(t::CART, "shopping_cart"))
            .with(TableSchema::new(t::CART_LINE, "shopping_cart_line"))
            .with(TableSchema::new(t::AUTHOR, "author")),
    )
}

/// The micro-benchmark catalog: one item table, `stock ≥ 0`.
pub fn micro_catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new().with(
            TableSchema::new(micro::MICRO_ITEMS, "item")
                .with_constraint(AttrConstraint::at_least(micro::STOCK, 0)),
        ),
    )
}

/// The paper's TPC-W deployment (§5.2.1): SF 10 000 items, 100 clients,
/// four storage nodes per DC, 1 min warm-up + 2 min measurement.
pub fn tpcw_spec(scale: Scale, seed: u64) -> (ClusterSpec, u64) {
    let d = scale.div();
    let m = scale.mult();
    let items = 10_000 * m / d;
    let spec = ClusterSpec {
        seed,
        clients: (100 * m / d) as usize,
        shards_per_dc: ((4 / d) as usize).max(1),
        warmup: SimDuration::from_secs(60 / d),
        duration: SimDuration::from_secs(120 / d),
        ..ClusterSpec::default()
    };
    (spec, items)
}

/// The paper's micro-benchmark deployment (§5.3): 10 000 items, 100
/// clients, two storage nodes per DC, 1 min warm-up + 3 min measurement.
pub fn micro_spec(scale: Scale, seed: u64) -> (ClusterSpec, u64) {
    let d = scale.div();
    let m = scale.mult();
    let items = 10_000 * m / d;
    let spec = ClusterSpec {
        seed,
        clients: (100 * m / d) as usize,
        shards_per_dc: 2,
        warmup: SimDuration::from_secs(60 / d),
        duration: SimDuration::from_secs(180 / d),
        ..ClusterSpec::default()
    };
    (spec, items)
}

/// TPC-W initial rows at `items` scale.
pub fn tpcw_data(items: u64, seed: u64) -> Vec<(Key, Row)> {
    let cfg = TpcwConfig::with_scale(items, 0);
    tpcw::initial_data(&cfg, seed)
}

/// A TPC-W workload factory; `commutative` selects delta versus physical
/// stock updates in Buy Confirm.
pub fn tpcw_factory(
    items: u64,
    commutative: bool,
) -> impl FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> {
    move |client, _dc, _placement| {
        let mut cfg = TpcwConfig::with_scale(items, client as u64);
        cfg.commutative = commutative;
        Box::new(TpcwWorkload::new(cfg))
    }
}

/// A micro-benchmark workload factory from a config template; per-client
/// master-locality wiring (Figure 7) happens here.
pub fn micro_factory(
    template: MicroConfig,
    local_fraction: Option<f64>,
) -> impl FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> {
    move |_client, dc, placement| {
        let mut cfg = template.clone();
        if let Some(fraction) = local_fraction {
            let p = Arc::clone(placement);
            cfg.locality = Some(mdcc_workloads::micro::LocalityConfig {
                local_fraction: fraction,
                my_dc: dc.0,
                master_dc_of: Arc::new(move |key: &Key| {
                    use mdcc_common::Placement as _;
                    p.master_dc(key).0
                }),
            });
        }
        Box::new(MicroWorkload::new(cfg))
    }
}

/// Puts all clients in DC 0 (with the Megastore* master / the Figure 8
/// vantage point), as the paper does.
pub fn all_in_us_west(spec: &mut ClusterSpec) {
    spec.client_placement = ClientPlacement::AllIn(DcId(0));
}

/// One-line bytes-on-wire summary of a run: total by traffic class plus
/// wire cost per committed transaction — bytes *and* frames (the
/// per-message service floor makes frames/commit the queueing
/// figure-of-merit envelope coalescing optimizes).
pub fn net_summary(report: &mdcc_cluster::Report) -> String {
    const MB: f64 = 1_000_000.0;
    let n = report.net;
    let commits = report.committed_count().max(1);
    let fsyncs = match report.fsyncs_per_commit() {
        Some(f) if n.fsyncs > 0 => format!(", {f:.2} fsyncs/commit"),
        _ => String::new(),
    };
    format!(
        "wire: {:.2} MB (protocol {:.2} / read {:.2} / sync {:.2} / repair {:.2}), \
         {:.0} bytes/commit, {:.1} msgs/commit ({:.1} protocol; {:.2}x coalesced), \
         {} repair rounds{fsyncs}",
        n.bytes_sent as f64 / MB,
        n.protocol.bytes as f64 / MB,
        n.read.bytes as f64 / MB,
        n.sync.bytes as f64 / MB,
        n.repair.bytes as f64 / MB,
        report.bytes_per_commit().unwrap_or(f64::NAN),
        report.msgs_per_commit().unwrap_or(f64::NAN),
        n.protocol.msgs as f64 / commits as f64,
        n.payload_msgs as f64 / n.msgs_sent.max(1) as f64,
        n.repair.msgs / 2,
    )
}

/// Parses the shared tracing flags from the process arguments:
/// `--trace` turns span collection on for the driver's MDCC runs,
/// `--trace-out=PATH` additionally names a Chrome-trace JSON export
/// target (and implies `--trace`). Returns `(config, export path)`.
pub fn trace_flags() -> (TraceConfig, Option<PathBuf>) {
    let mut out = None;
    let mut on = false;
    for arg in std::env::args() {
        if arg == "--trace" {
            on = true;
        } else if let Some(v) = arg.strip_prefix("--trace-out=") {
            out = Some(PathBuf::from(v));
            on = true;
        }
    }
    let cfg = if on {
        TraceConfig::on()
    } else {
        TraceConfig::off()
    };
    (cfg, out)
}

/// One-line host-cost summary of a run: wall-clock runtime, event rate
/// and engine width — printed by every driver so harness-level perf
/// regressions show up in the logs, not just sim-time results.
pub fn perf_summary(report: &Report) -> String {
    let p = report.perf;
    format!(
        "host: {:.2}s wall, {} events, {:.0} events/sec, {} thread{}",
        p.wall.as_secs_f64(),
        p.events,
        p.events_per_sec(),
        p.threads.max(1),
        if p.threads > 1 { "s" } else { "" }
    )
}

/// Collects each run's host-cost sample over one driver invocation and
/// writes them as machine-readable JSON under `results/perf_<fig>.json`
/// — record-only output for tracking engine throughput across commits;
/// nothing reads it back.
#[derive(Debug, Default)]
pub struct PerfLog {
    runs: Vec<(String, RunPerf, Option<f64>)>,
}

impl PerfLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished run under `label` (host cost plus the run's
    /// fsyncs/commit, the group-commit figure-of-merit).
    pub fn record(&mut self, label: impl Into<String>, report: &Report) {
        self.runs
            .push((label.into(), report.perf, report.fsyncs_per_commit()));
    }

    /// Writes the collected samples to `results/perf_<fig>.json`
    /// (hand-rolled JSON — the workspace has no serde) and echoes the
    /// path.
    pub fn save(&self, fig: &str, scale: Scale) {
        let dir = PathBuf::from("results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("perf_{fig}.json"));
        let total_wall: f64 = self.runs.iter().map(|(_, p, _)| p.wall.as_secs_f64()).sum();
        let total_events: u64 = self.runs.iter().map(|(_, p, _)| p.events).sum();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"fig\": {},\n", json_str(fig)));
        out.push_str(&format!("  \"scale\": \"{}\",\n", scale.name()));
        out.push_str(&meta_json(scale));
        out.push_str("  \"runs\": [\n");
        for (i, (label, p, fsyncs)) in self.runs.iter().enumerate() {
            let fsyncs = match fsyncs {
                Some(f) => format!("{f:.4}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"label\": {}, \"wall_secs\": {:.6}, \"events\": {}, \
                 \"events_per_sec\": {:.1}, \"threads\": {}, \
                 \"fsyncs_per_commit\": {}}}{}\n",
                json_str(label),
                p.wall.as_secs_f64(),
                p.events,
                p.events_per_sec(),
                p.threads.max(1),
                fsyncs,
                if i + 1 < self.runs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"total_wall_secs\": {total_wall:.6},\n"));
        out.push_str(&format!("  \"total_events\": {total_events},\n"));
        out.push_str(&format!(
            "  \"total_events_per_sec\": {:.1}\n",
            if total_wall > 0.0 {
                total_events as f64 / total_wall
            } else {
                0.0
            }
        ));
        out.push_str("}\n");
        fs::write(&path, out).expect("write perf json");
        println!("# wrote {}", path.display());
    }
}

/// The run-metadata JSON fragment stamped into every `perf_<fig>.json`:
/// scale, the parallel-engine flag, the repository's `git describe`
/// (`"unknown"` when git is unavailable), the driver's own argument
/// list, and every `MDCC_*` environment knob in effect — enough to
/// reproduce the exact invocation behind any recorded sample.
fn meta_json(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"scale\": \"{}\",\n", scale.name()));
    out.push_str(&format!("    \"parallel\": {},\n", parallel_flag()));
    out.push_str(&format!("    \"git\": {},\n", json_str(&git_describe())));
    let args: Vec<String> = std::env::args().skip(1).map(|a| json_str(&a)).collect();
    out.push_str(&format!("    \"args\": [{}],\n", args.join(", ")));
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("MDCC_"))
        .collect();
    knobs.sort();
    let knobs: Vec<String> = knobs
        .iter()
        .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
        .collect();
    out.push_str(&format!("    \"env\": {{{}}}\n", knobs.join(", ")));
    out.push_str("  },\n");
    out
}

/// `git describe --always --dirty --tags` of the working tree, or
/// `"unknown"` when git (or the repository) is unavailable — results
/// directories travel, so the stamp must never fail the driver.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal JSON string quoting (labels are ASCII identifiers; quote and
/// backslash escapes keep the output valid regardless).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Prints the per-phase latency anatomy of a traced run; quiet for
/// untraced reports (every driver calls this unconditionally).
pub fn print_anatomy(label: &str, report: &Report) {
    if let Some(anatomy) = report.anatomy() {
        println!("# {label} — latency anatomy (sim-time, per phase):");
        print!("{anatomy}");
    }
}

/// Prints the hottest `top` nodes of the event-loop profile: events
/// handled, sim busy time and (when `TraceConfig::profile` was set)
/// host wall time per node.
pub fn print_profile(report: &Report, top: usize) {
    if report.profile.is_empty() {
        return;
    }
    println!(
        "# event-loop profile — top {} of {} nodes by sim busy time:",
        top.min(report.profile.len()),
        report.profile.len()
    );
    println!(
        "#   {:<6} {:>10} {:>14} {:>12}",
        "node", "events", "sim busy ms", "host ms"
    );
    for entry in report.profile.iter().take(top) {
        println!(
            "#   {:<6} {:>10} {:>14.3} {:>12.3}",
            entry.node.to_string(),
            entry.events,
            entry.sim_busy.as_millis_f64(),
            entry.wall.as_secs_f64() * 1e3,
        );
    }
}

/// Writes a traced run's Chrome-trace JSON (loadable in Perfetto /
/// `chrome://tracing`) to `path` and echoes what it wrote.
pub fn export_trace(report: &Report, path: &Path) {
    let Some(trace) = &report.trace else {
        eprintln!("# trace export requested but the run was not traced");
        return;
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fs::create_dir_all(dir);
        }
    }
    fs::write(path, trace.to_chrome_json()).expect("write trace file");
    println!(
        "# wrote {} ({} spans, {} counter samples)",
        path.display(),
        trace.spans.len(),
        trace.counters.len()
    );
}

/// Writes rows as CSV under `results/` and echoes the path.
pub fn save_csv(name: &str, header: &str, rows: &[String]) {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create results file");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    println!("# wrote {}", path.display());
}

/// Formats a CDF as CSV rows.
pub fn cdf_rows(label: &str, cdf: &[(f64, f64)]) -> Vec<String> {
    cdf.iter()
        .map(|(ms, frac)| format!("{label},{ms:.3},{frac:.5}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_all_three_names() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("10x"), Some(Scale::X10));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::parse(""), None);
        for s in [Scale::Quick, Scale::Paper, Scale::X10] {
            assert_eq!(Scale::parse(s.name()), Some(s), "name round-trips");
        }
    }

    #[test]
    fn ten_x_grows_the_deployment_not_the_run() {
        let (spec, items) = tpcw_spec(Scale::X10, 1);
        assert_eq!(spec.clients, 1_000);
        assert_eq!(items, 100_000);
        let (paper, _) = tpcw_spec(Scale::Paper, 1);
        assert_eq!(spec.warmup, paper.warmup);
        assert_eq!(spec.duration, paper.duration);
        let (mspec, mitems) = micro_spec(Scale::X10, 1);
        assert_eq!(mspec.clients, 1_000);
        assert_eq!(mitems, 100_000);
        assert_eq!(mspec.duration, SimDuration::from_secs(180));
    }

    #[test]
    fn perf_json_strings_are_escaped() {
        assert_eq!(json_str("mdcc"), "\"mdcc\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn perf_meta_stamps_scale_parallel_and_git() {
        let meta = meta_json(Scale::Quick);
        assert!(meta.contains("\"scale\": \"quick\""));
        assert!(meta.contains("\"parallel\": "));
        assert!(meta.contains("\"git\": \""));
        assert!(meta.contains("\"args\": ["));
        assert!(meta.contains("\"env\": {"));
        assert!(!git_describe().is_empty(), "describe always yields a stamp");
    }

    #[test]
    fn specs_scale_down_for_quick_runs() {
        let (q, qi) = tpcw_spec(Scale::Quick, 1);
        let (p, pi) = tpcw_spec(Scale::Paper, 1);
        assert!(q.clients < p.clients);
        assert!(qi < pi);
        assert_eq!(p.clients, 100);
        assert_eq!(pi, 10_000);
        assert_eq!(p.shards_per_dc, 4);
    }

    #[test]
    fn catalogs_have_the_stock_constraint() {
        let c = tpcw_catalog();
        let k = tpcw::item_key(1);
        assert_eq!(c.constraints_for(&k).len(), 1);
        let m = micro_catalog();
        let k = micro::item_key(1);
        assert_eq!(m.constraints_for(&k).len(), 1);
    }

    #[test]
    fn micro_spec_matches_paper_defaults() {
        let (spec, items) = micro_spec(Scale::Paper, 3);
        assert_eq!(spec.clients, 100);
        assert_eq!(items, 10_000);
        assert_eq!(spec.shards_per_dc, 2);
        assert_eq!(spec.duration, SimDuration::from_secs(180));
    }
}

//! Figure 7: response times versus master locality (box plots).
//!
//! Transactions pick items whose default master is in the client's own
//! data center with probability {100, 80, 60, 40, 20} % (§5.3.3). The
//! paper's shape: Multi beats MDCC only at (near) 100 % locality; MDCC
//! stays flat because it never needs the master; Multi's variance and
//! maximum grow as masters get remote (queueing behind the record's
//! serialized instances).

use mdcc_bench::{
    micro_catalog, micro_factory, micro_spec, net_summary, parallel_flag, perf_summary, save_csv,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, MdccMode};
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn main() {
    let scale = Scale::from_args();
    let (mut spec, items) = micro_spec(scale, 1007);
    spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 7 — response-time box plots vs master locality");
    for local_pct in [100.0f64, 80.0, 60.0, 40.0, 20.0] {
        // 20 % locality == uniform choice over five DCs; the knob is the
        // fraction of transactions forced local beyond that baseline.
        let forced = ((local_pct - 20.0) / 80.0).clamp(0.0, 1.0);
        for (label, mode, commutative) in [
            ("Multi", MdccMode::Multi, false),
            ("MDCC", MdccMode::Full, true),
        ] {
            let cfg = MicroConfig {
                items,
                commutative,
                ..MicroConfig::default()
            };
            let mut factory = micro_factory(cfg, Some(forced));
            let mut run_spec = spec.clone();
            run_spec.seed = spec.seed + local_pct as u64;
            let (report, _) = run_mdcc(&run_spec, catalog.clone(), &data, &mut factory, mode);
            let b = report.write_boxplot().expect("commits exist");
            println!(
                "locality={local_pct}% {label}: min={:.0} q1={:.0} med={:.0} q3={:.0} max={:.0}",
                b.min, b.q1, b.median, b.q3, b.max
            );
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("{label} loc{local_pct}%"), &report);
            rows.push(format!(
                "{local_pct},{label},{:.1},{:.1},{:.1},{:.1},{:.1}",
                b.min, b.q1, b.median, b.q3, b.max
            ));
        }
    }
    save_csv(
        "fig7_master_locality",
        "locality_pct,config,min_ms,q1_ms,median_ms,q3_ms,max_ms",
        &rows,
    );
    perf.save("fig7", scale);
}

//! Ablation studies beyond the paper's figures: the design knobs
//! DESIGN.md calls out.
//!
//! * **γ sweep** — how long to stay classic after a collision. Small γ
//!   probes fast ballots aggressively (re-collision risk); large γ keeps
//!   paying the master round trip.
//! * **replication sweep** — MDCC latency as the deployment grows from 3
//!   to 7 data centers: the fast quorum `Q_F` grows with `N`, so commits
//!   wait on ever-farther replicas.
//! * **serializability tax** — read-committed-without-lost-updates
//!   versus full serializability (read guards, §4.4) on the same
//!   workload.

use mdcc_bench::{
    micro_catalog, micro_factory, micro_spec, parallel_flag, perf_summary, save_csv, PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode, NetKind};
use mdcc_common::{ProtocolConfig, SimDuration};
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn main() {
    let scale = Scale::from_args();
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();

    // ------------------------------------------------------------------
    // γ sweep under a hot-spot workload (collisions happen).
    // ------------------------------------------------------------------
    println!("# Ablation 1 — γ (classic window after a collision)");
    let (mut spec, items) = micro_spec(scale, 3001);
    spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    for gamma in [5u64, 25, 100, 400] {
        let mut run_spec = spec.clone();
        run_spec.protocol.gamma = gamma;
        let cfg = MicroConfig {
            items,
            hotspot: Some((0.10, 0.9)),
            ..MicroConfig::default()
        };
        let mut factory = micro_factory(cfg, None);
        let (report, stats) = run_mdcc(
            &run_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        let median = report.median_write_ms().unwrap_or(f64::NAN);
        println!(
            "gamma={gamma}: median={median:.0}ms commits={} collisions={} redirects={}",
            report.write_commits(),
            stats.collisions,
            stats.classic_redirects
        );
        println!("#   {}", perf_summary(&report));
        perf.record(format!("gamma {gamma}"), &report);
        rows.push(format!(
            "gamma,{gamma},{median:.1},{},{},{}",
            report.write_commits(),
            stats.collisions,
            stats.classic_redirects
        ));
    }

    // ------------------------------------------------------------------
    // Replication-factor sweep on a uniform network.
    // ------------------------------------------------------------------
    println!("# Ablation 2 — replication factor (uniform 100 ms RTT)");
    for dcs in [3u8, 5, 7] {
        let protocol = ProtocolConfig::for_replication(dcs as usize);
        let d = scale.div();
        let m = scale.mult();
        let run_spec = ClusterSpec {
            seed: 3002,
            dcs,
            clients: (50 * m / d).max(4) as usize,
            shards_per_dc: 1,
            net: NetKind::Uniform { rtt_ms: 100.0 },
            warmup: SimDuration::from_secs(20 / d),
            duration: SimDuration::from_secs(60 / d),
            protocol: protocol.clone(),
            parallel: parallel_flag(),
            ..ClusterSpec::default()
        };
        let cfg = MicroConfig {
            items,
            ..MicroConfig::default()
        };
        let mut factory = micro_factory(cfg, None);
        let (report, _) = run_mdcc(
            &run_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        let median = report.median_write_ms().unwrap_or(f64::NAN);
        println!(
            "N={dcs} (Qc={}, Qf={}): median={median:.0}ms commits={}",
            protocol.classic_quorum,
            protocol.fast_quorum,
            report.write_commits()
        );
        println!("#   {}", perf_summary(&report));
        perf.record(format!("replication N{dcs}"), &report);
        rows.push(format!(
            "replication,{dcs},{median:.1},{},{}",
            protocol.classic_quorum, protocol.fast_quorum
        ));
    }

    // ------------------------------------------------------------------
    // Envelope coalescing: outbox on/off × Nagle flush window.
    // ------------------------------------------------------------------
    println!("# Ablation 4 — envelope coalescing (on/off x flush window)");
    let windows_us: [Option<u64>; 6] = [
        None,
        Some(0),
        Some(500),
        Some(2_000),
        Some(5_000),
        Some(10_000),
    ];
    for window in windows_us {
        let mut run_spec = spec.clone();
        match window {
            None => run_spec.protocol.coalesce = false,
            Some(us) => {
                run_spec.protocol.coalesce = true;
                run_spec.protocol.coalesce_window = SimDuration::from_micros(us);
            }
        }
        let cfg = MicroConfig {
            items,
            ..MicroConfig::default()
        };
        let mut factory = micro_factory(cfg, None);
        let (report, _) = run_mdcc(
            &run_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        let label = match window {
            None => "off".to_owned(),
            Some(us) => format!("{us}us"),
        };
        let median = report.median_write_ms().unwrap_or(f64::NAN);
        let commits = report.write_commits();
        let mpc = report.msgs_per_commit().unwrap_or(f64::NAN);
        let bpc = report.bytes_per_commit().unwrap_or(f64::NAN);
        let n = report.net;
        let proto_mpc = n.protocol.msgs as f64 / commits.max(1) as f64;
        let factor = n.payload_msgs as f64 / n.msgs_sent.max(1) as f64;
        println!(
            "coalesce={label}: median={median:.0}ms commits={commits} \
             msgs/commit={mpc:.1} (protocol {proto_mpc:.1}) bytes/commit={bpc:.0} \
             coalesce-factor={factor:.2}x"
        );
        println!("#   {}", perf_summary(&report));
        perf.record(format!("coalesce {label}"), &report);
        rows.push(format!(
            "coalesce,{label},{median:.1},{mpc:.1},{proto_mpc:.1},{bpc:.0}"
        ));
    }

    // ------------------------------------------------------------------
    // Serializability tax: the same buy workload with read guards.
    // ------------------------------------------------------------------
    println!("# Ablation 3 — read committed vs serializable (read guards)");
    for serializable in [false, true] {
        let cfg = MicroConfig {
            items,
            serializable_reads: serializable,
            ..MicroConfig::default()
        };
        let mut factory = micro_factory(cfg, None);
        let (report, stats) = run_mdcc(&spec, catalog.clone(), &data, &mut factory, MdccMode::Full);
        let label = if serializable {
            "serializable"
        } else {
            "read-committed"
        };
        let median = report.median_write_ms().unwrap_or(f64::NAN);
        println!(
            "{label}: median={median:.0}ms commits={} aborts={} fast={}",
            report.write_commits(),
            report.write_aborts(),
            stats.fast_commits
        );
        println!("#   {}", perf_summary(&report));
        perf.record(format!("isolation {label}"), &report);
        rows.push(format!(
            "isolation,{label},{median:.1},{},{}",
            report.write_commits(),
            report.write_aborts()
        ));
    }

    save_csv("ablations", "study,x,median_ms,a,b,c", &rows);
    perf.save("ablation", scale);
}

//! Figure 4: TPC-W throughput scalability.
//!
//! Scale-out series: (50 clients, SF 5 000, 2 nodes/DC), (100, 10 000, 4)
//! and (200, 20 000, 8) — data per storage node fixed at SF 2 500 and the
//! client:node ratio constant, exactly like §5.2.2. The paper's shape:
//! QW-3 ≳ QW-4 ≳ MDCC (within 10 % at 200 clients) > 2PC ≫ Megastore*
//! (low and flat).

use mdcc_bench::{
    all_in_us_west, net_summary, parallel_flag, perf_summary, save_csv, tpcw_catalog, tpcw_data,
    tpcw_factory, PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, run_megastore, run_qw, run_tpc, ClusterSpec, MdccMode};
use mdcc_common::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let d = scale.div();
    let m = scale.mult();
    let parallel = parallel_flag();
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 4 — TPC-W transactions per second vs concurrent clients");
    for (clients, items, shards) in [
        (50u64, 5_000u64, 2usize),
        (100, 10_000, 4),
        (200, 20_000, 8),
    ] {
        let clients = (clients * m / d).max(2) as usize;
        let items = items * m / d;
        let spec = ClusterSpec {
            seed: 1004 + clients as u64,
            clients,
            shards_per_dc: shards,
            warmup: SimDuration::from_secs(30 / d),
            duration: SimDuration::from_secs(90 / d),
            parallel,
            ..ClusterSpec::default()
        };
        let catalog = tpcw_catalog();
        let data = tpcw_data(items, 7);

        for k in [3usize, 4usize] {
            let mut factory = tpcw_factory(items, true);
            let report = run_qw(&spec, catalog.clone(), &data, &mut factory, k);
            let tps = report.throughput_tps();
            println!("QW-{k} clients={clients}: {tps:.0} tps");
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("QW-{k} c{clients}"), &report);
            rows.push(format!("QW-{k},{clients},{tps:.1}"));
        }
        {
            let mut factory = tpcw_factory(items, true);
            let (report, _) = run_mdcc(&spec, catalog.clone(), &data, &mut factory, MdccMode::Full);
            let tps = report.throughput_tps();
            println!("MDCC clients={clients}: {tps:.0} tps");
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("MDCC c{clients}"), &report);
            rows.push(format!("MDCC,{clients},{tps:.1}"));
        }
        {
            let mut factory = tpcw_factory(items, true);
            let report = run_tpc(&spec, catalog.clone(), &data, &mut factory);
            let tps = report.throughput_tps();
            println!("2PC clients={clients}: {tps:.0} tps");
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("2PC c{clients}"), &report);
            rows.push(format!("2PC,{clients},{tps:.1}"));
        }
        {
            let mut mega_spec = spec.clone();
            all_in_us_west(&mut mega_spec);
            let mut factory = tpcw_factory(items, true);
            let (report, _) = run_megastore(&mega_spec, catalog, &data, &mut factory);
            let tps = report.throughput_tps();
            println!("Megastore* clients={clients}: {tps:.0} tps");
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("Megastore* c{clients}"), &report);
            rows.push(format!("Megastore*,{clients},{tps:.1}"));
        }
    }
    save_csv("fig4_tpcw_scaling", "protocol,clients,tps", &rows);
    perf.save("fig4", scale);
}

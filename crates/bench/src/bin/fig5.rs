//! Figure 5: micro-benchmark response-time CDFs across MDCC design
//! points.
//!
//! Configurations (§5.3.1): **MDCC** (full: fast + commutative), **Fast**
//! (fast ballots, no commutative support), **Multi** (every proposal via
//! the record's master, Multi-Paxos) and **2PC**. Paper medians: 245,
//! 276, 388 and 543 ms.

use mdcc_bench::{
    cdf_rows, export_trace, micro_catalog, micro_factory, micro_spec, net_summary, parallel_flag,
    perf_summary, print_anatomy, print_profile, save_csv, PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, run_tpc, MdccMode, Report};
use mdcc_common::SimDuration;
use mdcc_trace::TraceConfig;
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn summarize(label: &str, report: &Report) -> String {
    format!(
        "{label}: median={:.0}ms p90={:.0}ms commits={} aborts={}\n#   {}",
        report.median_write_ms().unwrap_or(f64::NAN),
        report.write_percentile_ms(90.0).unwrap_or(f64::NAN),
        report.write_commits(),
        report.write_aborts(),
        net_summary(report),
    ) + &format!("\n#   {}", perf_summary(report))
}

fn main() {
    let scale = Scale::from_args();
    let (_, trace_out) = mdcc_bench::trace_flags();
    let (mut spec, items) = micro_spec(scale, 1005);
    spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 5 — micro-benchmark response-time CDFs");
    println!("# paper medians: MDCC 245ms < Fast 276ms < Multi 388ms < 2PC 543ms");

    let base = MicroConfig {
        items,
        ..MicroConfig::default()
    };

    let configs: [(&str, MdccMode, bool); 3] = [
        ("MDCC", MdccMode::Full, true),
        ("Fast", MdccMode::Fast, false),
        ("Multi", MdccMode::Multi, false),
    ];
    for (label, mode, commutative) in configs {
        let mut cfg = base.clone();
        cfg.commutative = commutative;
        let mut factory = micro_factory(cfg, None);
        let (report, stats) = run_mdcc(&spec, catalog.clone(), &data, &mut factory, mode);
        println!("{}", summarize(label, &report));
        perf.record(label, &report);
        println!(
            "#   internals: fast_commits={} collisions={} redirects={} timeouts={}",
            stats.fast_commits, stats.collisions, stats.classic_redirects, stats.timeouts
        );
        rows.extend(cdf_rows(label, &report.write_cdf(200)));
    }

    {
        // The envelope-coalescing baseline: full MDCC on per-message
        // frames (ProtocolConfig::coalesce = false), the PR 3 transport.
        // The msgs/commit gap against "MDCC" above is the outbox win.
        let mut uncoalesced_spec = spec.clone();
        uncoalesced_spec.protocol.coalesce = false;
        let mut factory = micro_factory(base.clone(), None);
        let (report, _) = run_mdcc(
            &uncoalesced_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        println!("{}", summarize("MDCC (no coalesce)", &report));
        perf.record("MDCC-nocoalesce", &report);
        rows.extend(cdf_rows("MDCC-nocoalesce", &report.write_cdf(200)));
    }

    {
        // Latency-anatomy runs: full MDCC and the Multi (all-classic)
        // ablation, durable with a 1 ms fsync, fully traced — the fast
        // path versus classic breakdown tabulated in EXPERIMENTS.md.
        // Separate runs so the headline schedules above stay
        // byte-identical to untraced builds.
        let mut anatomy_spec = spec.clone();
        anatomy_spec.durability = true;
        anatomy_spec.wal_fsync = SimDuration::from_millis(1);
        anatomy_spec.trace = TraceConfig {
            profile: true,
            ..TraceConfig::on()
        };
        let mut factory = micro_factory(base.clone(), None);
        let (report, _) = run_mdcc(
            &anatomy_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        println!(
            "{}",
            summarize("MDCC (anatomy: durable, 1ms fsync)", &report)
        );
        print_anatomy("MDCC full (fast path)", &report);
        print_profile(&report, 5);
        let path = trace_out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("results/fig5_mdcc_trace.json"));
        export_trace(&report, &path);

        let mut factory = micro_factory(base.clone(), None);
        let (multi_report, _) = run_mdcc(
            &anatomy_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Multi,
        );
        print_anatomy("Multi (all classic)", &multi_report);
    }

    {
        let mut factory = micro_factory(base, None);
        let report = run_tpc(&spec, catalog, &data, &mut factory);
        println!("{}", summarize("2PC", &report));
        perf.record("2PC", &report);
        rows.extend(cdf_rows("2PC", &report.write_cdf(200)));
    }

    save_csv("fig5_micro_cdf", "config,latency_ms,fraction", &rows);
    perf.save("fig5", scale);
}

//! Figure 6: commits/aborts versus conflict rate (hot-spot size).
//!
//! The micro-benchmark accesses a hot spot with 90 % probability; the
//! hot-spot size sweeps {2, 5, 10, 20, 50, 90} % of the data (§5.3.2).
//! Paper shape: at large hot spots (low conflict) every design commits
//! nearly everything, with MDCC committing the most; as the hot spot
//! shrinks, Fast collapses below Multi (collision resolution needs 3
//! round trips), and at 2 % both fast-ballot designs do very poorly
//! compared to Multi.

use mdcc_bench::{
    micro_catalog, micro_factory, micro_spec, net_summary, parallel_flag, perf_summary, save_csv,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, run_tpc, MdccMode};
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn main() {
    let scale = Scale::from_args();
    let (mut spec, items) = micro_spec(scale, 1006);
    spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 6 — commits/aborts for varying hot-spot sizes");
    for hot_pct in [2.0f64, 5.0, 10.0, 20.0, 50.0, 90.0] {
        let base = MicroConfig {
            items,
            hotspot: Some((hot_pct / 100.0, 0.9)),
            ..MicroConfig::default()
        };
        let configs: [(&str, Option<MdccMode>, bool); 4] = [
            ("2PC", None, true),
            ("Multi", Some(MdccMode::Multi), false),
            ("Fast", Some(MdccMode::Fast), false),
            ("MDCC", Some(MdccMode::Full), true),
        ];
        for (label, mode, commutative) in configs {
            let mut cfg = base.clone();
            cfg.commutative = commutative;
            let mut factory = micro_factory(cfg, None);
            let mut run_spec = spec.clone();
            run_spec.seed = spec.seed + hot_pct as u64;
            let report = match mode {
                Some(m) => run_mdcc(&run_spec, catalog.clone(), &data, &mut factory, m).0,
                None => run_tpc(&run_spec, catalog.clone(), &data, &mut factory),
            };
            let commits = report.write_commits();
            let aborts = report.write_aborts();
            println!("hotspot={hot_pct}% {label}: commits={commits} aborts={aborts}");
            println!(
                "#   {}\n#   {}",
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("{label} hot{hot_pct}%"), &report);
            rows.push(format!("{hot_pct},{label},{commits},{aborts}"));
        }
    }
    save_csv(
        "fig6_conflict_rates",
        "hotspot_pct,config,commits,aborts",
        &rows,
    );
    perf.save("fig6", scale);
}

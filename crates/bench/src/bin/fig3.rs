//! Figure 3: TPC-W write-transaction response-time CDFs.
//!
//! Protocols: QW-3, QW-4 (eventually consistent), MDCC, 2PC, Megastore*
//! (strongly consistent). The paper's medians: 188, 260, 278, 668 and
//! 17 810 ms respectively. Run with `--scale=paper` for the full setup
//! (100 clients, SF 10 000, 1 min warm-up + 2 min measurement).

use mdcc_bench::{
    all_in_us_west, cdf_rows, export_trace, net_summary, parallel_flag, perf_summary,
    print_anatomy, print_profile, save_csv, tpcw_catalog, tpcw_data, tpcw_factory, tpcw_spec,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, run_megastore, run_qw, run_tpc, MdccMode, Report};

/// Regression guard on full-MDCC wire cost at the CI (`--scale=quick`)
/// configuration. Full-cstruct votes measured 4 857 bytes per committed
/// transaction here; delta votes cut that to ~4 400 (TPC-W's mixed
/// workload keeps cstructs thin — the hot-commutative fig5 shows the
/// 5× headline). The run is deterministic at this seed, so the ceiling
/// sits between the two: an accidental re-inflation of vote payloads
/// fails the smoke run while ordinary drift does not.
const MDCC_QUICK_BYTES_PER_COMMIT_CEILING: f64 = 4_600.0;

/// Companion guard on full-MDCC wire *frames* per committed transaction.
/// With envelope coalescing (the default since PR 4) the quick run
/// measures ~12.6 msgs/commit; the PR 3 per-message transport measured
/// ~36. The ceiling sits well above the coalesced figure and far below
/// the uncoalesced one, so losing the outbox (or a regression that
/// re-inflates fan-out) fails the smoke run while ordinary drift does
/// not.
const MDCC_QUICK_MSGS_PER_COMMIT_CEILING: f64 = 16.0;

fn summarize(label: &str, report: &Report) -> String {
    format!(
        "{label}: median={:.0}ms p90={:.0}ms p99={:.0}ms commits={} aborts={} tps={:.0}\n#   {}",
        report.median_write_ms().unwrap_or(f64::NAN),
        report.write_percentile_ms(90.0).unwrap_or(f64::NAN),
        report.write_percentile_ms(99.0).unwrap_or(f64::NAN),
        report.write_commits(),
        report.write_aborts(),
        report.throughput_tps(),
        net_summary(report),
    ) + &format!("\n#   {}", perf_summary(report))
}

fn main() {
    let scale = Scale::from_args();
    let (trace_cfg, trace_out) = mdcc_bench::trace_flags();
    let (mut spec, items) = tpcw_spec(scale, 1003);
    spec.parallel = parallel_flag();
    let catalog = tpcw_catalog();
    let data = tpcw_data(items, 7);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 3 — TPC-W write transaction response times (CDF)");
    println!(
        "# paper medians: QW-3 188ms < QW-4 260ms < MDCC 278ms < 2PC 668ms << Megastore* 17810ms"
    );

    for k in [3usize, 4usize] {
        let mut factory = tpcw_factory(items, true);
        let report = run_qw(&spec, catalog.clone(), &data, &mut factory, k);
        let label = format!("QW-{k}");
        println!("{}", summarize(&label, &report));
        perf.record(&label, &report);
        rows.extend(cdf_rows(&label, &report.write_cdf(200)));
    }

    {
        // The MDCC run is traced at quick (CI) scale by default and at
        // any scale on `--trace` / `--trace-out=`; tracing is proven
        // outcome-identical, so the guards below still bind.
        let mut mdcc_spec = spec.clone();
        mdcc_spec.trace = if trace_cfg.enabled || scale == Scale::Quick {
            mdcc_trace::TraceConfig::on()
        } else {
            trace_cfg
        };
        let mut factory = tpcw_factory(items, true);
        let (report, stats) = run_mdcc(
            &mdcc_spec,
            catalog.clone(),
            &data,
            &mut factory,
            MdccMode::Full,
        );
        println!("{}", summarize("MDCC", &report));
        perf.record("MDCC", &report);
        print_anatomy("MDCC (TPC-W)", &report);
        print_profile(&report, 5);
        if let Some(path) = &trace_out {
            export_trace(&report, path);
        }
        println!(
            "# MDCC internals: fast_commits={} collisions={} redirects={} repair_pulls={}",
            stats.fast_commits, stats.collisions, stats.classic_redirects, stats.repair_pulls
        );
        rows.extend(cdf_rows("MDCC", &report.write_cdf(200)));
        if scale == Scale::Quick {
            let bpc = report.bytes_per_commit().unwrap_or(f64::INFINITY);
            if bpc > MDCC_QUICK_BYTES_PER_COMMIT_CEILING {
                eprintln!(
                    "REGRESSION: full-MDCC bytes/commit {bpc:.0} exceeds the checked-in \
                     ceiling {MDCC_QUICK_BYTES_PER_COMMIT_CEILING:.0} — vote payloads \
                     re-inflated?"
                );
                std::process::exit(1);
            }
            println!(
                "# bytes/commit guard: {bpc:.0} <= ceiling {MDCC_QUICK_BYTES_PER_COMMIT_CEILING:.0}"
            );
            let mpc = report.msgs_per_commit().unwrap_or(f64::INFINITY);
            if mpc > MDCC_QUICK_MSGS_PER_COMMIT_CEILING {
                eprintln!(
                    "REGRESSION: full-MDCC msgs/commit {mpc:.1} exceeds the checked-in \
                     ceiling {MDCC_QUICK_MSGS_PER_COMMIT_CEILING:.1} — envelope \
                     coalescing lost or fan-out re-inflated?"
                );
                std::process::exit(1);
            }
            println!(
                "# msgs/commit guard: {mpc:.1} <= ceiling {MDCC_QUICK_MSGS_PER_COMMIT_CEILING:.1}"
            );
        }
    }

    {
        let mut factory = tpcw_factory(items, true);
        let report = run_tpc(&spec, catalog.clone(), &data, &mut factory);
        println!("{}", summarize("2PC", &report));
        perf.record("2PC", &report);
        rows.extend(cdf_rows("2PC", &report.write_cdf(200)));
    }

    {
        // The paper plays in Megastore*'s favour: master and all clients
        // in US-West.
        let mut mega_spec = spec.clone();
        all_in_us_west(&mut mega_spec);
        let mut factory = tpcw_factory(items, true);
        let (report, stats) = run_megastore(&mega_spec, catalog, &data, &mut factory);
        println!("{}", summarize("Megastore*", &report));
        perf.record("Megastore*", &report);
        println!(
            "# Megastore* internals: committed={} aborted={} max_queue={}",
            stats.committed, stats.aborted, stats.max_queue
        );
        rows.extend(cdf_rows("Megastore*", &report.write_cdf(200)));
    }

    save_csv("fig3_tpcw_cdf", "protocol,latency_ms,fraction", &rows);
    perf.save("fig3", scale);
}

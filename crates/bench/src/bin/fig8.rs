//! Figure 8: response-time time series across a data-center outage.
//!
//! 100 clients in US-West run the micro-benchmark; about two minutes in,
//! US-East — the data center closest to the clients — stops receiving
//! messages (§5.3.4). The paper: average latency steps from 173.5 ms to
//! 211.7 ms and the system keeps committing throughout. Ours should show
//! the same step: the fast quorum's fourth response now comes from a
//! farther region.

use mdcc_bench::{
    all_in_us_west, micro_catalog, micro_factory, micro_spec, net_summary, parallel_flag,
    perf_summary, save_csv, PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, MdccMode};
use mdcc_common::{DcId, SimDuration};
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn main() {
    let scale = Scale::from_args();
    let (mut spec, items) = micro_spec(scale, 1008);
    spec.parallel = parallel_flag();
    all_in_us_west(&mut spec);
    // Measure from t=0 (short warm-up) so the pre-failure baseline is
    // long; the failure lands mid-window.
    spec.warmup = SimDuration::from_secs(5);
    let total = spec.duration.as_secs_f64() as u64;
    let fail_at = SimDuration::from_secs(5 + total / 2);
    spec.fail_dcs = vec![(fail_at, DcId(1))]; // US-East.
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let cfg = MicroConfig {
        items,
        ..MicroConfig::default()
    };
    let mut factory = micro_factory(cfg, None);
    let (report, _) = run_mdcc(&spec, catalog, &data, &mut factory, MdccMode::Full);

    println!("# Figure 8 — committed-transaction latency across a US-East outage");
    let bucket = SimDuration::from_secs(5);
    let series = report.write_time_series(bucket);
    let fail_secs = 5.0 + total as f64 / 2.0;
    let mut rows = Vec::new();
    let (mut before_sum, mut before_n) = (0.0, 0usize);
    let (mut after_sum, mut after_n) = (0.0, 0usize);
    for (t, avg, count) in &series {
        rows.push(format!("{t:.0},{avg:.1},{count}"));
        if *count > 0 {
            if *t < fail_secs {
                before_sum += avg * *count as f64;
                before_n += count;
            } else {
                after_sum += avg * *count as f64;
                after_n += count;
            }
        }
    }
    let before = before_sum / before_n.max(1) as f64;
    let after = after_sum / after_n.max(1) as f64;
    println!("failure at t={fail_secs:.0}s (US-East stops receiving)");
    println!("avg latency before: {before:.1} ms (paper: 173.5 ms)");
    println!("avg latency after:  {after:.1} ms (paper: 211.7 ms)");
    println!(
        "commits before/after: {}/{} — availability preserved",
        before_n, after_n
    );
    println!("# {}\n# {}", net_summary(&report), perf_summary(&report));
    save_csv("fig8_dc_failure", "t_secs,avg_latency_ms,commits", &rows);
    let mut perf = PerfLog::new();
    perf.record("MDCC outage", &report);
    perf.save("fig8", scale);
}

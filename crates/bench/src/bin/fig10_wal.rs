//! Figure 10: group-commit WAL throughput under an fsync-latency sweep.
//!
//! The commit path of a durable deployment is fsync-bound: every
//! storage-node state change WAL-appends, and each append charges the
//! node `fsync_latency` of busy time. Group commit
//! (`ProtocolConfig::group_commit`, the default) batches all appends a
//! node accumulates within `group_commit_window` under one covering
//! fsync, with acks held until that fsync fires — N transactions pay
//! one latency instead of N, exactly as envelope coalescing amortized
//! the per-message service floor. This driver sweeps `fsync_latency`
//! with group commit on and off and reports commits/sec, fsyncs per
//! committed transaction, and the speedup; at paper scale it closes
//! with a million-record bulk load showing the log-structured storage
//! backend keeping the materialized working set bounded.

use mdcc_bench::{
    export_trace, micro_catalog, net_summary, parallel_flag, perf_summary, print_anatomy, save_csv,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode, Report};
use mdcc_common::{DcId, Key, ProtocolConfig, Row, SimDuration, StorageKind};
use mdcc_storage::RecordStore;
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, STOCK};
use mdcc_workloads::Workload;

/// Regression guard on the group-commit run at 1 ms fsync latency in
/// the CI (`--scale=quick`) configuration. Per-append fsync measures
/// one fsync per WAL append — ~38 fsyncs per committed transaction on
/// this workload (3-item transactions, five replicas). Group commit
/// measures ~6.4. The run is deterministic at this seed, so the
/// ceiling sits between the two: losing the commit buffer (or a
/// regression that splinters batches) fails the smoke run while
/// ordinary drift does not.
const MDCC_FSYNCS_PER_COMMIT_CEILING: f64 = 8.0;

const ITEMS: u64 = 500;

/// The durability-bound deployment: one storage shard per DC puts
/// every replica of every record on the same five nodes, so each
/// node's WAL sees every transaction — the load the per-node commit
/// buffer exists for. Stock is effectively infinite: only the
/// durability discipline differs between runs, so commit outcomes are
/// comparable point to point.
fn wal_spec(scale: Scale, seed: u64, fsync: SimDuration, group_commit: bool) -> ClusterSpec {
    let d = scale.div();
    let m = scale.mult();
    let s = SimDuration::from_secs;
    let mut spec = ClusterSpec {
        seed,
        clients: (100 * m) as usize,
        shards_per_dc: 1,
        warmup: s(10 / d),
        duration: s(40 / d),
        drain: s(10),
        durability: true,
        wal_fsync: fsync,
        ..ClusterSpec::default()
    };
    spec.protocol.group_commit = group_commit;
    spec
}

fn run_wal(spec: &ClusterSpec) -> Report {
    let data: Vec<(Key, Row)> = (0..ITEMS)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect();
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, micro_catalog(), &data, &mut factory, MdccMode::Full).0
}

fn summarize(label: &str, report: &Report) -> String {
    format!(
        "{label}: tps={:.0} commits={} median={:.0}ms p99={:.0}ms\n#   {}\n#   {}",
        report.throughput_tps(),
        report.write_commits(),
        report.median_write_ms().unwrap_or(f64::NAN),
        report.write_percentile_ms(99.0).unwrap_or(f64::NAN),
        net_summary(report),
        perf_summary(report),
    )
}

/// Bulk-loads `records` rows through the log-structured backend and
/// prints how much of the store stayed materialized — the RSS story:
/// encoded segments grow with data volume, the record cache does not.
fn log_structured_demo(records: u64) {
    let cfg = ProtocolConfig {
        storage: StorageKind::LogStructured,
        ..ProtocolConfig::default()
    };
    let cache_cap = cfg.log_cache_records;
    let mut store = RecordStore::new(cfg, micro_catalog());
    let start = std::time::Instant::now();
    for i in 0..records {
        store.load(item_key(i), Row::new().with(STOCK, 100));
    }
    let stats = store.engine_stats();
    println!(
        "# log-structured bulk load: {} records in {:.2}s — {} materialized \
         (cache cap {}), {:.1} MB live segments ({} segments, {} evictions, \
         {} compactions)",
        records,
        start.elapsed().as_secs_f64(),
        store.materialized(),
        cache_cap,
        stats.live_bytes as f64 / 1e6,
        stats.segments,
        stats.evictions,
        stats.compactions,
    );
    assert!(
        store.materialized() <= cache_cap,
        "materialized records must stay bounded by the cache cap"
    );
}

fn main() {
    let scale = Scale::from_args();
    let (trace_cfg, trace_out) = mdcc_bench::trace_flags();
    let parallel = parallel_flag();
    let us = SimDuration::from_micros;
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 10 — WAL group commit: commits/sec vs fsync latency");
    println!("# per-append fsync pays one latency per WAL append; group commit pays one per batch");

    // The no-durability-cost anchor: at zero fsync latency both
    // disciplines are the same machine (group commit is inert).
    {
        let mut spec = wal_spec(scale, 1010, SimDuration::ZERO, true);
        spec.parallel = parallel;
        let report = run_wal(&spec);
        println!("{}", summarize("fsync=0 (free durability)", &report));
        perf.record("fsync0", &report);
        rows.push(format!(
            "0,free,{:.1},{:.4}",
            report.throughput_tps(),
            report.fsyncs_per_commit().unwrap_or(0.0)
        ));
    }

    for fsync_us in [500u64, 1_000, 2_000, 5_000] {
        let mut tps = [0.0f64; 2];
        for (i, group_commit) in [false, true].into_iter().enumerate() {
            let mut spec = wal_spec(scale, 1010, us(fsync_us), group_commit);
            spec.parallel = parallel;
            let traced = group_commit && fsync_us == 1_000;
            if traced && (trace_cfg.enabled || scale == Scale::Quick) {
                spec.trace = mdcc_trace::TraceConfig::on();
            }
            let mode = if group_commit { "group" } else { "per-append" };
            let label = format!("fsync={:.1}ms {mode}", fsync_us as f64 / 1e3);
            let report = run_wal(&spec);
            println!("{}", summarize(&label, &report));
            perf.record(&label, &report);
            tps[i] = report.throughput_tps();
            rows.push(format!(
                "{:.1},{mode},{:.1},{:.4}",
                fsync_us as f64 / 1e3,
                report.throughput_tps(),
                report.fsyncs_per_commit().unwrap_or(0.0)
            ));
            if traced {
                print_anatomy("group commit @1ms", &report);
                if let Some(path) = &trace_out {
                    export_trace(&report, path);
                }
            }
            if traced && scale == Scale::Quick {
                let fpc = report.fsyncs_per_commit().unwrap_or(f64::INFINITY);
                if fpc > MDCC_FSYNCS_PER_COMMIT_CEILING {
                    eprintln!(
                        "REGRESSION: group-commit fsyncs/commit {fpc:.1} exceeds the \
                         checked-in ceiling {MDCC_FSYNCS_PER_COMMIT_CEILING:.1} — \
                         commit buffer lost or batches splintered?"
                    );
                    std::process::exit(1);
                }
                println!(
                    "# fsyncs/commit guard: {fpc:.1} <= ceiling \
                     {MDCC_FSYNCS_PER_COMMIT_CEILING:.1}"
                );
            }
        }
        println!(
            "# fsync={:.1}ms speedup: group commit {:.2}x over per-append ({:.0} vs {:.0} tps)",
            fsync_us as f64 / 1e3,
            tps[1] / tps[0].max(1e-9),
            tps[1],
            tps[0],
        );
    }

    // The storage-engine half of the story: a record count that would
    // hold a million materialized acceptor records under the in-memory
    // backend stays a 4 096-record cache plus encoded segments under
    // the log-structured one.
    let records = match scale {
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
        Scale::X10 => 1_000_000,
    };
    log_structured_demo(records);

    save_csv("fig10_wal", "fsync_ms,mode,tps,fsyncs_per_commit", &rows);
    perf.save("fig10", scale);
}

//! Figure 9 (beyond the paper): bandwidth-constrained WAN sweep.
//!
//! The byte-accurate transport models link bandwidth and directed-link
//! FIFO queueing, so vote fan-out can actually *congest* a constrained
//! WAN instead of teleporting. This driver sweeps inter-DC bandwidth
//! from a 10 Gbit/s backbone down to a 100 Mbit/s WAN for MDCC full and
//! Fast, each with delta votes on and off — the scenario where the
//! Phase2b wire-cost optimization turns into a latency/throughput win,
//! not just a byte count.

use mdcc_bench::{
    micro_catalog, micro_factory, micro_spec, net_summary, parallel_flag, perf_summary, save_csv,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, MdccMode};
use mdcc_workloads::micro::{initial_items, MicroConfig};

/// Swept inter-DC bandwidths: `(label, bytes per second)`. The sweep
/// runs past 100 Mbit/s down into the single-digit megabits because
/// the quick-scale aggregate load (~8 MB/s of full-vote traffic across
/// 20 directed links) only starts queueing when a link drops below a
/// few Mbit/s — which is exactly where full-cstruct votes congest and
/// delta votes do not.
const BANDWIDTHS: [(&str, f64); 5] = [
    ("10Gbit", 1_250_000_000.0),
    ("1Gbit", 125_000_000.0),
    ("100Mbit", 12_500_000.0),
    ("10Mbit", 1_250_000.0),
    ("3Mbit", 375_000.0),
];

fn main() {
    let scale = Scale::from_args();
    let (mut base_spec, items) = micro_spec(scale, 1009);
    base_spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 9 — WAN bandwidth sweep: MDCC full/fast ± delta votes");

    let configs: [(&str, MdccMode, bool, bool); 4] = [
        ("MDCC+delta", MdccMode::Full, true, true),
        ("MDCC", MdccMode::Full, true, false),
        ("Fast+delta", MdccMode::Fast, false, true),
        ("Fast", MdccMode::Fast, false, false),
    ];
    for (bw_label, bytes_per_sec) in BANDWIDTHS {
        for (label, mode, commutative, delta_votes) in configs {
            let mut spec = base_spec.clone();
            spec.inter_dc_bandwidth = Some(bytes_per_sec);
            spec.protocol.delta_votes = delta_votes;
            let cfg = MicroConfig {
                items,
                commutative,
                ..MicroConfig::default()
            };
            let mut factory = micro_factory(cfg, None);
            let (report, stats) = run_mdcc(&spec, catalog.clone(), &data, &mut factory, mode);
            let median = report.median_write_ms().unwrap_or(f64::NAN);
            let p90 = report.write_percentile_ms(90.0).unwrap_or(f64::NAN);
            let commits = report.write_commits();
            let bpc = report.bytes_per_commit().unwrap_or(f64::NAN);
            println!(
                "{bw_label} {label}: median={median:.0}ms p90={p90:.0}ms commits={commits} \
                 repair_pulls={}\n#   {}\n#   {}",
                stats.repair_pulls,
                net_summary(&report),
                perf_summary(&report)
            );
            perf.record(format!("{label} {bw_label}"), &report);
            rows.push(format!(
                "{label},{bw_label},{median:.1},{p90:.1},{commits},{bpc:.0},{},{}",
                stats.repair_pulls,
                report.net.repair.msgs / 2,
            ));
        }
    }
    save_csv(
        "fig9_wan",
        "config,bandwidth,median_ms,p90_ms,commits,bytes_per_commit,repair_pulls,repair_rounds",
        &rows,
    );
    perf.save("fig9_wan", scale);
}

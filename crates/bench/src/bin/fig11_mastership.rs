//! Figure 11 (extension): dynamic mastership under shifting locality.
//!
//! Every data center's clients spend each phase buying items of one
//! shard, and every phase boundary rotates each DC to the next shard —
//! the access pattern record-mastership exists for. Three Multi-Paxos
//! configurations run the same workload:
//!
//! * **floor** — phases never shift and leases migrate once, so every
//!   DC commits through a local master: the latency floor.
//! * **static** — mastership off; masters sit wherever the hash put
//!   them, and most commits pay a full extra WAN round trip.
//! * **dynamic** — mastership on; after each shift the lease follows
//!   the dominant-origin DC within a few heartbeat rounds and latency
//!   returns to the floor.
//!
//! A master-crash drill follows: the initial lease holder of a
//! single-shard deployment is killed mid-tenure and the commit outage
//! (the recovery window) is measured. Two environment guards make the
//! driver CI-enforceable:
//!
//! * `MDCC_ELECTION_ROUNDS_CEILING` — fail if the dynamic run held
//!   more elections than this (a regressed election loop churns).
//! * `MDCC_UNAVAILABILITY_MS_CEILING` — fail if the drill's commit
//!   outage exceeds this many milliseconds.
//!
//! A cold-key drill closes the figure: all clients in one DC, a key
//! pool large enough that nearly every write is a first touch, and the
//! same run twice — `lease_phase1` on (the granted lease ballot is the
//! promise floor, so a cold record's first Phase2a is immediately
//! valid: one WAN round trip) versus off (explicit Phase1a/Phase1b
//! first: two). The first-touch latency CDFs land in
//! `results/fig11_cold_first_touch.csv`, and a third guard makes the
//! optimization CI-enforceable:
//!
//! * `MDCC_COLD_FIRST_COMMIT_RTT_CEILING` — fail if the lease-on run's
//!   median first-touch commit exceeds this many WAN round trips (half
//!   an RTT of slack for the propose hop), or if lease coverage stops
//!   eliminating in-tenure Phase1 rounds (at most a quarter of the off
//!   baseline's may remain). A fully cold record pays no Phase1 at
//!   all; the residue is records first touched before the lease
//!   existed, or contested across the migration, where the warm-record
//!   guard deliberately falls back to a full Phase1 for safety.

use std::sync::Arc;

use mdcc_bench::{
    all_in_us_west, cdf_rows, micro_catalog, net_summary, parallel_flag, perf_summary, save_csv,
    PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, ClusterSpec, FaultPlan, MdccMode, NetKind, Report};
use mdcc_common::{
    DcId, Key, MastershipConfig, Placement as _, Row, SimDuration, SimTime, StaticPlacement,
};
use mdcc_workloads::micro::{item_key, STOCK};
use mdcc_workloads::{ShiftingConfig, ShiftingLocalityWorkload, Workload};

const SHARDS: u32 = 5;

fn base_spec(scale: Scale, seed: u64) -> (ClusterSpec, u64) {
    let d = scale.div();
    let m = scale.mult();
    // Pools sized so keys stay warm (repeat touches keep classic
    // instances open — no per-commit Phase1) while commutative deltas
    // keep concurrent touches conflict-free.
    let items = 2_000 * m / d;
    let spec = ClusterSpec {
        seed,
        dcs: 5,
        shards_per_dc: SHARDS as usize,
        // Migration triggers on a rate-over-window (`migrate_min_rate`
        // per `migrate_window`), so the client pool must stay large
        // enough at every scale for a dominant DC to clear the rate bar.
        clients: ((50 * m / d) as usize).max(50),
        net: NetKind::Uniform { rtt_ms: 100.0 },
        warmup: SimDuration::from_secs(5 / d.min(4)),
        duration: SimDuration::from_secs(40 / d),
        drain: SimDuration::from_secs(6),
        ..ClusterSpec::default()
    };
    (spec, items)
}

/// A shifting-locality factory: each client buys only from its DC's
/// phase shard. `phase_len` at least as long as the run is the
/// never-shifting floor configuration.
fn shifting_factory(
    items: u64,
    phase_len: SimDuration,
) -> impl FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> {
    move |_client, dc, placement| {
        let p = Arc::clone(placement);
        let shards = p.shard_count();
        Box::new(ShiftingLocalityWorkload::new(ShiftingConfig {
            items,
            items_per_txn: 3,
            max_decrement: 3,
            // Commutative deltas: stale reads never abort, so the
            // boxplots measure routing, not conflict retries.
            commutative: true,
            my_dc: dc.0,
            shard_of: Arc::new(move |key: &Key| p.shard_id(key)),
            shards,
            phase_len,
        }))
    }
}

fn run(spec: &ClusterSpec, items: u64, phase_len: SimDuration) -> Report {
    let catalog = micro_catalog();
    // Effectively infinite stock: this figure isolates routing latency,
    // so demarcation exhaustion must never decide an outcome.
    let data: Vec<(Key, Row)> = (0..items)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect();
    let mut factory = shifting_factory(items, phase_len);
    let (report, _) = run_mdcc(spec, catalog, &data, &mut factory, MdccMode::Multi);
    report
}

fn env_ceiling(name: &str) -> Option<u64> {
    std::env::var(name).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}"))
    })
}

fn main() {
    let scale = Scale::from_args();
    let (mut spec, items) = base_spec(scale, 1011);
    spec.parallel = parallel_flag();
    let phase_len = SimDuration::from_secs(4);
    let forever = SimDuration::from_secs(100_000);
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Figure 11 — dynamic mastership vs shifting locality");

    let mut medians = [0.0f64; 3];
    let configs = [
        ("floor", forever, true),
        ("static", phase_len, false),
        ("dynamic", phase_len, true),
    ];
    let mut dynamic_elections = 0u64;
    for (i, (label, phases, mastership)) in configs.iter().enumerate() {
        let mut s = spec.clone();
        s.seed = spec.seed + i as u64;
        if *mastership {
            s.protocol.mastership = MastershipConfig::enabled();
        }
        let report = run(&s, items, *phases);
        let b = report.write_boxplot().expect("commits exist");
        medians[i] = b.median;
        let ms = &report.mastership;
        println!(
            "{label}: med={:.0}ms q3={:.0}ms max={:.0}ms commits={} \
             elections={} leases={} handoffs={} served={} forwarded={} \
             p1_skipped={} p1_covered={}",
            b.median,
            b.q3,
            b.max,
            report.write_commits(),
            ms.elections,
            ms.leases_acquired,
            ms.handoffs,
            ms.served,
            ms.forwarded,
            ms.phase1_skipped,
            ms.phase1_covered,
        );
        println!(
            "#   {}\n#   {}",
            net_summary(&report),
            perf_summary(&report)
        );
        if *label == "dynamic" {
            dynamic_elections = ms.elections;
        }
        perf.record(*label, &report);
        rows.push(format!(
            "{label},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{}",
            b.min, b.q1, b.median, b.q3, b.max, ms.elections, ms.leases_acquired, ms.handoffs
        ));
    }
    println!(
        "# medians: dynamic/floor = {:.2}x, static/floor = {:.2}x",
        medians[2] / medians[0],
        medians[1] / medians[0]
    );
    if let Some(ceiling) = env_ceiling("MDCC_ELECTION_ROUNDS_CEILING") {
        assert!(
            dynamic_elections <= ceiling,
            "dynamic run held {dynamic_elections} elections, ceiling {ceiling}"
        );
        println!("# election guard ok: {dynamic_elections} <= {ceiling}");
    }

    // ------------------------------------------------------------------
    // Master-crash drill: one shard, kill the holder, measure the
    // commit outage.
    // ------------------------------------------------------------------
    let d = scale.div();
    let crash_at = SimDuration::from_secs(8 / d.min(2));
    let mut drill = spec.clone();
    drill.seed = spec.seed + 100;
    drill.shards_per_dc = 1;
    drill.clients = (20 / d as usize).max(5);
    drill.durability = true;
    drill.duration = SimDuration::from_secs(20 / d);
    drill.drain = SimDuration::from_secs(10);
    drill.protocol.mastership = MastershipConfig::enabled();

    // Probe (fault-free, same prefix) for the initial holder's DC.
    let mut probe = drill.clone();
    probe.duration = SimDuration::from_secs(2);
    probe.drain = SimDuration::from_secs(2);
    let holder = run(&probe, items, forever)
        .lease_spans
        .first()
        .map(|l| DcId(l.node.0 as u8))
        .expect("probe run granted a lease");

    drill.faults =
        FaultPlan::new().crash_restart(holder, 0, crash_at, SimDuration::from_secs(6 / d.min(2)));
    let report = run(&drill, items, forever);
    let crash = SimTime::ZERO + crash_at;
    let mut commits: Vec<SimTime> = report
        .records
        .iter()
        .filter(|r| r.committed && r.is_write)
        .map(|r| r.finished)
        .collect();
    commits.sort();
    let before = commits.iter().rev().find(|t| **t <= crash);
    let after = commits.iter().find(|t| **t > crash);
    let window_ms = match (before, after) {
        (Some(b), Some(a)) => (*a - *b).as_micros() as f64 / 1_000.0,
        _ => f64::NAN,
    };
    let cfg = &drill.protocol.mastership;
    println!(
        "drill: master (dc {}) crashed at {:.0}ms, recovery window {window_ms:.0}ms \
         (lease {:.0}ms + heartbeat {:.0}ms), elections={}",
        holder.0,
        crash_at.as_micros() as f64 / 1_000.0,
        cfg.lease_duration.as_micros() as f64 / 1_000.0,
        cfg.heartbeat_interval.as_micros() as f64 / 1_000.0,
        report.mastership.elections,
    );
    perf.record("drill", &report);
    rows.push(format!(
        "drill,,,{window_ms:.1},,,{},{},{}",
        report.mastership.elections, report.mastership.leases_acquired, report.mastership.handoffs
    ));
    if let Some(ceiling) = env_ceiling("MDCC_UNAVAILABILITY_MS_CEILING") {
        assert!(
            window_ms.is_finite() && window_ms <= ceiling as f64,
            "recovery window {window_ms:.0}ms exceeds ceiling {ceiling}ms"
        );
        println!("# unavailability guard ok: {window_ms:.0}ms <= {ceiling}ms");
    }

    // ------------------------------------------------------------------
    // Cold-key drill: lease-carried Phase1, on versus off. All clients
    // in one DC and a key pool sized so ~90% of writes are first
    // touches; dynamic mastership migrates the lease to the clients'
    // DC during warm-up, so the measured window is local-master
    // first-touch commits: one WAN round trip with the lease ballot as
    // the implicit Phase1 promise, two with explicit Phase1.
    // ------------------------------------------------------------------
    let m = scale.mult();
    let cold_items = 32_000 * m / d;
    let mut cold = spec.clone();
    cold.seed = spec.seed + 200;
    cold.shards_per_dc = 1;
    cold.clients = ((20 * m / d) as usize).max(10);
    cold.warmup = SimDuration::from_secs(3);
    cold.duration = SimDuration::from_secs(12 / d.min(2));
    cold.drain = SimDuration::from_secs(8);
    all_in_us_west(&mut cold);
    cold.protocol.mastership = MastershipConfig::enabled();
    let mut cold_off = cold.clone();
    cold_off.protocol.mastership = MastershipConfig {
        lease_phase1: false,
        ..MastershipConfig::enabled()
    };

    let on = run(&cold, cold_items, forever);
    let off = run(&cold_off, cold_items, forever);
    let bon = on.write_boxplot().expect("cold drill committed (on)");
    let boff = off.write_boxplot().expect("cold drill committed (off)");
    for (label, report, b) in [
        ("cold_lease_on", &on, &bon),
        ("cold_lease_off", &off, &boff),
    ] {
        let ms = &report.mastership;
        println!(
            "{label}: med={:.0}ms q3={:.0}ms max={:.0}ms commits={} \
             phase1_skipped={} phase1_covered={} cold_rtts={}",
            b.median,
            b.q3,
            b.max,
            report.write_commits(),
            ms.phase1_skipped,
            ms.phase1_covered,
            ms.cold_first_commit_rtts,
        );
        println!("#   {}", net_summary(report));
        perf.record(label, report);
        rows.push(format!(
            "{label},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{}",
            b.min, b.q1, b.median, b.q3, b.max, ms.elections, ms.leases_acquired, ms.handoffs
        ));
    }
    println!(
        "# cold first-touch medians: off/on = {:.2}x (>= 1.5x required)",
        boff.median / bon.median
    );
    assert!(
        on.mastership.phase1_skipped > 0,
        "lease-carried Phase1 never engaged in the cold drill"
    );
    assert!(
        boff.median >= 1.5 * bon.median,
        "cold first-touch median only improved {:.2}x (off {:.0}ms, on {:.0}ms)",
        boff.median / bon.median,
        boff.median,
        bon.median
    );
    let mut cdf = cdf_rows("lease_phase1_on", &on.write_cdf(200));
    cdf.extend(cdf_rows("lease_phase1_off", &off.write_cdf(200)));
    save_csv("fig11_cold_first_touch", "config,latency_ms,fraction", &cdf);
    if let Some(ceiling) = env_ceiling("MDCC_COLD_FIRST_COMMIT_RTT_CEILING") {
        // The drill's WAN RTT is the Uniform net's 100 ms; half an RTT
        // of slack covers the client->master propose hop and jitter.
        let rtts = bon.median / 100.0;
        assert!(
            rtts <= ceiling as f64 + 0.5,
            "cold first-touch median {rtts:.2} RTTs exceeds ceiling {ceiling}"
        );
        let (covered_on, covered_off) =
            (on.mastership.phase1_covered, off.mastership.phase1_covered);
        assert!(
            covered_on * 4 <= covered_off,
            "lease coverage left {covered_on} in-tenure Phase1 rounds \
             (off baseline ran {covered_off})"
        );
        println!(
            "# cold first-commit guard ok: {rtts:.2} RTTs <= {ceiling} + 0.5, \
             in-tenure Phase1 rounds {covered_on} vs {covered_off} off"
        );
    }

    save_csv(
        "fig11_mastership",
        "config,min_ms,q1_ms,median_ms,q3_ms,max_ms,elections,leases,handoffs",
        &rows,
    );
    perf.save("fig11", scale);
}

//! The medians table: every protocol/configuration median the evaluation
//! text quotes, regenerated in one run.
//!
//! §5.2.1 (TPC-W): QW-3 188 ms, QW-4 260 ms, MDCC 278 ms, 2PC 668 ms,
//! Megastore* 17 810 ms. §5.3.1 (micro): MDCC 245 ms, Fast 276 ms,
//! Multi 388 ms, 2PC 543 ms.

use mdcc_bench::{
    all_in_us_west, micro_catalog, micro_factory, micro_spec, parallel_flag, perf_summary,
    save_csv, tpcw_catalog, tpcw_data, tpcw_factory, tpcw_spec, PerfLog, Scale,
};
use mdcc_cluster::{run_mdcc, run_megastore, run_qw, run_tpc, MdccMode, Report};
use mdcc_workloads::micro::{initial_items, MicroConfig};

fn main() {
    let scale = Scale::from_args();
    let mut rows: Vec<String> = Vec::new();
    let mut perf = PerfLog::new();
    println!("# Medians table (paper §5.2.1 and §5.3.1)");
    println!(
        "{:<22} {:>12} {:>12}",
        "configuration", "median ms", "paper ms"
    );

    // ---------------- TPC-W ----------------
    let (mut spec, items) = tpcw_spec(scale, 2001);
    spec.parallel = parallel_flag();
    let catalog = tpcw_catalog();
    let data = tpcw_data(items, 7);
    let table =
        |name: &str, report: &Report, paper: f64, rows: &mut Vec<String>, perf: &mut PerfLog| {
            let median = report.median_write_ms().unwrap_or(f64::NAN);
            println!(
                "{name:<22} {median:>12.0} {paper:>12.0}   # {}",
                perf_summary(report)
            );
            perf.record(name, report);
            rows.push(format!("{name},{median:.1},{paper}"));
        };

    for (k, paper) in [(3usize, 188.0), (4usize, 260.0)] {
        let mut f = tpcw_factory(items, true);
        let report = run_qw(&spec, catalog.clone(), &data, &mut f, k);
        table(
            &format!("tpcw/QW-{k}"),
            &report,
            paper,
            &mut rows,
            &mut perf,
        );
    }
    {
        let mut f = tpcw_factory(items, true);
        let (report, _) = run_mdcc(&spec, catalog.clone(), &data, &mut f, MdccMode::Full);
        table("tpcw/MDCC", &report, 278.0, &mut rows, &mut perf);
    }
    {
        let mut f = tpcw_factory(items, true);
        let report = run_tpc(&spec, catalog.clone(), &data, &mut f);
        table("tpcw/2PC", &report, 668.0, &mut rows, &mut perf);
    }
    {
        let mut mega_spec = spec.clone();
        all_in_us_west(&mut mega_spec);
        let mut f = tpcw_factory(items, true);
        let (report, _) = run_megastore(&mega_spec, catalog, &data, &mut f);
        table("tpcw/Megastore*", &report, 17_810.0, &mut rows, &mut perf);
    }

    // ---------------- Micro ----------------
    let (mut spec, items) = micro_spec(scale, 2002);
    spec.parallel = parallel_flag();
    let catalog = micro_catalog();
    let data = initial_items(items, 7);
    let micro_cfgs: [(&str, MdccMode, bool, f64); 3] = [
        ("micro/MDCC", MdccMode::Full, true, 245.0),
        ("micro/Fast", MdccMode::Fast, false, 276.0),
        ("micro/Multi", MdccMode::Multi, false, 388.0),
    ];
    for (name, mode, commutative, paper) in micro_cfgs {
        let cfg = MicroConfig {
            items,
            commutative,
            ..MicroConfig::default()
        };
        let mut f = micro_factory(cfg, None);
        let (report, _) = run_mdcc(&spec, catalog.clone(), &data, &mut f, mode);
        table(name, &report, paper, &mut rows, &mut perf);
    }
    {
        let cfg = MicroConfig {
            items,
            ..MicroConfig::default()
        };
        let mut f = micro_factory(cfg, None);
        let report = run_tpc(&spec, catalog, &data, &mut f);
        table("micro/2PC", &report, 543.0, &mut rows, &mut perf);
    }

    save_csv("tables_medians", "configuration,median_ms,paper_ms", &rows);
    perf.save("tables", scale);
}

//! Criterion micro-benchmarks of the allocation-purged hot paths: the
//! delta-vote pipeline (cursor extraction on the sender, shadow fold on
//! the receiver), cstruct digesting, and envelope flush encoding. These
//! are the per-message costs the engine pays millions of times in a
//! paper-scale run, so a stray allocation here dominates wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdcc_common::wire::{to_bytes, with_scratch_encoding, Envelope};
use mdcc_common::{CommutativeUpdate, Key, NodeId, TableId, TxnId, UpdateOp, Version};
use mdcc_paxos::acceptor::Phase2b;
use mdcc_paxos::shadow::{DeltaCursor, FoldOutcome, ShadowView};
use mdcc_paxos::{Ballot, CStruct, OptionStatus, TxnOption};

fn key() -> Key {
    Key::new(TableId(0), "bench")
}

fn comm_option(seq: u64) -> TxnOption {
    TxnOption::solo(
        TxnId::new(NodeId(0), seq),
        key(),
        UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
    )
}

fn vote_of(n: u64) -> Phase2b {
    let mut c = CStruct::new();
    for i in 0..n {
        c.append(comm_option(i), OptionStatus::Accepted);
    }
    Phase2b {
        ballot: Ballot::INITIAL_FAST,
        version: Version(1),
        cstruct: c,
        epoch: 0,
    }
}

/// The sender+receiver delta pipeline over one growing record: the
/// acceptor's cstruct gains one option per vote, the cursor ships the
/// one-entry tail, the shadow folds it and checks the digest. This is
/// the steady-state Phase2b path of a hot commutative record.
fn bench_delta_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta");
    for size in [8u64, 32, 64] {
        let votes: Vec<Phase2b> = (1..=size).map(vote_of).collect();
        group.bench_with_input(BenchmarkId::new("extract_fold", size), &size, |bench, _| {
            bench.iter(|| {
                let mut cursor = DeltaCursor::new();
                let mut shadow = ShadowView::new();
                let mut folded = 0u64;
                for vote in &votes {
                    match cursor.extract(std::hint::black_box(vote)) {
                        None => shadow.observe_full(vote),
                        Some(dv) => match shadow.fold(&dv) {
                            FoldOutcome::Vote(_) => folded += 1,
                            other => panic!("unexpected {other:?}"),
                        },
                    }
                }
                folded
            });
        });
        // The digest is recomputed on every emitted vote and every fold;
        // it runs on the thread-local scratch encoder, not a fresh Vec.
        let full = vote_of(size);
        group.bench_with_input(BenchmarkId::new("digest", size), &size, |bench, _| {
            bench.iter(|| std::hint::black_box(&full.cstruct).digest());
        });
    }
    group.finish();
}

/// Envelope flush encoding: the transport coalesces every payload bound
/// for one destination into a single frame. Scratch encoding reuses one
/// thread-local buffer per flush; the fresh-`to_bytes` row is the
/// allocating baseline it replaced.
fn bench_envelope_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope");
    for batch in [1usize, 4, 16] {
        let envelope = Envelope {
            class: 2,
            payloads: (0..batch).map(|i| vec![i as u8; 96]).collect(),
        };
        group.bench_with_input(
            BenchmarkId::new("encode_scratch", batch),
            &batch,
            |bench, _| {
                bench.iter(|| with_scratch_encoding(std::hint::black_box(&envelope), |b| b.len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encode_fresh", batch),
            &batch,
            |bench, _| {
                bench.iter(|| to_bytes(std::hint::black_box(&envelope)).len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delta_pipeline, bench_envelope_flush);
criterion_main!(benches);

//! Criterion micro-benchmarks of the durability and storage-engine hot
//! paths: WAL framing under the per-append and group-commit fsync
//! disciplines, and record access through the two [`Storage`] backends.
//!
//! The simulated-latency amortization (N transactions, one
//! `fsync_latency`) is fig10's story; what these benches pin down is
//! the *host* cost of the same paths — frame encoding and checksum per
//! append, transient decode on a cold log-structured read, and the
//! copy-forward compaction rewrite.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mdcc_common::{
    CommutativeUpdate, Key, NodeId, ProtocolConfig, Row, SimTime, TableId, TxnId, UpdateOp,
};
use mdcc_paxos::{AcceptorRecord, AttrConstraint, TxnOption};
use mdcc_recovery::wal::{self, WalRecord};
use mdcc_sim::Disk;
use mdcc_storage::{Catalog, LogStructuredBackend, MemBackend, Storage, TableSchema};

fn key(n: usize) -> Key {
    Key::new(TableId(1), format!("k{n:05}"))
}

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(TableId(1), "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn record(cat: &Arc<Catalog>, k: &Key, stock: i64) -> AcceptorRecord {
    let cfg = ProtocolConfig::default();
    AcceptorRecord::with_value(
        cat.constraints_for(k),
        cfg.replication,
        cfg.fast_quorum,
        cfg.max_instance_options,
        Row::new().with("stock", stock),
    )
}

fn wal_record(seq: u64) -> WalRecord {
    WalRecord::FastPropose {
        at: SimTime::from_millis(seq),
        opt: TxnOption::solo(
            TxnId::new(NodeId(0), seq),
            key(seq as usize),
            UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
        ),
    }
}

/// WAL appends under the two fsync disciplines: one fsync per append
/// versus one covering fsync per batch. The simulated disk's fsync is a
/// watermark store, so the rows isolate the per-append framing cost the
/// storage node pays either way.
fn bench_wal_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    for batch in [1usize, 8, 32] {
        let records: Vec<WalRecord> = (0..batch as u64).map(wal_record).collect();
        group.bench_with_input(
            BenchmarkId::new("append_fsync_each", batch),
            &batch,
            |bench, _| {
                bench.iter_batched(
                    Disk::new,
                    |mut disk| {
                        for r in &records {
                            wal::append(&mut disk, r);
                            disk.fsync();
                        }
                        disk.wal_len()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("append_group_fsync", batch),
            &batch,
            |bench, _| {
                bench.iter_batched(
                    Disk::new,
                    |mut disk| {
                        for r in &records {
                            wal::append(&mut disk, r);
                        }
                        disk.fsync();
                        disk.wal_len()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

const ENGINE_RECORDS: usize = 512;
/// Small enough that the bulk-load rows overflow it several times —
/// eviction (the encode-and-spill path) is part of what's measured.
const CACHE_CAP: usize = 128;

fn log_engine(cat: &Arc<Catalog>) -> LogStructuredBackend {
    let cfg = ProtocolConfig {
        log_cache_records: CACHE_CAP,
        ..ProtocolConfig::default()
    };
    LogStructuredBackend::new(&cfg, Arc::clone(cat))
}

fn loaded_log_engine(cat: &Arc<Catalog>) -> LogStructuredBackend {
    let mut log = log_engine(cat);
    for i in 0..ENGINE_RECORDS {
        let k = key(i);
        log.insert(k.clone(), record(cat, &k, i as i64));
    }
    log
}

/// Bulk insert through both backends. The log-structured rows include
/// the evictions the bounded cache forces (`ENGINE_RECORDS` is several
/// times `CACHE_CAP`).
fn bench_engine_put(c: &mut Criterion) {
    let cat = catalog();
    let records: Vec<(Key, AcceptorRecord)> = (0..ENGINE_RECORDS)
        .map(|i| {
            let k = key(i);
            let r = record(&cat, &k, i as i64);
            (k, r)
        })
        .collect();
    let mut group = c.benchmark_group("engine_put");
    group.sample_size(20);
    group.bench_function("mem", |bench| {
        bench.iter_batched(
            MemBackend::new,
            |mut mem| {
                for (k, r) in &records {
                    mem.insert(k.clone(), r.clone());
                }
                mem.len()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("log_structured", |bench| {
        bench.iter_batched(
            || log_engine(&cat),
            |mut log| {
                for (k, r) in &records {
                    log.insert(k.clone(), r.clone());
                }
                log.len()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Point reads: the in-memory map, a log-structured cache hit, and a
/// log-structured cold read (transient segment decode — the price of
/// keeping the record unmaterialized).
fn bench_engine_get(c: &mut Criterion) {
    let cat = catalog();
    let mut mem = MemBackend::new();
    for i in 0..ENGINE_RECORDS {
        let k = key(i);
        mem.insert(k.clone(), record(&cat, &k, i as i64));
    }
    let log = loaded_log_engine(&cat);
    // The newest insert is certainly cached; key 0 was evicted long ago,
    // and reads materialize transiently so it stays cold.
    let hot = key(ENGINE_RECORDS - 1);
    let cold = key(0);
    assert!(log.materialized() <= CACHE_CAP);
    let mut group = c.benchmark_group("engine_get");
    group.bench_function("mem", |bench| {
        bench.iter(|| {
            let mut v = 0;
            mem.read(std::hint::black_box(&cold), &mut |r| {
                v = r.version().0;
            });
            v
        });
    });
    group.bench_function("log_hot", |bench| {
        bench.iter(|| {
            let mut v = 0;
            log.read(std::hint::black_box(&hot), &mut |r| {
                v = r.version().0;
            });
            v
        });
    });
    group.bench_function("log_cold", |bench| {
        bench.iter(|| {
            let mut v = 0;
            log.read(std::hint::black_box(&cold), &mut |r| {
                v = r.version().0;
            });
            v
        });
    });
    group.finish();
}

/// In-place update of a hot record — the steady-state path of every
/// protocol-side mutation once the record is materialized.
fn bench_engine_update(c: &mut Criterion) {
    let cat = catalog();
    let mut mem = MemBackend::new();
    let k = key(0);
    mem.insert(k.clone(), record(&cat, &k, 1));
    let mut log = loaded_log_engine(&cat);
    let hot = key(ENGINE_RECORDS - 1);
    let mut group = c.benchmark_group("engine_update");
    group.bench_function("mem", |bench| {
        bench.iter(|| {
            let mut v = 0;
            mem.update(&k, &mut || unreachable!("record exists"), &mut |r| {
                v = r.version().0;
            });
            v
        });
    });
    group.bench_function("log_hot", |bench| {
        bench.iter(|| {
            let mut v = 0;
            log.update(&hot, &mut || unreachable!("record exists"), &mut |r| {
                v = r.version().0;
            });
            v
        });
    });
    group.finish();
}

/// The copy-forward rewrite: every live entry re-appended into fresh
/// segments in sorted-key order. Repeated calls rewrite the same live
/// set, so each iteration measures one full compaction pass over
/// `ENGINE_RECORDS` spilled records.
fn bench_engine_compact(c: &mut Criterion) {
    let cat = catalog();
    let mut log = loaded_log_engine(&cat);
    let mut group = c.benchmark_group("engine_compact");
    group.sample_size(20);
    group.bench_function("log_structured", |bench| {
        bench.iter(|| {
            log.compact();
            log.engine_stats().live_bytes
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wal_commit,
    bench_engine_put,
    bench_engine_get,
    bench_engine_update,
    bench_engine_compact
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the protocol engine's hot paths: cstruct
//! algebra, acceptor validation, learner quorum computation and the
//! demarcation check. These measure CPU cost per operation — the "more
//! CPU cycles for sophisticated decisions" trade-off §3 of the paper
//! accepts in exchange for fewer message rounds.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdcc_common::{CommutativeUpdate, Key, NodeId, Row, TableId, TxnId, UpdateOp};
use mdcc_paxos::acceptor::FastPropose;
use mdcc_paxos::demarcation::{escrow_accepts, EscrowView};
use mdcc_paxos::{
    AcceptorRecord, AttrConstraint, Ballot, CStruct, LearnOutcome, Learner, OptionStatus,
    TxnOption, TxnOutcome,
};

fn key() -> Key {
    Key::new(TableId(0), "bench")
}

fn comm_option(seq: u64) -> TxnOption {
    TxnOption::solo(
        TxnId::new(NodeId(0), seq),
        key(),
        UpdateOp::Commutative(CommutativeUpdate::delta("stock", -1)),
    )
}

fn cstruct_of(n: u64) -> CStruct {
    let mut c = CStruct::new();
    for i in 0..n {
        c.append(comm_option(i), OptionStatus::Accepted);
    }
    c
}

fn bench_cstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("cstruct");
    for size in [4u64, 16, 32] {
        let a = cstruct_of(size);
        let b = cstruct_of(size);
        group.bench_with_input(BenchmarkId::new("glb", size), &size, |bench, _| {
            bench.iter(|| CStruct::glb_many(std::hint::black_box(&[&a, &b])));
        });
        group.bench_with_input(BenchmarkId::new("prefix", size), &size, |bench, _| {
            bench.iter(|| std::hint::black_box(&a).is_prefix_of(std::hint::black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("lub", size), &size, |bench, _| {
            bench.iter(|| std::hint::black_box(&a).lub(std::hint::black_box(&b)));
        });
    }
    group.finish();
}

fn bench_acceptor(c: &mut Criterion) {
    let constraints: Arc<[AttrConstraint]> = Arc::from(vec![AttrConstraint::at_least("stock", 0)]);
    c.bench_function("acceptor/propose_resolve_cycle", |b| {
        b.iter_batched(
            || {
                AcceptorRecord::with_value(
                    Arc::clone(&constraints),
                    5,
                    4,
                    64,
                    Row::new().with("stock", 1_000_000),
                )
            },
            |mut acceptor| {
                for i in 0..16u64 {
                    let opt = comm_option(i);
                    let txn = opt.txn;
                    match acceptor.fast_propose(opt) {
                        FastPropose::Vote(_) => {}
                        other => panic!("unexpected {other:?}"),
                    }
                    acceptor.apply_visibility(txn, TxnOutcome::Committed, true);
                }
                acceptor
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_learner(c: &mut Criterion) {
    c.bench_function("learner/fast_quorum_learn", |b| {
        let votes: Vec<_> = (0..4usize)
            .map(|i| {
                let mut cs = CStruct::new();
                cs.append(comm_option(0), OptionStatus::Accepted);
                cs.append(comm_option(1), OptionStatus::Accepted);
                (
                    i,
                    mdcc_paxos::acceptor::Phase2b {
                        ballot: Ballot::INITIAL_FAST,
                        version: mdcc_common::Version(1),
                        cstruct: cs,
                        epoch: 0,
                    },
                )
            })
            .collect();
        b.iter(|| {
            let mut learner = Learner::new(5, 3, 4, TxnId::new(NodeId(0), 0));
            let mut out = LearnOutcome::Undecided;
            for (i, v) in &votes {
                out = learner.on_vote(*i, v.clone());
            }
            assert!(matches!(out, LearnOutcome::Learned(_)));
            learner
        });
    });
}

fn bench_demarcation(c: &mut Criterion) {
    let constraint = AttrConstraint::at_least("stock", 0);
    c.bench_function("demarcation/escrow_check", |b| {
        b.iter(|| {
            escrow_accepts(
                std::hint::black_box(&constraint),
                5,
                4,
                EscrowView {
                    base: 1_000,
                    committed: -120,
                    pending_neg: -75,
                    pending_pos: 12,
                },
                std::hint::black_box(-3),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_cstruct,
    bench_acceptor,
    bench_learner,
    bench_demarcation
);
criterion_main!(benches);

//! Criterion benchmark of end-to-end simulation throughput: how many
//! simulated MDCC transactions per host-second the discrete-event engine
//! sustains. This is the cost of regenerating the paper's figures.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode};
use mdcc_common::{DcId, SimDuration};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc_workloads::Workload;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("micro_10clients_10s", |b| {
        b.iter(|| {
            let spec = ClusterSpec {
                seed: 7,
                clients: 10,
                shards_per_dc: 2,
                warmup: SimDuration::from_secs(2),
                duration: SimDuration::from_secs(8),
                ..ClusterSpec::default()
            };
            let catalog = Arc::new(
                Catalog::new().with(
                    TableSchema::new(MICRO_ITEMS, "item")
                        .with_constraint(AttrConstraint::at_least("stock", 0)),
                ),
            );
            let data = initial_items(1_000, 7);
            let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
                Box::new(MicroWorkload::new(MicroConfig {
                    items: 1_000,
                    ..MicroConfig::default()
                }))
            };
            let (report, _) = run_mdcc(&spec, catalog, &data, &mut factory, MdccMode::Full);
            assert!(report.write_commits() > 0);
            report.write_commits()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);

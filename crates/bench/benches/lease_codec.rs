//! Criterion micro-benchmarks of the per-record lease-table codec: the
//! range-run wire encoding a migrating holder ships to its successor
//! (`LeaseTable::runs` / `install_runs` plus the byte-level
//! `OverrideRun` codec) and the hot-path override lookup every mastered
//! proposal pays (`override_of` hit and miss).
//!
//! The table is bounded (LRU-half spill), so the interesting sizes are
//! empty, the default cap (64), and a deliberately oversized 4096 —
//! the codec must stay linear and the lookup flat across all three.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mdcc_common::wire::{Dec, Enc, Wire};
use mdcc_mastership::{Ballot, LeaseTable, OverrideRun};

/// A table with `n` overrides: half clustered in one contiguous id
/// range (the run encoding's best case), half scattered (its worst —
/// singleton runs), mirroring a real mix of range leases and hashed
/// hot keys.
fn table(n: usize) -> LeaseTable {
    let mut t = LeaseTable::new(n.max(1));
    for i in 0..n / 2 {
        t.raise(1_000 + i as u64, Ballot::new(7, 3));
    }
    for i in n / 2..n {
        // fnv-like scatter: consecutive inserts land far apart.
        t.raise(
            (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            Ballot::new(7, 3),
        );
    }
    t
}

fn encode_runs(t: &LeaseTable) -> Vec<u8> {
    let runs = t.runs();
    let mut enc = Enc::new();
    enc.u32(runs.len() as u32);
    for run in &runs {
        run.encode(&mut enc);
    }
    enc.finish()
}

fn decode_runs(bytes: &[u8]) -> Vec<OverrideRun> {
    let mut dec = Dec::new(bytes);
    let n = dec.u32().expect("count") as usize;
    (0..n)
        .map(|_| OverrideRun::decode(&mut dec).expect("run"))
        .collect()
}

/// Encoding a table to wire runs, and decoding + installing the runs
/// into a fresh successor table — the two halves of a migration
/// handoff's override payload.
fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_codec");
    for n in [0usize, 64, 4096] {
        let t = table(n);
        let bytes = encode_runs(&t);
        group.bench_with_input(BenchmarkId::new("encode", n), &t, |b, t| {
            b.iter(|| encode_runs(t))
        });
        group.bench_with_input(BenchmarkId::new("decode_install", n), &bytes, |b, bytes| {
            b.iter_batched(
                || LeaseTable::new(n.max(1)),
                |mut fresh| {
                    let runs = decode_runs(bytes);
                    fresh.install_runs(&runs);
                    fresh
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The per-proposal lookup: an override hit (hot record, LRU touch)
/// versus a miss (cold record falling through to the shard floor).
fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_lookup");
    for n in [64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("hit", n), &n, |b, &n| {
            b.iter_batched(
                || table(n),
                |mut t| t.override_of(1_000),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("miss", n), &n, |b, &n| {
            b.iter_batched(
                || table(n),
                |mut t| t.override_of(0xdead_beef),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_lookup);
criterion_main!(benches);

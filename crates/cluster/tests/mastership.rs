//! Dynamic-mastership acceptance tests.
//!
//! The lease layer must be three things at once: *off* when disabled —
//! byte-identical runs, knob values notwithstanding — *safe* when
//! enabled — at most one node serves a shard at any virtual instant,
//! across elections, crashes, partitions and heals — and *live* —
//! a crashed master's shard resumes committing within a lease expiry
//! plus an election round, because any replica can still lead
//! classically while the lease machinery converges.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultEvent, FaultPlan, MdccMode, NetKind, Report};
use mdcc_common::{DcId, Key, MastershipConfig, Row, SimDuration, SimTime};
use mdcc_core::TxnStats;
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;
use proptest::prelude::*;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

const ITEMS: u64 = 120;

/// A Multi-Paxos deployment (every proposal goes through a master —
/// the mode mastership exists for), five DCs, one shard.
fn spec(seed: u64) -> ClusterSpec {
    let s = SimDuration::from_secs;
    ClusterSpec {
        seed,
        dcs: 5,
        shards_per_dc: 1,
        clients: 10,
        net: NetKind::Uniform { rtt_ms: 100.0 },
        warmup: s(2),
        duration: s(10),
        drain: s(8),
        ..ClusterSpec::default()
    }
}

fn run(spec: &ClusterSpec) -> (Report, TxnStats) {
    let data: Vec<(Key, Row)> = (0..ITEMS)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect();
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, catalog(), &data, &mut factory, MdccMode::Multi)
}

fn assert_healthy(label: &str, report: &Report) {
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");
    assert_eq!(audit.pending_options, 0, "{label}: options left dangling");
    assert_eq!(audit.stuck_clients, 0, "{label}: clients left stuck");
    let min_stock = audit.min_of("stock").expect("stock audited");
    assert!(min_stock >= 0, "{label}: stock constraint violated");
}

/// The no-two-masters audit: within each shard, tenures of different
/// holders must not overlap in virtual time. (One holder may appear in
/// several spans — one per ballot — and renewals extend a span, so only
/// cross-node overlap is a safety violation.)
fn assert_no_overlapping_leases(label: &str, report: &Report) {
    let spans = &report.lease_spans;
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.shard != b.shard || a.node == b.node {
                continue;
            }
            let disjoint = a.until <= b.from || b.until <= a.from;
            assert!(
                disjoint,
                "{label}: shard {} served by {:?} ({:?}) over [{:?}, {:?}) \
                 and {:?} ({:?}) over [{:?}, {:?}) — overlapping masters",
                a.shard, a.node, a.ballot, a.from, a.until, b.node, b.ballot, b.from, b.until,
            );
        }
    }
}

/// The off-switch contract: with `mastership.enabled = false` the whole
/// knob family is inert — wild sub-knob values change not a single wire
/// byte, and no lease state ever materializes.
#[test]
fn disabled_mastership_knobs_are_byte_inert() {
    let base = spec(41);
    assert!(
        !base.protocol.mastership.enabled,
        "mastership is off by default"
    );
    let mut wild = spec(41);
    wild.protocol.mastership = MastershipConfig {
        enabled: false,
        heartbeat_interval: SimDuration::from_millis(7),
        lease_duration: SimDuration::from_millis(33),
        hb_delay_increment: SimDuration::from_millis(1),
        migrate_threshold_pct: 101,
        migrate_min_rate: 1,
        migrate_window: SimDuration::from_millis(13),
        migrate_rounds: 1,
        lease_phase1: false,
        lease_record_overrides: 7,
    };
    let (a, _) = run(&base);
    let (b, _) = run(&wild);
    assert_healthy("default-knobs", &a);
    assert_eq!(a.net, b.net, "disabled knobs altered wire accounting");
    assert_eq!(a.audit, b.audit, "disabled knobs altered the audit");
    assert_eq!(
        a.mastership,
        Default::default(),
        "mastership counters moved while disabled"
    );
    assert!(a.lease_spans.is_empty(), "leases granted while disabled");
}

/// The enabled smoke: leases are acquired and renewed, mastered traffic
/// is actually served under them, and no two nodes ever hold a shard's
/// lease at once.
#[test]
fn leases_cover_writes_and_never_overlap() {
    let mut s = spec(42);
    s.protocol.mastership = MastershipConfig::enabled();
    let (report, _) = run(&s);
    assert_healthy("mastership-on", &report);
    assert!(report.write_commits() > 100, "cluster barely committed");
    let ms = &report.mastership;
    assert!(ms.elections > 0, "no election ever ran");
    assert!(ms.leases_acquired > 0, "no lease ever granted");
    assert!(ms.renewals > 0, "no lease ever renewed by heartbeat");
    assert!(ms.served > 0, "no proposal served under a lease");
    assert!(!report.lease_spans.is_empty(), "audit saw no tenures");
    assert_no_overlapping_leases("mastership-on", &report);
}

/// Lease-carried Phase1 in action: with `lease_phase1` on (the
/// default), first-touch mastered commits skip the per-record Phase1
/// exchange entirely — the granted lease ballot already is the promise
/// floor — and every replica still converges to byte-equal committed
/// state. Turning it off restores the two-round-trip first touch
/// (nothing skipped), and with it off the whole per-record override
/// knob family is inert: wild values change not a single wire byte.
#[test]
fn lease_phase1_skips_cold_phase1_and_stays_byte_equal() {
    let mut on = spec(45);
    on.protocol.mastership = MastershipConfig::enabled();
    assert!(
        on.protocol.mastership.lease_phase1,
        "lease_phase1 defaults on"
    );
    let (ra, _) = run(&on);
    assert_healthy("lease-phase1-on", &ra);
    assert_no_overlapping_leases("lease-phase1-on", &ra);
    assert!(
        ra.mastership.phase1_skipped > 0,
        "no first-touch mastered commit ever skipped Phase1"
    );
    let digests = &ra.audit.as_ref().expect("audited").committed_digests;
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged under Phase1-less lease takeover"
    );

    let mut off = spec(45);
    off.protocol.mastership = MastershipConfig {
        lease_phase1: false,
        ..MastershipConfig::enabled()
    };
    let (rb, _) = run(&off);
    assert_healthy("lease-phase1-off", &rb);
    assert_no_overlapping_leases("lease-phase1-off", &rb);
    assert_eq!(
        rb.mastership.phase1_skipped, 0,
        "Phase1 skipped with the optimization off"
    );
    let digests = &rb.audit.as_ref().expect("audited").committed_digests;
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged under classic Phase1"
    );

    // Off-switch inertness: with lease_phase1 off, the override knob
    // changes nothing — not a wire byte, not an audit bit.
    let mut wild = spec(45);
    wild.protocol.mastership = MastershipConfig {
        lease_phase1: false,
        lease_record_overrides: 7,
        ..MastershipConfig::enabled()
    };
    let (rc, _) = run(&wild);
    assert_eq!(rb.net, rc.net, "override knob altered wire accounting");
    assert_eq!(rb.audit, rc.audit, "override knob altered the audit");
}

/// The data center whose storage node wins the initial election under
/// `spec(seed)`, found by a short fault-free probe run. Deterministic:
/// the faulted runs below share every event with the probe up to their
/// first fault, so the probe's winner is their pre-fault holder.
fn initial_holder_dc(seed: u64) -> DcId {
    let s = SimDuration::from_secs;
    let mut sp = spec(seed);
    sp.duration = s(2);
    sp.drain = s(2);
    sp.protocol.mastership = MastershipConfig::enabled();
    let (report, _) = run(&sp);
    let span = report.lease_spans.first().expect("a lease was granted");
    // Storage ids are dc-major (`id = dc * shards + shard`); one shard
    // per DC here, so the node id is the DC.
    DcId(span.node.0 as u8)
}

/// Crash the initial lease holder mid-tenure. The successor must wait
/// out the orphaned lease, win an election, and the shard must be
/// committing again within a lease expiry plus an election round —
/// while the lease-uniqueness audit stays clean through the restart
/// (the revived node is quarantined, its volatile grant table having
/// died with it).
#[test]
fn master_crash_resumes_writes_within_a_lease_and_an_election() {
    let s = SimDuration::from_secs;
    let crash_at = s(6);
    let victim = initial_holder_dc(43);
    let mut sp = spec(43);
    sp.durability = true;
    sp.drain = s(12);
    sp.protocol.mastership = MastershipConfig::enabled();
    sp.faults = FaultPlan::new().crash_restart(victim, 0, crash_at, s(5));
    let (report, _) = run(&sp);
    assert_eq!(report.recoveries.len(), 1, "the restart ran");
    assert_healthy("master-crash", &report);
    assert_no_overlapping_leases("master-crash", &report);
    assert!(
        report
            .lease_spans
            .iter()
            .any(|l| l.from > SimTime::ZERO + crash_at),
        "no successor tenure after the crash"
    );

    // Liveness: the longest commit outage around the crash is bounded
    // by the orphaned lease running out plus one election round plus a
    // WAN round trip of slack (classic fallback keeps serving even
    // sooner; the lease bound is the worst case).
    let cfg = &sp.protocol.mastership;
    let bound = cfg.lease_duration + cfg.heartbeat_interval + SimDuration::from_millis(300);
    let mut commits: Vec<SimTime> = report
        .records
        .iter()
        .filter(|r| r.committed && r.is_write)
        .map(|r| r.finished)
        .collect();
    commits.sort();
    assert!(!commits.is_empty(), "no write ever committed");
    let crash = SimTime::ZERO + crash_at;
    let last_before = commits.iter().rev().find(|t| **t <= crash);
    let first_after = commits.iter().find(|t| **t > crash);
    let (Some(before), Some(after)) = (last_before, first_after) else {
        panic!("commits missing on one side of the crash");
    };
    let gap = *after - *before;
    assert!(
        gap <= bound,
        "writes took {gap:?} to resume after the master crash (bound {bound:?})"
    );
}

/// Partition the lease holder's whole data center away, then heal it.
/// The surviving majority elects a new master (the partitioned one is
/// no longer majority-connected, so it stops campaigning), commits keep
/// flowing, and after the heal the old holder rejoins without ever
/// having served past its expiry.
#[test]
fn partition_then_heal_keeps_exactly_one_master() {
    let s = SimDuration::from_secs;
    let victim = initial_holder_dc(44);
    let mut sp = spec(44);
    sp.drain = s(12);
    sp.protocol.mastership = MastershipConfig::enabled();
    sp.faults = FaultPlan::new()
        .with(FaultEvent::FailDc {
            at: s(6),
            dc: victim,
        })
        .with(FaultEvent::HealDc {
            at: s(10),
            dc: victim,
        });
    let (report, _) = run(&sp);
    assert_healthy("partition-heal", &report);
    assert_no_overlapping_leases("partition-heal", &report);
    assert!(
        report.write_commits() > 100,
        "commits stalled through the outage"
    );
    assert!(
        report.mastership.elections >= 2,
        "the survivors never re-elected during the outage"
    );
    let nodes: std::collections::HashSet<_> = report.lease_spans.iter().map(|l| l.node).collect();
    assert!(
        nodes.len() >= 2,
        "the lease never moved off the partitioned holder"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Lease uniqueness is seed- and fault-schedule-independent: across
    /// random seeds and random crash/restart schedules (any replica,
    /// any time, including expiry-during-crash windows), no two nodes
    /// ever hold the same shard's lease in overlapping virtual-time
    /// windows, and the cluster still converges healthy.
    #[test]
    fn lease_uniqueness_survives_any_crash_schedule(
        seed in 0u64..1_000,
        victim in 0u8..5,
        crash_ms in 3_000u64..9_000,
        down_ms in 200u64..6_000,
    ) {
        let s = SimDuration::from_secs;
        let mut sp = spec(seed);
        sp.durability = true;
        sp.duration = s(8);
        sp.drain = s(12);
        sp.protocol.mastership = MastershipConfig::enabled();
        sp.faults = FaultPlan::new().crash_restart(
            DcId(victim),
            0,
            SimDuration::from_millis(crash_ms),
            SimDuration::from_millis(down_ms),
        );
        let (report, _) = run(&sp);
        prop_assert_eq!(report.recoveries.len(), 1, "the restart ran");
        assert_healthy("prop-crash", &report);
        assert_no_overlapping_leases("prop-crash", &report);
        prop_assert!(report.write_commits() > 50, "cluster barely committed");
    }
}

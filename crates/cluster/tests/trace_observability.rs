//! The observability layer must observe without disturbing.
//!
//! The tracing contract has three legs:
//!
//! 1. **Equivalence** — a run with tracing enabled produces exactly the
//!    same transaction outcomes, consistency audit and wire bytes as the
//!    same run with tracing off. Spans are harvested from the side of
//!    the event loop; they never schedule events, consume randomness or
//!    widen messages.
//! 2. **Determinism** — the exported Chrome-trace JSON is a pure
//!    function of the seed: two identical runs yield byte-identical
//!    files (host wall-clock numbers are deliberately excluded).
//! 3. **Coverage** — a full-protocol durable run decomposes commit
//!    latency into the paper's pipeline: classic rounds, Phase 2b
//!    voting, commit, visibility fan-out, WAL fsync and the transport
//!    underneath it all.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode, NetKind, Report};
use mdcc_common::{DcId, Key, Row, SimDuration, StaticPlacement};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_trace::{Phase, TraceConfig};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn data(items: u64) -> Vec<(Key, Row)> {
    (0..items)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect()
}

fn factory(items: u64) -> impl FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> {
    move |_c, _dc, _p| {
        Box::new(MicroWorkload::new(MicroConfig {
            items,
            items_per_txn: 2,
            max_decrement: 2,
            ..MicroConfig::default()
        }))
    }
}

/// A short full-protocol run: small but busy enough that every span
/// source fires (reads, fast votes, visibility fan-out, transport
/// queueing).
fn small_spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        seed,
        dcs: 3,
        shards_per_dc: 1,
        clients: 4,
        net: NetKind::Uniform { rtt_ms: 40.0 },
        warmup: SimDuration::from_millis(500),
        duration: SimDuration::from_secs(4),
        ..ClusterSpec::default()
    }
}

const ITEMS: u64 = 16;

fn run(spec: &ClusterSpec) -> Report {
    let (report, _stats) = run_mdcc(
        spec,
        catalog(),
        &data(ITEMS),
        &mut factory(ITEMS),
        MdccMode::Full,
    );
    report
}

/// Everything a run *decides*, as opposed to what it *observes*: the
/// transaction records, the byte-accurate wire accounting and the
/// end-of-run consistency audit. Tracing must never change any of it.
fn outcome_fingerprint(report: &Report) -> impl PartialEq + std::fmt::Debug {
    (
        report.records.clone(),
        report.net,
        report.audit.clone(),
        report.recoveries.len(),
    )
}

/// The equivalence property of the ISSUE: over several seeds, a traced
/// run is outcome- and wire-byte-identical to an untraced one.
#[test]
fn tracing_does_not_perturb_outcomes_or_wire() {
    for seed in [1, 7, 42, 4242] {
        let base = small_spec(seed);
        let off = run(&base);
        let on = run(&ClusterSpec {
            trace: TraceConfig::on(),
            ..base.clone()
        });
        assert_eq!(
            outcome_fingerprint(&off),
            outcome_fingerprint(&on),
            "seed {seed}: tracing changed the run"
        );
        assert!(off.trace.is_none(), "untraced run must not carry spans");
        let trace = on.trace.as_ref().expect("traced run carries spans");
        assert!(!trace.is_empty(), "seed {seed}: no spans harvested");
        assert!(off.records.iter().any(|r| r.committed), "degenerate run");
    }
}

/// Same seed ⇒ byte-identical exported trace. Host wall time exists in
/// `Report::perf` but never leaks into the JSON.
#[test]
fn same_seed_exports_byte_identical_trace_json() {
    let spec = ClusterSpec {
        trace: TraceConfig::on(),
        ..small_spec(42)
    };
    let a = run(&spec).trace.expect("traced").to_chrome_json();
    let b = run(&spec).trace.expect("traced").to_chrome_json();
    assert_eq!(a, b, "trace JSON must be a pure function of the seed");
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("\"ph\":\"X\""), "no duration events exported");
    assert!(a.len() > 1_000, "suspiciously small trace");
}

/// Deterministic 1-in-N transaction sampling thins protocol spans
/// without touching outcomes.
#[test]
fn sampling_thins_spans_without_changing_outcomes() {
    let base = small_spec(7);
    let full = run(&ClusterSpec {
        trace: TraceConfig::on(),
        ..base.clone()
    });
    let sampled = run(&ClusterSpec {
        trace: TraceConfig {
            sample: 8,
            ..TraceConfig::on()
        },
        ..base.clone()
    });
    assert_eq!(
        outcome_fingerprint(&full),
        outcome_fingerprint(&sampled),
        "sampling is observational only"
    );
    let count = |r: &Report, phase: Phase| {
        r.trace
            .as_ref()
            .unwrap()
            .spans
            .iter()
            .filter(|s| s.phase == phase)
            .count()
    };
    assert!(
        count(&sampled, Phase::Commit) * 4 < count(&full, Phase::Commit),
        "1-in-8 sampling should keep far fewer commit spans ({} vs {})",
        count(&sampled, Phase::Commit),
        count(&full, Phase::Commit),
    );
}

/// A durable full-protocol run decomposes latency into at least five
/// phases, including the ones the paper's anatomy argument needs:
/// Phase 2b voting, commit, visibility and WAL fsync, with the
/// transport's service time underneath.
#[test]
fn anatomy_covers_the_commit_pipeline() {
    let spec = ClusterSpec {
        durability: true,
        wal_fsync: SimDuration::from_micros(500),
        trace: TraceConfig::on(),
        ..small_spec(11)
    };
    let report = run(&spec);
    let anatomy = report.anatomy().expect("traced run has an anatomy");
    assert!(
        anatomy.phase_count() >= 5,
        "expected ≥5 phases, got {}:\n{anatomy}",
        anatomy.phase_count()
    );
    for phase in [
        Phase::Phase2b,
        Phase::Commit,
        Phase::Visibility,
        Phase::WalFsync,
        Phase::NetService,
    ] {
        let stat = anatomy
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {} missing from:\n{anatomy}", phase.name()));
        assert!(stat.count > 0);
        assert!(stat.p99_ms >= stat.p50_ms);
    }
    // The fsync knob really charges service time: spans are exactly the
    // configured latency.
    let fsync = anatomy.phase(Phase::WalFsync).unwrap();
    assert!((fsync.p50_ms - 0.5).abs() < 1e-9, "p50 {}", fsync.p50_ms);
}

/// Classic rounds show up as phase1/phase2a spans when the protocol is
/// forced through masters (the §5.3.1 Multi ablation).
#[test]
fn classic_rounds_produce_phase1_and_phase2a_spans() {
    let spec = ClusterSpec {
        trace: TraceConfig::on(),
        ..small_spec(5)
    };
    let (report, _stats) = run_mdcc(
        &spec,
        catalog(),
        &data(ITEMS),
        &mut factory(ITEMS),
        MdccMode::Multi,
    );
    let anatomy = report.anatomy().expect("traced");
    let p2a = anatomy
        .phase(Phase::Phase2a)
        .unwrap_or_else(|| panic!("no phase2a spans in a Multi run:\n{anatomy}"));
    assert!(p2a.count > 0);
}

/// The event-loop profiler attributes work to nodes even without host
/// wall-clock profiling, and the host-cost counters are always on.
#[test]
fn profiler_and_run_perf_account_for_the_event_loop() {
    let report = run(&ClusterSpec {
        trace: TraceConfig {
            profile: true,
            ..TraceConfig::on()
        },
        ..small_spec(3)
    });
    assert!(report.perf.events > 0, "no events dispatched?");
    assert!(report.perf.wall.as_nanos() > 0);
    assert!(report.perf.events_per_sec() > 0.0);
    assert!(!report.profile.is_empty());
    let total_events: u64 = report.profile.iter().map(|p| p.events).sum();
    assert_eq!(total_events, report.perf.events, "profiler loses events");
    let hottest = &report.profile[0];
    assert!(hottest.sim_busy > SimDuration::ZERO);
    assert!(
        report
            .profile
            .windows(2)
            .all(|w| w[0].sim_busy >= w[1].sim_busy),
        "profile must be sorted hottest-first"
    );
    assert!(
        report.profile.iter().any(|p| p.wall.as_nanos() > 0),
        "wall profiling was requested"
    );
}

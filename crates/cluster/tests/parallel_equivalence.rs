//! The parallel engine must be invisible in the results.
//!
//! The contract (mirroring `trace_observability.rs` for tracing): a run
//! on the conservative parallel per-DC engine produces exactly the same
//! transaction records, byte-accurate wire accounting, consistency
//! audit and event count as the same run on the sequential k-way merge.
//! Not statistically similar — *byte-identical*. The parallel engine is
//! allowed to change two things only: `RunPerf::wall` (host time) and
//! `RunPerf::threads`.
//!
//! The matrix below covers seeds × topologies × protocol modes × fault
//! schedules (node crash/restart with durable storage, and a whole-DC
//! outage), because the bugs a conservative scheduler can have — window
//! boundary off-by-ones, cross-shard routing order, RNG sharing — only
//! show up under load and disruption.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultPlan, MdccMode, NetKind, Report};
use mdcc_common::{DcId, Key, Row, SimDuration, StaticPlacement};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn data(items: u64) -> Vec<(Key, Row)> {
    (0..items)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect()
}

fn factory(items: u64) -> impl FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> {
    move |_c, _dc, _p| {
        Box::new(MicroWorkload::new(MicroConfig {
            items,
            items_per_txn: 2,
            max_decrement: 2,
            ..MicroConfig::default()
        }))
    }
}

fn small_spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        seed,
        dcs: 3,
        shards_per_dc: 1,
        clients: 4,
        net: NetKind::Uniform { rtt_ms: 40.0 },
        warmup: SimDuration::from_millis(500),
        duration: SimDuration::from_secs(4),
        ..ClusterSpec::default()
    }
}

const ITEMS: u64 = 16;

fn run(spec: &ClusterSpec, mode: MdccMode) -> Report {
    let (report, _stats) = run_mdcc(spec, catalog(), &data(ITEMS), &mut factory(ITEMS), mode);
    report
}

/// Everything a run *decides*: transaction records, wire accounting,
/// consistency audit, recovery log and the dispatched-event count. The
/// engine choice must never change any of it. (Host wall time and the
/// thread count are the engine's only observable difference.)
fn fingerprint(report: &Report) -> impl PartialEq + std::fmt::Debug {
    (
        report.records.clone(),
        report.net,
        report.audit.clone(),
        report.recoveries.clone(),
        report.perf.events,
    )
}

fn assert_equivalent(base: &ClusterSpec, mode: MdccMode, what: &str) {
    let sequential = run(base, mode);
    let parallel = run(
        &ClusterSpec {
            parallel: true,
            ..base.clone()
        },
        mode,
    );
    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "{what} (seed {}): parallel engine changed the run",
        base.seed
    );
    assert!(
        sequential.records.iter().any(|r| r.committed),
        "{what}: degenerate run, nothing committed"
    );
    assert_eq!(sequential.perf.threads, 1, "{what}: sequential baseline");
    assert_eq!(
        parallel.perf.threads, base.dcs as usize,
        "{what}: one worker per DC"
    );
}

/// The headline property: across seeds, a parallel run is
/// outcome- and wire-byte-identical to the sequential one.
#[test]
fn parallel_matches_sequential_across_seeds() {
    for seed in [1, 7, 42, 4242] {
        assert_equivalent(&small_spec(seed), MdccMode::Full, "uniform/full");
    }
}

/// Same property on the paper's five-region EC2 topology, where
/// asymmetric latencies make the lookahead window tight, and with more
/// shards per DC so cross-shard routing inside a window is exercised.
#[test]
fn parallel_matches_sequential_on_the_paper_topology() {
    for seed in [3, 11] {
        let spec = ClusterSpec {
            dcs: 5,
            shards_per_dc: 2,
            clients: 10,
            net: NetKind::Ec2Five,
            ..small_spec(seed)
        };
        assert_equivalent(&spec, MdccMode::Full, "ec2-five/full");
    }
}

/// Classic rounds route every proposal through a remote master —
/// maximum cross-shard traffic per commit.
#[test]
fn parallel_matches_sequential_under_classic_paxos() {
    assert_equivalent(&small_spec(5), MdccMode::Multi, "uniform/multi");
}

/// A scripted storage-node crash and restart with durable storage: the
/// recovery log, WAL replay and repair traffic must all be identical.
#[test]
fn parallel_matches_sequential_across_crash_and_restart() {
    for seed in [9, 21] {
        let spec = ClusterSpec {
            durability: true,
            wal_fsync: SimDuration::from_micros(500),
            faults: FaultPlan::new().crash_restart(
                DcId(1),
                0,
                SimDuration::from_millis(1_500),
                SimDuration::from_millis(800),
            ),
            ..small_spec(seed)
        };
        assert_equivalent(&spec, MdccMode::Full, "crash-restart/full");
    }
}

/// A whole data center stops receiving mid-run (the Figure 8 outage):
/// undelivered messages, timeouts and failover must replay identically.
#[test]
fn parallel_matches_sequential_across_a_dc_outage() {
    let spec = ClusterSpec {
        fail_dcs: vec![(SimDuration::from_secs(2), DcId(2))],
        ..small_spec(13)
    };
    assert_equivalent(&spec, MdccMode::Full, "dc-outage/full");
}
